#ifndef STTR_TRANSFER_MMD_H_
#define STTR_TRANSFER_MMD_H_

#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sttr {

/// Gaussian (RBF) kernel value k(x, y) = exp(-||x-y||^2 / (2 sigma^2)) for
/// two d-dimensional rows. The paper uses a Gaussian kernel with fixed
/// bandwidth (§3.1.4).
double GaussianKernel(const float* x, const float* y, size_t d, double sigma);

/// Biased (V-statistic) quadratic-time MMD^2 estimate between the rows of
/// `xs` (ns, d) and `xt` (nt, d) — the form of Eq. (2)/(10).
double MmdBiased(const Tensor& xs, const Tensor& xt, double sigma);

/// Unbiased (U-statistic) quadratic-time MMD^2 (Gretton et al., Lemma 6):
/// diagonal terms removed. Can be negative for close distributions.
double MmdUnbiased(const Tensor& xs, const Tensor& xt, double sigma);

/// Linear-time MMD^2 estimate (Gretton et al. §6), the O(D) technique the
/// paper adopts from Long et al. for training cost: averages
///   h_i = k(x_{2i},x_{2i+1}) + k(y_{2i},y_{2i+1})
///       - k(x_{2i},y_{2i+1}) - k(x_{2i+1},y_{2i})
/// over floor(min(ns, nt)/2) disjoint quadruples.
double MmdLinear(const Tensor& xs, const Tensor& xt, double sigma);

/// Median-of-pairwise-distances bandwidth heuristic, estimated from up to
/// `max_pairs` random pairs of the pooled sample.
double MedianHeuristicSigma(const Tensor& xs, const Tensor& xt,
                            size_t max_pairs, Rng& rng);

namespace ag_ops {

/// Differentiable biased quadratic MMD^2 between two (n, d) Variables,
/// optionally summed over several bandwidths (multi-kernel MMD as in Long
/// et al.; pass one sigma for the paper's fixed-bandwidth kernel).
/// Gradients are analytic: d k(x,y)/dx = k(x,y) (y - x) / sigma^2.
sttr::ag::Variable MmdLoss(const sttr::ag::Variable& xs,
                           const sttr::ag::Variable& xt,
                           const std::vector<double>& sigmas);

/// Differentiable linear-time MMD^2 (same estimator as MmdLinear).
/// O(n d) per evaluation; the estimator used inside the training loop.
sttr::ag::Variable MmdLossLinear(const sttr::ag::Variable& xs,
                                 const sttr::ag::Variable& xt,
                                 const std::vector<double>& sigmas);

}  // namespace ag_ops
}  // namespace sttr

#endif  // STTR_TRANSFER_MMD_H_
