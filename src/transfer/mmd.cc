#include "transfer/mmd.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sttr {

namespace {

double SquaredDistance(const float* x, const float* y, size_t d) {
  double s = 0;
  for (size_t j = 0; j < d; ++j) {
    const double diff = static_cast<double>(x[j]) - y[j];
    s += diff * diff;
  }
  return s;
}

void CheckInputs(const Tensor& xs, const Tensor& xt) {
  STTR_CHECK_EQ(xs.ndim(), 2u);
  STTR_CHECK_EQ(xt.ndim(), 2u);
  STTR_CHECK_EQ(xs.cols(), xt.cols());
  STTR_CHECK_GT(xs.rows(), 0u);
  STTR_CHECK_GT(xt.rows(), 0u);
}

}  // namespace

double GaussianKernel(const float* x, const float* y, size_t d, double sigma) {
  STTR_CHECK_GT(sigma, 0.0);
  return std::exp(-SquaredDistance(x, y, d) / (2.0 * sigma * sigma));
}

double MmdBiased(const Tensor& xs, const Tensor& xt, double sigma) {
  CheckInputs(xs, xt);
  const size_t ns = xs.rows(), nt = xt.rows(), d = xs.cols();
  double kss = 0, ktt = 0, kst = 0;
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < ns; ++j) {
      kss += GaussianKernel(xs.row(i), xs.row(j), d, sigma);
    }
  }
  for (size_t i = 0; i < nt; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      ktt += GaussianKernel(xt.row(i), xt.row(j), d, sigma);
    }
  }
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      kst += GaussianKernel(xs.row(i), xt.row(j), d, sigma);
    }
  }
  const double dns = static_cast<double>(ns), dnt = static_cast<double>(nt);
  return kss / (dns * dns) + ktt / (dnt * dnt) - 2.0 * kst / (dns * dnt);
}

double MmdUnbiased(const Tensor& xs, const Tensor& xt, double sigma) {
  CheckInputs(xs, xt);
  const size_t ns = xs.rows(), nt = xt.rows(), d = xs.cols();
  STTR_CHECK_GT(ns, 1u);
  STTR_CHECK_GT(nt, 1u);
  double kss = 0, ktt = 0, kst = 0;
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < ns; ++j) {
      if (i == j) continue;
      kss += GaussianKernel(xs.row(i), xs.row(j), d, sigma);
    }
  }
  for (size_t i = 0; i < nt; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      if (i == j) continue;
      ktt += GaussianKernel(xt.row(i), xt.row(j), d, sigma);
    }
  }
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      kst += GaussianKernel(xs.row(i), xt.row(j), d, sigma);
    }
  }
  const double dns = static_cast<double>(ns), dnt = static_cast<double>(nt);
  return kss / (dns * (dns - 1)) + ktt / (dnt * (dnt - 1)) -
         2.0 * kst / (dns * dnt);
}

double MmdLinear(const Tensor& xs, const Tensor& xt, double sigma) {
  CheckInputs(xs, xt);
  const size_t d = xs.cols();
  const size_t m = std::min(xs.rows(), xt.rows()) / 2;
  if (m == 0) return MmdBiased(xs, xt, sigma);
  double sum = 0;
  for (size_t i = 0; i < m; ++i) {
    const float* x0 = xs.row(2 * i);
    const float* x1 = xs.row(2 * i + 1);
    const float* y0 = xt.row(2 * i);
    const float* y1 = xt.row(2 * i + 1);
    sum += GaussianKernel(x0, x1, d, sigma) + GaussianKernel(y0, y1, d, sigma) -
           GaussianKernel(x0, y1, d, sigma) - GaussianKernel(x1, y0, d, sigma);
  }
  return sum / static_cast<double>(m);
}

double MedianHeuristicSigma(const Tensor& xs, const Tensor& xt,
                            size_t max_pairs, Rng& rng) {
  CheckInputs(xs, xt);
  const size_t d = xs.cols();
  const size_t n = xs.rows() + xt.rows();
  auto row_of = [&](size_t i) {
    return i < xs.rows() ? xs.row(i) : xt.row(i - xs.rows());
  };
  std::vector<double> dists;
  dists.reserve(max_pairs);
  for (size_t k = 0; k < max_pairs; ++k) {
    const size_t i = rng.UniformInt(n);
    size_t j = rng.UniformInt(n);
    if (i == j) j = (j + 1) % n;
    const double d2 = SquaredDistance(row_of(i), row_of(j), d);
    if (d2 > 0) dists.push_back(std::sqrt(d2));
  }
  if (dists.empty()) return 1.0;
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const double median = dists[dists.size() / 2];
  return median > 0 ? median : 1.0;
}

namespace ag_ops {

using sttr::ag::MakeNode;
using sttr::ag::Variable;
using Node = sttr::ag::internal::Node;

Variable MmdLoss(const Variable& xs, const Variable& xt,
                 const std::vector<double>& sigmas) {
  CheckInputs(xs.value(), xt.value());
  STTR_CHECK(!sigmas.empty());
  double total = 0;
  for (double sigma : sigmas) total += MmdBiased(xs.value(), xt.value(), sigma);

  auto ns_node = xs.node();
  auto nt_node = xt.node();
  return MakeNode(
      Tensor::Scalar(static_cast<float>(total)), {ns_node, nt_node},
      [ns_node, nt_node, sigmas](Node& self) {
        const Tensor& a = ns_node->value;
        const Tensor& b = nt_node->value;
        const size_t ns = a.rows(), nt = b.rows(), d = a.cols();
        const double dns = static_cast<double>(ns);
        const double dnt = static_cast<double>(nt);
        const float g = self.grad[0];
        Tensor* ga = ns_node->requires_grad ? &ns_node->EnsureGrad() : nullptr;
        Tensor* gb = nt_node->requires_grad ? &nt_node->EnsureGrad() : nullptr;
        if (ga == nullptr && gb == nullptr) return;
        for (double sigma : sigmas) {
          const double inv_s2 = 1.0 / (sigma * sigma);
          // d/dx_i of 1/ns^2 sum_{jl} k(x_j, x_l): row i appears in both
          // positions, giving 2/ns^2 sum_j k(x_i, x_j)(x_j - x_i)/s^2.
          if (ga != nullptr) {
            for (size_t i = 0; i < ns; ++i) {
              float* grow = ga->row(i);
              const float* xi = a.row(i);
              for (size_t j = 0; j < ns; ++j) {
                const double k = GaussianKernel(xi, a.row(j), d, sigma);
                const double c = g * 2.0 / (dns * dns) * k * inv_s2;
                const float* xj = a.row(j);
                for (size_t l = 0; l < d; ++l) {
                  grow[l] += static_cast<float>(c * (xj[l] - xi[l]));
                }
              }
              for (size_t j = 0; j < nt; ++j) {
                const double k = GaussianKernel(xi, b.row(j), d, sigma);
                const double c = -g * 2.0 / (dns * dnt) * k * inv_s2;
                const float* yj = b.row(j);
                for (size_t l = 0; l < d; ++l) {
                  grow[l] += static_cast<float>(c * (yj[l] - xi[l]));
                }
              }
            }
          }
          if (gb != nullptr) {
            for (size_t i = 0; i < nt; ++i) {
              float* grow = gb->row(i);
              const float* yi = b.row(i);
              for (size_t j = 0; j < nt; ++j) {
                const double k = GaussianKernel(yi, b.row(j), d, sigma);
                const double c = g * 2.0 / (dnt * dnt) * k * inv_s2;
                const float* yj = b.row(j);
                for (size_t l = 0; l < d; ++l) {
                  grow[l] += static_cast<float>(c * (yj[l] - yi[l]));
                }
              }
              for (size_t j = 0; j < ns; ++j) {
                const double k = GaussianKernel(yi, a.row(j), d, sigma);
                const double c = -g * 2.0 / (dns * dnt) * k * inv_s2;
                const float* xj = a.row(j);
                for (size_t l = 0; l < d; ++l) {
                  grow[l] += static_cast<float>(c * (xj[l] - yi[l]));
                }
              }
            }
          }
        }
      },
      "mmd_biased");
}

Variable MmdLossLinear(const Variable& xs, const Variable& xt,
                       const std::vector<double>& sigmas) {
  CheckInputs(xs.value(), xt.value());
  STTR_CHECK(!sigmas.empty());
  const size_t m = std::min(xs.value().rows(), xt.value().rows()) / 2;
  if (m == 0) return MmdLoss(xs, xt, sigmas);

  double total = 0;
  for (double sigma : sigmas) total += MmdLinear(xs.value(), xt.value(), sigma);

  auto ns_node = xs.node();
  auto nt_node = xt.node();
  return MakeNode(
      Tensor::Scalar(static_cast<float>(total)), {ns_node, nt_node},
      [ns_node, nt_node, sigmas, m](Node& self) {
        const Tensor& a = ns_node->value;
        const Tensor& b = nt_node->value;
        const size_t d = a.cols();
        const float g = self.grad[0];
        Tensor* ga = ns_node->requires_grad ? &ns_node->EnsureGrad() : nullptr;
        Tensor* gb = nt_node->requires_grad ? &nt_node->EnsureGrad() : nullptr;
        if (ga == nullptr && gb == nullptr) return;
        const double inv_m = 1.0 / static_cast<double>(m);
        // Adds c * k(u,v) * (v-u)/s^2 to grad_u and the mirror term to
        // grad_v, for one kernel pair inside the h_i average.
        auto add_pair = [&](Tensor* gu, size_t iu, const Tensor& u, Tensor* gv,
                            size_t iv, const Tensor& v, double sign,
                            double sigma) {
          const double inv_s2 = 1.0 / (sigma * sigma);
          const double k = GaussianKernel(u.row(iu), v.row(iv), d, sigma);
          const double c = g * sign * inv_m * k * inv_s2;
          const float* pu = u.row(iu);
          const float* pv = v.row(iv);
          if (gu != nullptr) {
            float* grow = gu->row(iu);
            for (size_t l = 0; l < d; ++l) {
              grow[l] += static_cast<float>(c * (pv[l] - pu[l]));
            }
          }
          if (gv != nullptr) {
            float* grow = gv->row(iv);
            for (size_t l = 0; l < d; ++l) {
              grow[l] += static_cast<float>(c * (pu[l] - pv[l]));
            }
          }
        };
        for (double sigma : sigmas) {
          for (size_t i = 0; i < m; ++i) {
            add_pair(ga, 2 * i, a, ga, 2 * i + 1, a, +1.0, sigma);
            add_pair(gb, 2 * i, b, gb, 2 * i + 1, b, +1.0, sigma);
            add_pair(ga, 2 * i, a, gb, 2 * i + 1, b, -1.0, sigma);
            add_pair(ga, 2 * i + 1, a, gb, 2 * i, b, -1.0, sigma);
          }
        }
      },
      "mmd_linear");
}

}  // namespace ag_ops
}  // namespace sttr
