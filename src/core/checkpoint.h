#ifndef STTR_CORE_CHECKPOINT_H_
#define STTR_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/fs.h"
#include "util/status.h"

namespace sttr {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`, continuing from
/// `seed` (pass the previous result to checksum in pieces).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// -- Little-endian scalar packing -------------------------------------------------
// Helpers shared by everything that builds or parses checkpoint sections.
// Readers consume from the front of a string_view and return false on
// truncation instead of reading past the end.

void AppendU32(std::string& out, uint32_t v);
void AppendU64(std::string& out, uint64_t v);
void AppendDouble(std::string& out, double v);
bool ReadU32(std::string_view& in, uint32_t* v);
bool ReadU64(std::string_view& in, uint64_t* v);
bool ReadDouble(std::string_view& in, double* v);
bool ReadBytes(std::string_view& in, size_t n, std::string_view* v);

// -- Container format versions ----------------------------------------------------
// v1: fp32 training checkpoints (model + optimizer + RNG streams + loss
//     history). Every pre-quantization file is v1 and always will be —
//     training keeps writing v1 so older builds can still read it.
// v2: quantized serving artifacts (int8 tables + quant MLP sections, no
//     optimizer/RNG state). Bumped so a pre-quantization reader rejects
//     them cleanly ("unsupported format version 2") instead of
//     misinterpreting sections it has never heard of.
// v3: delta checkpoints (core/delta.h): row-level embedding updates against
//     a named v1 base, published by the streaming ingest trainer. Same
//     bump rationale — a pre-streaming reader refuses them instead of
//     mistaking the row sections for a full model.
inline constexpr uint32_t kCheckpointFormatVersion = 1;
inline constexpr uint32_t kQuantCheckpointFormatVersion = 2;
inline constexpr uint32_t kDeltaCheckpointFormatVersion = 3;
inline constexpr uint32_t kMaxSupportedCheckpointVersion = 3;

/// One named blob inside a checkpoint file.
struct CheckpointSection {
  std::string name;
  std::string payload;
  uint32_t crc = 0;  // CRC32 of payload (filled by Writer/Reader)
};

/// Builds a versioned checkpoint container:
///
///   magic "STTRCKP1" | u32 version | u32 section_count |
///   per section: u32 name_len | name | u64 payload_len | payload | u32 crc32
///
/// Every section is length-prefixed and checksummed so that truncation and
/// bit-rot anywhere in the file surface as Status errors on read, never as
/// silently wrong parameters.
class CheckpointWriter {
 public:
  /// `version` is the container format version stamped into the header;
  /// training checkpoints use the v1 default, quantized serving artifacts
  /// pass kQuantCheckpointFormatVersion.
  explicit CheckpointWriter(uint32_t version = kCheckpointFormatVersion)
      : version_(version) {}

  void AddSection(std::string name, std::string payload);

  /// Serialised container bytes.
  std::string Encode() const;

  /// Encodes and writes atomically via AtomicWriteFile.
  Status WriteTo(Env& env, const std::string& path) const;

 private:
  uint32_t version_ = kCheckpointFormatVersion;
  std::vector<CheckpointSection> sections_;
};

/// Parses and fully verifies a checkpoint container: magic, version, every
/// section header, every length, every CRC. A reader that parses OK
/// guarantees all payloads are intact.
class CheckpointReader {
 public:
  /// `max_supported_version` rejects containers newer than the caller
  /// understands ("unsupported format version N"). The default accepts
  /// everything this build knows; passing kCheckpointFormatVersion
  /// reproduces (and tests) the pre-quantization reader's behaviour on a
  /// v2 file.
  static StatusOr<CheckpointReader> Parse(
      std::string bytes,
      uint32_t max_supported_version = kMaxSupportedCheckpointVersion);
  static StatusOr<CheckpointReader> Open(
      Env& env, const std::string& path,
      uint32_t max_supported_version = kMaxSupportedCheckpointVersion);

  const std::vector<CheckpointSection>& sections() const { return sections_; }
  bool HasSection(std::string_view name) const;

  /// Payload of section `name`; NotFound when absent.
  StatusOr<std::string> Section(std::string_view name) const;

  uint32_t version() const { return version_; }

 private:
  uint32_t version_ = 0;
  std::vector<CheckpointSection> sections_;
};

// -- Checkpoint directories -------------------------------------------------------

/// "ckpt-000042.sttr" for epoch 42. Epochs count completed training epochs.
std::string CheckpointFileName(size_t epoch);

/// Parses the epoch out of a CheckpointFileName-shaped name; error for
/// temp files and foreign names.
StatusOr<size_t> ParseCheckpointEpoch(const std::string& filename);

/// Full path of the newest checkpoint in `dir` that parses and passes every
/// checksum. Corrupt or torn files are skipped (newest-first), so after a
/// crash this finds the last durable state. NotFound when the directory
/// holds no valid checkpoint.
StatusOr<std::string> FindLatestValidCheckpoint(Env& env,
                                                const std::string& dir);

/// Deletes all but the `keep` newest checkpoints (by epoch) plus any
/// leftover temp files. keep == 0 is rejected.
Status RotateCheckpoints(Env& env, const std::string& dir, size_t keep);

}  // namespace sttr

#endif  // STTR_CORE_CHECKPOINT_H_
