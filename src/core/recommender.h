#ifndef STTR_CORE_RECOMMENDER_H_
#define STTR_CORE_RECOMMENDER_H_

#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "eval/protocol.h"
#include "util/status.h"

namespace sttr {

/// Bounded top-k selection over parallel (poi, score) arrays under the
/// canonical ranking order: higher score first, ties broken by smaller POI
/// id. Shared by RecommendTopK and the online serving path so both rank
/// identically. O(k) memory; returns best first.
std::vector<std::pair<PoiId, double>> TopKByScore(std::span<const PoiId> pois,
                                                  std::span<const double> scores,
                                                  size_t k);

/// Common interface of ST-TransRec, its ablation variants and every
/// baseline: fit on the crossing-city training split, then score
/// (user, poi) pairs for the evaluation protocol.
class Recommender : public PoiScorer {
 public:
  /// Trains the model. Must be called before Score().
  virtual Status Fit(const Dataset& dataset, const CrossCitySplit& split) = 0;

  /// Display name used in benchmark tables ("ST-TransRec", "PACE", ...).
  virtual std::string name() const = 0;

  /// Top-k POIs of `city` for `user` by Score(), optionally excluding a set
  /// (e.g. already-visited POIs). Returns (poi, score) pairs, best first.
  std::vector<std::pair<PoiId, double>> RecommendTopK(
      const Dataset& dataset, CityId city, UserId user, size_t k,
      const std::unordered_set<PoiId>* exclude = nullptr) const;
};

}  // namespace sttr

#endif  // STTR_CORE_RECOMMENDER_H_
