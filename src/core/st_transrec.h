#ifndef STTR_CORE_ST_TRANSREC_H_
#define STTR_CORE_ST_TRANSREC_H_

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "geo/density_resampler.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "text/context_graph.h"
#include "util/fs.h"
#include "util/rng.h"

namespace sttr {

struct DeltaCheckpoint;

/// STTR_TRAIN_WORKERS when set to a positive integer, else 1. The default
/// number of data-parallel training workers (StTransRecConfig below).
size_t DefaultTrainWorkers();

/// Hyper-parameters of ST-TransRec (paper §3 and §4.1 "Implementation
/// Details"). Defaults follow the Foursquare settings.
struct StTransRecConfig {
  // -- Architecture ------------------------------------------------------------
  size_t embedding_dim = 64;
  /// Stddev of the Gaussian embedding initialisation.
  float embedding_init_stddev = 0.01f;
  /// Hidden widths of the MLP tower, e.g. {128, 64, 32, 16}; the final
  /// 1-logit prediction layer is implicit.
  std::vector<size_t> hidden_dims = {128, 64, 32, 16};
  float dropout_rate = 0.1f;

  // -- Optimisation -------------------------------------------------------------
  /// The paper grid-searches {1e-5..5e-3} on the real data; on the smaller
  /// synthetic worlds 1e-2 converges in the epoch budget (see
  /// EXPERIMENTS.md, calibration).
  float learning_rate = 1e-2f;
  size_t batch_size = 128;
  size_t num_epochs = 8;
  /// Uniform negatives per observed interaction (paper: 4, after NCF).
  size_t negatives_per_positive = 4;
  /// Negative word contexts per positive edge in the skip-gram loss.
  size_t word_negatives = 4;

  // -- Transfer (MMD) -------------------------------------------------------------
  /// Weight lambda of the MMD term in Eq. 3. use_mmd=false gives
  /// ST-TransRec-1.
  bool use_mmd = true;
  double lambda_mmd = 1.0;
  /// Gaussian-kernel bandwidth. <= 0 selects the median heuristic per batch
  /// (the paper fixes it by grid search; the heuristic removes that knob --
  /// recorded as a substitution in DESIGN.md).
  double mmd_sigma = 0.0;
  /// POIs sampled per city per step for the MMD estimate.
  size_t mmd_batch = 64;
  /// Linear-time estimator (the paper's O(D) variant) vs full quadratic.
  bool use_linear_mmd = true;

  // -- Text --------------------------------------------------------------------
  /// Textual context prediction; use_text=false gives ST-TransRec-2.
  bool use_text = true;
  /// Weight of the context-prediction loss L_G in the joint objective.
  /// Eq. 3 uses 1.0; on the synthetic worlds the word bridge needs more
  /// gradient signal relative to the interaction loss (calibrated to 3.0,
  /// recorded in EXPERIMENTS.md).
  float text_loss_weight = 3.0f;

  // -- Geographic context (used by the PACE baseline, off for ST-TransRec) -----
  /// Adds a context-prediction loss over each POI's k nearest same-city
  /// neighbours (PACE's "geographical relations among POIs within a limited
  /// distance").
  bool use_geo_context = false;
  size_t geo_neighbors = 10;

  // -- Spatial resampling ---------------------------------------------------------
  /// Resampling rate alpha in [0,1]; 0 gives ST-TransRec-3.
  double resample_alpha = 0.10;
  /// n1 x n2 grid of the region segmentation.
  size_t grid_rows = 16;
  size_t grid_cols = 16;
  /// User-overlap merge threshold delta of Eq. 5.
  double region_delta = 0.10;
  /// When false, skip Algorithm 1 entirely and treat every grid cell as its
  /// own region (the naive baseline the segmentation is compared against in
  /// extra_segmentation_ablation).
  bool use_region_merging = true;

  // -- Checkpointing -------------------------------------------------------------
  /// When non-empty, Fit()/Resume() write a crash-safe checkpoint (model +
  /// optimizer state + RNG streams + loss history) into this directory at
  /// epoch boundaries. See core/checkpoint.h for the container format.
  std::string checkpoint_dir;
  /// Checkpoint after every n completed epochs (the final epoch is always
  /// checkpointed). Values < 1 behave like 1.
  size_t checkpoint_every_n_epochs = 1;
  /// Keep-last-K rotation: older checkpoints beyond the K newest are deleted
  /// after each successful write.
  size_t checkpoint_keep_last = 3;
  /// Filesystem used for checkpoint IO; null means Env::Default(). Tests
  /// inject a FaultInjectionEnv here.
  Env* env = nullptr;

  // -- Misc --------------------------------------------------------------------
  uint64_t seed = 123;
  /// Data-parallel training workers (the multi-GPU stand-in, Table 2).
  /// Fit() routes through ParallelTrainer when > 1; 1 trains in-process.
  size_t num_train_workers = DefaultTrainWorkers();
  bool verbose = false;
};

/// One sampled training step: the interaction batch (with negatives), the
/// skip-gram batch and the two MMD pools. Separated from gradient
/// computation so the data-parallel trainer can shard it.
struct TrainingBatch {
  std::vector<int64_t> users;
  std::vector<int64_t> pois;
  Tensor labels;

  std::vector<int64_t> sg_pois;
  std::vector<int64_t> sg_words;
  Tensor sg_labels;

  std::vector<int64_t> mmd_source;
  std::vector<int64_t> mmd_target;

  std::vector<int64_t> geo_pois_a;
  std::vector<int64_t> geo_pois_b;
  Tensor geo_labels;
};

/// Loss values of one step (diagnostics).
struct StepLosses {
  double interaction = 0.0;
  double text = 0.0;
  double mmd = 0.0;
  double geo = 0.0;
  double total = 0.0;
};

/// ST-TransRec (paper §3): joint deep model with user/POI/word embeddings,
/// an MLP interaction tower, skip-gram textual context prediction, MMD
/// transfer between source and target POI embedding distributions, and
/// density-based spatial resampling feeding the MMD sample pools.
///
/// Ablation variants map to config flags: -1 use_mmd=false,
/// -2 use_text=false, -3 resample_alpha=0.
class StTransRec : public Recommender {
 public:
  explicit StTransRec(StTransRecConfig config);

  Status Fit(const Dataset& dataset, const CrossCitySplit& split) override;

  /// Restores the newest valid checkpoint in `dir` (default:
  /// config.checkpoint_dir) and continues training to config.num_epochs.
  /// Everything is restored — parameters, optimizer moments and step count,
  /// every RNG stream (including per-worker streams when
  /// num_train_workers > 1) and loss_history() — so a run killed at a
  /// checkpointed epoch and resumed here produces bit-identical
  /// loss_history() and eval metrics to an uninterrupted Fit(). A checkpoint
  /// written under a different config or dataset is rejected via the stored
  /// config fingerprint (FailedPrecondition).
  Status Resume(const Dataset& dataset, const CrossCitySplit& split,
                const std::string& dir = "");

  double Score(UserId user, PoiId poi) const override;

  /// Batched inference (the figure/table benchmarks' hot path): gathers all
  /// candidate embeddings with one GatherRows, broadcasts the user row, and
  /// runs the MLP tower as (batch, dim) matrix products. Returns exactly
  /// the values per-pair Score() would — Score() delegates here.
  std::vector<double> ScoreBatch(UserId user,
                                 std::span<const PoiId> pois) const override;

  /// Mixed-user batched inference (the serving micro-batcher's hot path):
  /// gathers each pair's user and POI embedding rows into one (n, 2d) block
  /// and runs the tower once. Because the MLP kernels compute every output
  /// row independently of the rest of the batch, each returned value is
  /// bit-identical to Score(users[i], pois[i]).
  std::vector<double> ScorePairs(std::span<const UserId> users,
                                 std::span<const PoiId> pois) const override;

  /// Scores pre-gathered (user, poi) embedding pairs: `h` is the (n, 2d)
  /// block ScorePairs assembles internally — row i is [user_row | poi_row].
  /// This is the tower half of the serving path when embedding lookup lives
  /// behind an EmbeddingStore (possibly on remote shard servers): the store
  /// gathers the rows, this scores them. Same kernels and scalar sigmoid as
  /// ScorePairs, so for rows copied bit-exactly out of the tables the
  /// results are bit-identical to ScorePairs on the same id pairs.
  std::vector<double> ScoreGatheredPairs(const Tensor& h) const;

  /// Row-major learned embedding tables (after Fit()/Load()): the in-process
  /// EmbeddingStore serves views of these and the shard servers slice them.
  const Tensor& UserEmbeddingTable() const;
  const Tensor& PoiEmbeddingTable() const;
  /// The word table is the transfer bridge (Eq. 4); cold-start serving
  /// scores unseen (user, city) pairs through it.
  const Tensor& WordEmbeddingTable() const;

  std::string name() const override;

  const StTransRecConfig& config() const { return config_; }

  /// Mean total loss per epoch, filled by Fit().
  const std::vector<double>& loss_history() const { return loss_history_; }

  /// Learned POI embedding row (after Fit()).
  std::vector<float> PoiEmbedding(PoiId poi) const;

  /// Learned word embedding row (after Fit()); words are the bridge the
  /// transfer rides on, so inspecting their neighbourhoods explains
  /// recommendations (see examples/embedding_inspector.cpp).
  std::vector<float> WordEmbedding(WordId word) const;

  /// Region segmentation + resampler diagnostics per city (after Fit()).
  const std::vector<DensityResampler>& resamplers() const {
    return resamplers_;
  }

  // -- Building blocks exposed for ParallelTrainer and tests ------------------

  /// Prepares training state (id spaces, pools, parameters) without
  /// training. Fit() == Prepare() + num_epochs of epoch loops.
  Status Prepare(const Dataset& dataset, const CrossCitySplit& split);

  /// Prepare() has been called: parameters exist and Parameters() /
  /// ConfigFingerprint() are safe to call.
  bool prepared() const { return user_emb_ != nullptr; }

  /// Samples one step's batch using `rng`.
  TrainingBatch SampleBatch(Rng& rng) const;

  /// Runs forward/backward for `batch`, accumulating parameter gradients
  /// (does not step). `rng` drives dropout.
  StepLosses ComputeGradients(const TrainingBatch& batch, Rng& rng);

  /// Applies and clears accumulated gradients.
  void OptimizerStep();

  /// Steps per epoch implied by the training set and batch size.
  size_t StepsPerEpoch() const;

  /// All trainable parameters. The first NumEmbeddingParameters() entries
  /// are the embedding tables; the rest are dense MLP weights/biases.
  std::vector<ag::Variable> Parameters() const;

  /// Number of leading Parameters() entries that are embedding tables with
  /// sparse (row-touched) gradients: user, POI and word tables.
  size_t NumEmbeddingParameters() const { return 3; }

  /// Serialises all parameters (after Prepare()/Fit()).
  Status Save(std::ostream& out) const;

  /// Restores parameters written by Save() into a model that has been
  /// Prepare()d with the same config and dataset; marks the model fitted.
  Status Load(std::istream& in);

  /// Patches embedding rows in place from a streaming delta checkpoint
  /// (core/delta.h). Requires Prepare() with the same config and dataset as
  /// the delta's producer (verified via the stored config fingerprint); row
  /// indices are bounds-checked against the table shapes. Because deltas
  /// are cumulative against their base, applying a newer delta on top of an
  /// older one yields exactly base + newer. A delta carrying a dense-param
  /// refresh also restores the MLP tower from it. Marks the model fitted.
  Status ApplyDelta(const DeltaCheckpoint& delta);

  /// Canonical string of every config field that affects training plus the
  /// id-space sizes of the prepared dataset. Stored in each checkpoint and
  /// compared on restore so a checkpoint cannot be resumed under a different
  /// config or dataset. Requires Prepare(). num_epochs is deliberately
  /// excluded: resuming with a larger epoch budget is the normal
  /// train-longer workflow.
  std::string ConfigFingerprint() const;

  /// Writes a full training checkpoint for the current state (epoch counter
  /// is loss_history().size()). `worker_rngs` carries the data-parallel
  /// trainer's per-worker streams; null in the serial path. Exposed for
  /// ParallelTrainer and tests; Fit() calls this at epoch boundaries.
  Status WriteCheckpoint(const std::vector<Rng>* worker_rngs = nullptr) const;

  /// Restores the checkpoint at `path` into this Prepare()d model:
  /// parameters, optimizer state, loss history and RNG streams.
  /// `worker_rngs` must be sized to the worker count the checkpoint was
  /// written with (null in the serial path).
  Status RestoreFromCheckpoint(const std::string& path,
                               std::vector<Rng>* worker_rngs = nullptr);

 private:
  friend class ParallelTrainer;

  /// Shared body of Fit()/Resume(): Prepare, optionally restore from
  /// `resume_dir`, then train the remaining epochs with checkpointing.
  Status TrainInternal(const Dataset& dataset, const CrossCitySplit& split,
                       const std::string& resume_dir);

  /// Checkpoints when checkpoint_dir is set and the epoch boundary matches
  /// checkpoint_every_n_epochs (or training just finished).
  Status MaybeWriteCheckpoint(const std::vector<Rng>* worker_rngs) const;

  /// config.env or the process default.
  Env& env() const;

  void BuildRegionPools(const Dataset& dataset, const CrossCitySplit& split);

  StTransRecConfig config_;
  Rng rng_;
  mutable Rng eval_rng_;  // dropout source for (non-training) eval paths

  const Dataset* dataset_ = nullptr;

  // Parameters.
  std::unique_ptr<nn::Embedding> user_emb_;
  std::unique_ptr<nn::Embedding> poi_emb_;
  std::unique_ptr<nn::Embedding> word_emb_;
  std::unique_ptr<nn::Mlp> mlp_;
  std::unique_ptr<nn::Adam> optimizer_;

  // Training state.
  std::vector<std::pair<int64_t, int64_t>> positives_;  // (user, poi)
  std::vector<std::vector<int64_t>> user_visited_;      // sorted vectors
  std::vector<std::vector<int64_t>> city_pois_;         // per city
  std::vector<CityId> poi_city_;
  std::unique_ptr<TextualContextGraph> context_graph_;
  std::unique_ptr<UnigramNegativeSampler> word_sampler_;
  std::vector<int64_t> mmd_pool_source_;
  std::vector<int64_t> mmd_pool_target_;
  std::vector<int64_t> geo_edge_a_;
  std::vector<int64_t> geo_edge_b_;
  std::vector<DensityResampler> resamplers_;
  CityId target_city_ = -1;

  std::vector<double> loss_history_;
  bool fitted_ = false;
};

/// Convenience factories for the paper's ablation variants (§4.1).
StTransRecConfig MakeVariant1(StTransRecConfig base);  ///< no MMD
StTransRecConfig MakeVariant2(StTransRecConfig base);  ///< no text
StTransRecConfig MakeVariant3(StTransRecConfig base);  ///< no resampling

}  // namespace sttr

#endif  // STTR_CORE_ST_TRANSREC_H_
