#include "core/quantized_model.h"

#include <cstring>
#include <sstream>
#include <utility>

#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace sttr {

namespace {

constexpr char kSectionMeta[] = "meta";
constexpr char kSectionConfig[] = "config";
constexpr char kSectionQuantUser[] = "quant_user";
constexpr char kSectionQuantPoi[] = "quant_poi";
constexpr char kSectionQuantMlp0[] = "quant_mlp0";
constexpr char kSectionQuantTail[] = "quant_tail";

template <typename T>
bool WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

/// Tensor write in Tensor::Serialize's framing (ndim, dims, payload) except
/// the payload is u16 halves when `as_half` is set.
Status WriteTensorMaybeHalf(std::ostream& out, const Tensor& t, bool as_half) {
  if (!as_half) return t.Serialize(out);
  const uint64_t ndim = t.ndim();
  if (!WritePod(out, ndim)) return Status::IOError("fp16 tensor write failed");
  for (size_t d = 0; d < t.ndim(); ++d) {
    const uint64_t dim = t.shape()[d];
    if (!WritePod(out, dim)) return Status::IOError("fp16 tensor write failed");
  }
  for (size_t i = 0; i < t.size(); ++i) {
    const uint16_t h = FloatToHalf(t[i]);
    if (!WritePod(out, h)) return Status::IOError("fp16 tensor write failed");
  }
  return Status::OK();
}

StatusOr<Tensor> ReadTensorMaybeHalf(std::istream& in, bool as_half) {
  if (!as_half) return Tensor::Deserialize(in);
  uint64_t ndim = 0;
  if (!ReadPod(in, &ndim) || ndim == 0 || ndim > 8) {
    return Status::IOError("fp16 tensor: bad rank");
  }
  std::vector<size_t> shape(ndim);
  size_t total = 1;
  for (uint64_t d = 0; d < ndim; ++d) {
    uint64_t dim = 0;
    if (!ReadPod(in, &dim) || dim == 0 || dim > (uint64_t{1} << 32)) {
      return Status::IOError("fp16 tensor: bad dimension");
    }
    shape[d] = static_cast<size_t>(dim);
    total *= shape[d];
  }
  Tensor t(std::move(shape));
  for (size_t i = 0; i < total; ++i) {
    uint16_t h = 0;
    if (!ReadPod(in, &h)) return Status::IOError("fp16 tensor: truncated");
    t[i] = HalfToFloat(h);
  }
  return t;
}

/// Round-trips a tensor through fp16 in place (quantize-time, so the
/// in-memory scorer matches a checkpoint-reloaded one bit for bit).
void HalfRoundTrip(Tensor& t) {
  for (size_t i = 0; i < t.size(); ++i) t[i] = HalfToFloat(FloatToHalf(t[i]));
}

}  // namespace

StatusOr<QuantizedModel> QuantizedModel::Quantize(
    const StTransRec& model, const QuantizationConfig& config) {
  if (!model.prepared()) {
    return Status::FailedPrecondition(
        "Quantize: model has no parameters (call Prepare()/Fit() first)");
  }
  const std::vector<ag::Variable> params = model.Parameters();
  const std::vector<size_t>& hidden = model.config().hidden_dims;
  // user, poi, word tables, then (weight, bias) per hidden layer + output.
  const size_t expected = 3 + 2 * (hidden.size() + 1);
  if (params.size() != expected) {
    return Status::Internal("Quantize: expected " + std::to_string(expected) +
                            " parameters, got " +
                            std::to_string(params.size()));
  }
  QuantizedModel qm;
  const Tensor& user_t = params[0].value();
  const Tensor& poi_t = params[1].value();
  // params[2] is the word table: it only feeds the textual training loss,
  // never the user x POI scoring path, so the serving artifact drops it.
  qm.dim_ = user_t.cols();
  qm.user_q_ = QuantizeRows(user_t, config.embedding_scheme);
  qm.poi_q_ = QuantizeRows(poi_t, config.embedding_scheme);

  // Layer 0: transpose (2d, h0) -> (h0, 2d) so each output column becomes a
  // contiguous int8 row for DotI8, then quantize symmetric per row.
  const Tensor& w0 = params[3].value();
  const size_t two_d = w0.rows();
  const size_t h0 = w0.cols();
  if (two_d != 2 * qm.dim_) {
    return Status::Internal("Quantize: layer-0 weight rows " +
                            std::to_string(two_d) + " != 2*dim " +
                            std::to_string(2 * qm.dim_));
  }
  Tensor w0t({h0, two_d});
  for (size_t r = 0; r < two_d; ++r) {
    const float* src = w0.row(r);
    for (size_t j = 0; j < h0; ++j) w0t.row(j)[r] = src[j];
  }
  qm.w0t_ = QuantizeRows(w0t, QuantScheme::kSymmetric);
  qm.w0_colsum_top_.assign(h0, 0);
  qm.w0_colsum_bot_.assign(h0, 0);
  for (size_t j = 0; j < h0; ++j) {
    const int8_t* qw = qm.w0t_.row(j);
    qm.w0_colsum_top_[j] = simd::SumI8Scalar(qw, qm.dim_);
    qm.w0_colsum_bot_[j] = simd::SumI8Scalar(qw + qm.dim_, qm.dim_);
  }
  const Tensor& b0 = params[4].value();
  qm.b0_.assign(b0.data(), b0.data() + b0.size());
  qm.layer0_relu_ = !hidden.empty();

  for (size_t p = 5; p + 1 < params.size(); p += 2) {
    qm.tail_weights_.push_back(params[p].value());
    qm.tail_biases_.push_back(params[p + 1].value());
  }
  if (config.fp16_tail) {
    for (Tensor& w : qm.tail_weights_) HalfRoundTrip(w);
    for (Tensor& b : qm.tail_biases_) HalfRoundTrip(b);
  }
  qm.fp16_tail_ = config.fp16_tail;
  qm.fingerprint_ = model.ConfigFingerprint();
  qm.epoch_ = config.epoch >= 0 ? static_cast<uint64_t>(config.epoch)
                                : model.loss_history().size();
  STTR_RETURN_IF_ERROR(qm.Validate());
  return qm;
}

Status QuantizedModel::Validate() const {
  if (user_q_.cols != dim_ || poi_q_.cols != dim_ || dim_ == 0) {
    return Status::IOError("quantized model: embedding width mismatch");
  }
  if (w0t_.scheme != QuantScheme::kSymmetric) {
    return Status::IOError("quantized model: layer-0 weight must be symmetric");
  }
  if (w0t_.cols != 2 * dim_) {
    return Status::IOError("quantized model: layer-0 weight width " +
                           std::to_string(w0t_.cols) + " != 2*dim");
  }
  const size_t h0 = w0t_.rows;
  if (h0 == 0 || w0_colsum_top_.size() != h0 ||
      w0_colsum_bot_.size() != h0 || b0_.size() != h0) {
    return Status::IOError("quantized model: layer-0 metadata size mismatch");
  }
  if (tail_weights_.size() != tail_biases_.size()) {
    return Status::IOError("quantized model: tail weight/bias count mismatch");
  }
  size_t prev = h0;
  for (size_t l = 0; l < tail_weights_.size(); ++l) {
    const Tensor& w = tail_weights_[l];
    const Tensor& b = tail_biases_[l];
    if (w.ndim() != 2 || w.rows() != prev || b.size() != w.cols()) {
      return Status::IOError("quantized model: tail layer " +
                             std::to_string(l) + " shape mismatch");
    }
    prev = w.cols();
  }
  if (prev != 1) {
    return Status::IOError("quantized model: final width " +
                           std::to_string(prev) + " != 1 logit");
  }
  // No tail means layer 0 IS the output layer; with a tail it is a hidden
  // layer. Either way layer0_relu_ must agree (it is derived at load time).
  if (layer0_relu_ != !tail_weights_.empty()) {
    return Status::IOError("quantized model: layer-0 relu flag inconsistent");
  }
  return Status::OK();
}

double QuantizedModel::Score(UserId user, PoiId poi) const {
  return ScoreCore({&user, 1}, {&poi, 1})[0];
}

std::vector<double> QuantizedModel::ScoreBatch(
    UserId user, std::span<const PoiId> pois) const {
  const std::vector<UserId> users(pois.size(), user);
  return ScoreCore(users, pois);
}

std::vector<double> QuantizedModel::ScorePairs(
    std::span<const UserId> users, std::span<const PoiId> pois) const {
  STTR_CHECK_EQ(users.size(), pois.size());
  return ScoreCore(users, pois);
}

std::vector<double> QuantizedModel::ScoreCore(
    std::span<const UserId> users, std::span<const PoiId> pois) const {
  const size_t n = pois.size();
  if (n == 0) return {};
  const size_t d = dim_;
  const size_t h0 = w0t_.rows;
  Tensor h({n, h0});
  for (size_t i = 0; i < n; ++i) {
    const UserId u = users[i];
    const PoiId v = pois[i];
    STTR_CHECK_GE(u, 0);
    STTR_CHECK_LT(static_cast<size_t>(u), user_q_.rows);
    STTR_CHECK_GE(v, 0);
    STTR_CHECK_LT(static_cast<size_t>(v), poi_q_.rows);
    // The int8 rows are read straight out of the tables: unlike the fp32
    // path there is no gather-into-(n,2d) copy at all.
    const int8_t* qu = user_q_.row(static_cast<size_t>(u));
    const int8_t* qv = poi_q_.row(static_cast<size_t>(v));
    const float su = user_q_.scale(static_cast<size_t>(u));
    const float sv = poi_q_.scale(static_cast<size_t>(v));
    const int32_t zu = user_q_.zero_point(static_cast<size_t>(u));
    const int32_t zv = poi_q_.zero_point(static_cast<size_t>(v));
    float* hrow = h.row(i);
    for (size_t j = 0; j < h0; ++j) {
      const int8_t* qw = w0t_.row(j);
      const int32_t top = simd::DotI8(qu, qw, d);
      const int32_t bot = simd::DotI8(qv, qw + d, d);
      const float sw = w0t_.scale(j);
      float out =
          b0_[j] +
          su * sw * static_cast<float>(top - zu * w0_colsum_top_[j]) +
          sv * sw * static_cast<float>(bot - zv * w0_colsum_bot_[j]);
      if (layer0_relu_ && out < 0.0f) out = 0.0f;
      hrow[j] = out;
    }
  }
  Tensor cur = std::move(h);
  for (size_t l = 0; l < tail_weights_.size(); ++l) {
    Tensor z = AddRowBroadcast(ParallelMatMul(cur, tail_weights_[l]),
                               tail_biases_[l]);
    // Hidden tail layers get ReLU; the final (output) layer stays a logit.
    cur = (l + 1 == tail_weights_.size()) ? std::move(z) : Relu(z);
  }
  std::vector<double> out(n);
  // Scalar sigmoid, same reason as the fp32 scorer: keeps every batch
  // position bit-identical to a 1-pair call.
  for (size_t i = 0; i < n; ++i) out[i] = SigmoidScalar(cur[i]);
  return out;
}

size_t QuantizedModel::EmbeddingBytes() const {
  return user_q_.ByteSize() + poi_q_.ByteSize();
}

size_t QuantizedModel::ApproxBytes() const {
  size_t bytes = EmbeddingBytes() + w0t_.ByteSize();
  bytes += w0_colsum_top_.size() * sizeof(int32_t);
  bytes += w0_colsum_bot_.size() * sizeof(int32_t);
  bytes += b0_.size() * sizeof(float);
  for (const Tensor& w : tail_weights_) bytes += w.size() * sizeof(float);
  for (const Tensor& b : tail_biases_) bytes += b.size() * sizeof(float);
  return bytes;
}

Status QuantizedModel::WriteCheckpointFile(Env& env,
                                           const std::string& path) const {
  CheckpointWriter writer(kQuantCheckpointFormatVersion);
  {
    std::string meta;
    AppendU64(meta, epoch_);
    writer.AddSection(kSectionMeta, std::move(meta));
  }
  writer.AddSection(kSectionConfig, fingerprint_);
  {
    std::ostringstream os(std::ios::binary);
    STTR_RETURN_IF_ERROR(user_q_.Serialize(os));
    writer.AddSection(kSectionQuantUser, std::move(os).str());
  }
  {
    std::ostringstream os(std::ios::binary);
    STTR_RETURN_IF_ERROR(poi_q_.Serialize(os));
    writer.AddSection(kSectionQuantPoi, std::move(os).str());
  }
  {
    std::ostringstream os(std::ios::binary);
    STTR_RETURN_IF_ERROR(w0t_.Serialize(os));
    os.write(reinterpret_cast<const char*>(w0_colsum_top_.data()),
             static_cast<std::streamsize>(w0_colsum_top_.size() *
                                          sizeof(int32_t)));
    os.write(reinterpret_cast<const char*>(w0_colsum_bot_.data()),
             static_cast<std::streamsize>(w0_colsum_bot_.size() *
                                          sizeof(int32_t)));
    os.write(reinterpret_cast<const char*>(b0_.data()),
             static_cast<std::streamsize>(b0_.size() * sizeof(float)));
    if (!os) return Status::IOError("quant_mlp0 section write failed");
    writer.AddSection(kSectionQuantMlp0, std::move(os).str());
  }
  {
    std::ostringstream os(std::ios::binary);
    const uint8_t half = fp16_tail_ ? 1 : 0;
    const uint64_t layers = tail_weights_.size();
    if (!WritePod(os, half) || !WritePod(os, layers)) {
      return Status::IOError("quant_tail section write failed");
    }
    for (size_t l = 0; l < tail_weights_.size(); ++l) {
      STTR_RETURN_IF_ERROR(
          WriteTensorMaybeHalf(os, tail_weights_[l], fp16_tail_));
      STTR_RETURN_IF_ERROR(
          WriteTensorMaybeHalf(os, tail_biases_[l], fp16_tail_));
    }
    writer.AddSection(kSectionQuantTail, std::move(os).str());
  }
  return writer.WriteTo(env, path);
}

StatusOr<QuantizedModel> QuantizedModel::FromReader(
    const CheckpointReader& reader) {
  if (reader.version() != kQuantCheckpointFormatVersion) {
    return Status::FailedPrecondition(
        "not a quantized checkpoint (format version " +
        std::to_string(reader.version()) + ", expected " +
        std::to_string(kQuantCheckpointFormatVersion) + ")");
  }
  QuantizedModel qm;
  {
    StatusOr<std::string> meta = reader.Section(kSectionMeta);
    if (!meta.ok()) return meta.status();
    std::string_view in(*meta);
    uint64_t epoch = 0;
    if (!ReadU64(in, &epoch)) {
      return Status::IOError("quantized checkpoint: bad meta section");
    }
    qm.epoch_ = epoch;
  }
  {
    StatusOr<std::string> fp = reader.Section(kSectionConfig);
    if (!fp.ok()) return fp.status();
    qm.fingerprint_ = *std::move(fp);
  }
  {
    StatusOr<std::string> payload = reader.Section(kSectionQuantUser);
    if (!payload.ok()) return payload.status();
    std::istringstream is(*payload, std::ios::binary);
    StatusOr<RowQuantizedMatrix> m = RowQuantizedMatrix::Deserialize(is);
    if (!m.ok()) return m.status();
    qm.user_q_ = *std::move(m);
  }
  {
    StatusOr<std::string> payload = reader.Section(kSectionQuantPoi);
    if (!payload.ok()) return payload.status();
    std::istringstream is(*payload, std::ios::binary);
    StatusOr<RowQuantizedMatrix> m = RowQuantizedMatrix::Deserialize(is);
    if (!m.ok()) return m.status();
    qm.poi_q_ = *std::move(m);
  }
  {
    StatusOr<std::string> payload = reader.Section(kSectionQuantMlp0);
    if (!payload.ok()) return payload.status();
    std::istringstream is(*payload, std::ios::binary);
    StatusOr<RowQuantizedMatrix> m = RowQuantizedMatrix::Deserialize(is);
    if (!m.ok()) return m.status();
    qm.w0t_ = *std::move(m);
    const size_t h0 = qm.w0t_.rows;
    qm.w0_colsum_top_.resize(h0);
    qm.w0_colsum_bot_.resize(h0);
    qm.b0_.resize(h0);
    is.read(reinterpret_cast<char*>(qm.w0_colsum_top_.data()),
            static_cast<std::streamsize>(h0 * sizeof(int32_t)));
    is.read(reinterpret_cast<char*>(qm.w0_colsum_bot_.data()),
            static_cast<std::streamsize>(h0 * sizeof(int32_t)));
    is.read(reinterpret_cast<char*>(qm.b0_.data()),
            static_cast<std::streamsize>(h0 * sizeof(float)));
    if (!is) return Status::IOError("quantized checkpoint: bad quant_mlp0");
  }
  {
    StatusOr<std::string> payload = reader.Section(kSectionQuantTail);
    if (!payload.ok()) return payload.status();
    std::istringstream is(*payload, std::ios::binary);
    uint8_t half = 0;
    uint64_t layers = 0;
    if (!ReadPod(is, &half) || !ReadPod(is, &layers) || layers > 64) {
      return Status::IOError("quantized checkpoint: bad quant_tail header");
    }
    qm.fp16_tail_ = half != 0;
    for (uint64_t l = 0; l < layers; ++l) {
      StatusOr<Tensor> w = ReadTensorMaybeHalf(is, qm.fp16_tail_);
      if (!w.ok()) return w.status();
      StatusOr<Tensor> b = ReadTensorMaybeHalf(is, qm.fp16_tail_);
      if (!b.ok()) return b.status();
      qm.tail_weights_.push_back(*std::move(w));
      qm.tail_biases_.push_back(*std::move(b));
    }
  }
  qm.dim_ = qm.user_q_.cols;
  qm.layer0_relu_ = !qm.tail_weights_.empty();
  STTR_RETURN_IF_ERROR(qm.Validate());
  return qm;
}

StatusOr<QuantizedModel> QuantizedModel::LoadFromCheckpoint(
    Env& env, const std::string& path) {
  StatusOr<CheckpointReader> reader = CheckpointReader::Open(env, path);
  if (!reader.ok()) return reader.status();
  return FromReader(*reader);
}

}  // namespace sttr
