#include "core/st_transrec.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "autograd/ops.h"
#include "core/checkpoint.h"
#include "core/delta.h"
#include "core/parallel_trainer.h"
#include "geo/grid.h"
#include "geo/region_segmentation.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "transfer/mmd.h"
#include "util/check.h"
#include "util/logging.h"

namespace sttr {

namespace {

bool SortedContains(const std::vector<int64_t>& v, int64_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace

size_t DefaultTrainWorkers() {
  if (const char* env = std::getenv("STTR_TRAIN_WORKERS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
    STTR_LOG(Warning) << "STTR_TRAIN_WORKERS='" << env
                      << "' is not a positive integer; falling back to 1 "
                         "training worker";
  }
  return 1;
}

StTransRec::StTransRec(StTransRecConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      eval_rng_(config_.seed ^ 0xE5A1u) {
  STTR_CHECK_GT(config_.embedding_dim, 0u);
  STTR_CHECK_GT(config_.batch_size, 0u);
  STTR_CHECK_GE(config_.resample_alpha, 0.0);
  STTR_CHECK_LE(config_.resample_alpha, 1.0);
}

std::string StTransRec::name() const {
  if (!config_.use_mmd && config_.use_text) return "ST-TransRec-1";
  if (!config_.use_text) return "ST-TransRec-2";
  if (config_.resample_alpha == 0.0) return "ST-TransRec-3";
  return "ST-TransRec";
}

Status StTransRec::Prepare(const Dataset& dataset,
                           const CrossCitySplit& split) {
  dataset_ = &dataset;
  target_city_ = split.target_city;
  if (split.train.empty()) {
    return Status::InvalidArgument("empty training split");
  }

  // ---- Interaction data. ------------------------------------------------------
  positives_.clear();
  positives_.reserve(split.train.size());
  user_visited_.assign(dataset.num_users(), {});
  for (size_t idx : split.train) {
    const CheckinRecord& rec = dataset.checkins()[idx];
    positives_.emplace_back(rec.user, rec.poi);
    user_visited_[static_cast<size_t>(rec.user)].push_back(rec.poi);
  }
  for (auto& v : user_visited_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  poi_city_.resize(dataset.num_pois());
  city_pois_.assign(dataset.num_cities(), {});
  for (const Poi& p : dataset.pois()) {
    poi_city_[static_cast<size_t>(p.id)] = p.city;
    city_pois_[static_cast<size_t>(p.city)].push_back(p.id);
  }

  // ---- Textual context graph (Definition 2). -----------------------------------
  context_graph_ = std::make_unique<TextualContextGraph>(
      dataset.num_pois(), dataset.vocabulary().size());
  for (const Poi& p : dataset.pois()) {
    for (WordId w : p.words) context_graph_->AddEdge(p.id, w);
  }
  if (config_.use_text) {
    if (context_graph_->num_edges() == 0) {
      return Status::FailedPrecondition(
          "use_text requires POIs with textual descriptions");
    }
    word_sampler_ = std::make_unique<UnigramNegativeSampler>(
        context_graph_->word_counts());
  }

  // ---- Region segmentation + resampling pools. ----------------------------------
  BuildRegionPools(dataset, split);

  // ---- Geographic context edges (PACE): k nearest same-city neighbours. -----
  geo_edge_a_.clear();
  geo_edge_b_.clear();
  if (config_.use_geo_context) {
    for (size_t c = 0; c < dataset.num_cities(); ++c) {
      const auto& pois = city_pois_[c];
      const size_t k = std::min(config_.geo_neighbors,
                                pois.empty() ? size_t{0} : pois.size() - 1);
      if (k == 0) continue;
      for (size_t i = 0; i < pois.size(); ++i) {
        std::vector<std::pair<double, int64_t>> dists;
        dists.reserve(pois.size() - 1);
        const GeoPoint& pi = dataset.poi(pois[i]).location;
        for (size_t j = 0; j < pois.size(); ++j) {
          if (i == j) continue;
          dists.emplace_back(HaversineKm(pi, dataset.poi(pois[j]).location),
                             pois[j]);
        }
        std::partial_sort(dists.begin(),
                          dists.begin() + static_cast<long>(k), dists.end());
        for (size_t j = 0; j < k; ++j) {
          geo_edge_a_.push_back(pois[i]);
          geo_edge_b_.push_back(dists[j].second);
        }
      }
    }
  }

  // ---- Parameters. ---------------------------------------------------------------
  const size_t d = config_.embedding_dim;
  const float init = config_.embedding_init_stddev;
  user_emb_ =
      std::make_unique<nn::Embedding>(dataset.num_users(), d, rng_, init);
  poi_emb_ =
      std::make_unique<nn::Embedding>(dataset.num_pois(), d, rng_, init);
  word_emb_ = std::make_unique<nn::Embedding>(dataset.vocabulary().size(), d,
                                              rng_, init);
  mlp_ = std::make_unique<nn::Mlp>(2 * d, config_.hidden_dims,
                                   config_.dropout_rate, rng_);
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config_.learning_rate);
  loss_history_.clear();
  fitted_ = false;
  return Status::OK();
}

void StTransRec::BuildRegionPools(const Dataset& dataset,
                                  const CrossCitySplit& split) {
  mmd_pool_source_.clear();
  mmd_pool_target_.clear();
  resamplers_.clear();

  // Group training check-ins per city.
  std::vector<std::vector<size_t>> city_checkins(dataset.num_cities());
  for (size_t idx : split.train) {
    city_checkins[static_cast<size_t>(dataset.checkins()[idx].city)]
        .push_back(idx);
  }

  for (size_t c = 0; c < dataset.num_cities(); ++c) {
    auto& pool = (static_cast<CityId>(c) == target_city_) ? mmd_pool_target_
                                                          : mmd_pool_source_;
    if (city_checkins[c].empty()) {
      // Still need a resampler slot to keep indices aligned with city ids.
      resamplers_.emplace_back(std::vector<size_t>{1}, std::vector<int>{},
                               std::vector<int64_t>{});
      continue;
    }

    // Segment the city into uniformly accessible regions (Algorithm 1).
    GridIndex grid(dataset.city(static_cast<CityId>(c)).box,
                   config_.grid_rows, config_.grid_cols);
    RegionSegmenter segmenter(grid, config_.region_delta);
    for (size_t idx : city_checkins[c]) {
      const CheckinRecord& rec = dataset.checkins()[idx];
      segmenter.AddVisit(grid.CellOf(dataset.poi(rec.poi).location), rec.user);
    }
    RegionAssignment regions;
    if (config_.use_region_merging) {
      regions = segmenter.Segment(rng_);
    } else {
      // Naive baseline: every cell is a singleton region.
      regions.cell_to_region.resize(grid.NumCells());
      regions.region_cells.resize(grid.NumCells());
      for (size_t cell = 0; cell < grid.NumCells(); ++cell) {
        regions.cell_to_region[cell] = static_cast<int>(cell);
        regions.region_cells[cell] = {cell};
      }
    }

    std::vector<size_t> region_sizes(regions.num_regions());
    for (size_t r = 0; r < regions.num_regions(); ++r) {
      region_sizes[r] = regions.region_cells[r].size();
    }
    std::vector<int> checkin_regions;
    std::vector<int64_t> checkin_pois;
    checkin_regions.reserve(city_checkins[c].size());
    for (size_t idx : city_checkins[c]) {
      const CheckinRecord& rec = dataset.checkins()[idx];
      const size_t cell = grid.CellOf(dataset.poi(rec.poi).location);
      checkin_regions.push_back(regions.cell_to_region[cell]);
      checkin_pois.push_back(rec.poi);
    }
    resamplers_.emplace_back(std::move(region_sizes), checkin_regions,
                             checkin_pois);

    // The MMD pool: raw check-ins plus alpha-scaled synthetic draws (Eq. 9).
    pool.insert(pool.end(), checkin_pois.begin(), checkin_pois.end());
    const std::vector<int64_t> extra =
        resamplers_.back().SampleExtra(config_.resample_alpha, rng_);
    pool.insert(pool.end(), extra.begin(), extra.end());
    if (config_.verbose) {
      STTR_LOG(Info) << dataset.city(static_cast<CityId>(c)).name << ": "
                     << regions.num_regions() << " regions, "
                     << checkin_pois.size() << " raw + " << extra.size()
                     << " resampled check-ins in MMD pool";
    }
  }
}

size_t StTransRec::StepsPerEpoch() const {
  STTR_CHECK(!positives_.empty()) << "Prepare() not called";
  return (positives_.size() + config_.batch_size - 1) / config_.batch_size;
}

TrainingBatch StTransRec::SampleBatch(Rng& rng) const {
  STTR_CHECK(!positives_.empty()) << "Prepare() not called";
  TrainingBatch batch;

  // ---- Interaction batch with uniform unvisited negatives. ---------------------
  const size_t rows =
      config_.batch_size * (1 + config_.negatives_per_positive);
  batch.users.reserve(rows);
  batch.pois.reserve(rows);
  std::vector<float> labels;
  labels.reserve(rows);
  for (size_t b = 0; b < config_.batch_size; ++b) {
    const auto& [u, v] = positives_[rng.UniformInt(positives_.size())];
    batch.users.push_back(u);
    batch.pois.push_back(v);
    labels.push_back(1.0f);
    const auto& pool = city_pois_[static_cast<size_t>(
        poi_city_[static_cast<size_t>(v)])];
    for (size_t k = 0; k < config_.negatives_per_positive; ++k) {
      int64_t neg = static_cast<int64_t>(pool[rng.UniformInt(pool.size())]);
      for (int tries = 0;
           tries < 8 &&
           SortedContains(user_visited_[static_cast<size_t>(u)], neg);
           ++tries) {
        neg = static_cast<int64_t>(pool[rng.UniformInt(pool.size())]);
      }
      batch.users.push_back(u);
      batch.pois.push_back(neg);
      labels.push_back(0.0f);
    }
  }
  const size_t n_labels = labels.size();
  batch.labels = Tensor({n_labels}, std::move(labels));

  // ---- Skip-gram batch over the textual context graph (Eq. 4). ----------------
  if (config_.use_text && context_graph_->num_edges() > 0) {
    const size_t n_edges = config_.batch_size;
    std::vector<float> sg_labels;
    sg_labels.reserve(n_edges * (1 + config_.word_negatives));
    for (size_t b = 0; b < n_edges; ++b) {
      const size_t e = rng.UniformInt(context_graph_->num_edges());
      const int64_t v = context_graph_->edge_pois()[e];
      batch.sg_pois.push_back(v);
      batch.sg_words.push_back(context_graph_->edge_words()[e]);
      sg_labels.push_back(1.0f);
      for (size_t k = 0; k < config_.word_negatives; ++k) {
        batch.sg_pois.push_back(v);
        batch.sg_words.push_back(
            word_sampler_->SampleNegativeFor(*context_graph_, v, rng));
        sg_labels.push_back(0.0f);
      }
    }
    const size_t n_sg = sg_labels.size();
    batch.sg_labels = Tensor({n_sg}, std::move(sg_labels));
  }

  // ---- Geographic context batch (PACE). ----------------------------------------
  if (config_.use_geo_context && !geo_edge_a_.empty()) {
    std::vector<float> geo_labels;
    geo_labels.reserve(config_.batch_size * 2);
    for (size_t b = 0; b < config_.batch_size; ++b) {
      const size_t e = rng.UniformInt(geo_edge_a_.size());
      const int64_t a = geo_edge_a_[e];
      batch.geo_pois_a.push_back(a);
      batch.geo_pois_b.push_back(geo_edge_b_[e]);
      geo_labels.push_back(1.0f);
      const auto& pool =
          city_pois_[static_cast<size_t>(poi_city_[static_cast<size_t>(a)])];
      batch.geo_pois_a.push_back(a);
      batch.geo_pois_b.push_back(
          static_cast<int64_t>(pool[rng.UniformInt(pool.size())]));
      geo_labels.push_back(0.0f);
    }
    const size_t n_geo = geo_labels.size();
    batch.geo_labels = Tensor({n_geo}, std::move(geo_labels));
  }

  // ---- MMD pools (Eq. 10 on a minibatch). -------------------------------------
  if (config_.use_mmd && !mmd_pool_source_.empty() &&
      !mmd_pool_target_.empty()) {
    batch.mmd_source.reserve(config_.mmd_batch);
    batch.mmd_target.reserve(config_.mmd_batch);
    for (size_t i = 0; i < config_.mmd_batch; ++i) {
      batch.mmd_source.push_back(
          mmd_pool_source_[rng.UniformInt(mmd_pool_source_.size())]);
      batch.mmd_target.push_back(
          mmd_pool_target_[rng.UniformInt(mmd_pool_target_.size())]);
    }
  }
  return batch;
}

StepLosses StTransRec::ComputeGradients(const TrainingBatch& batch, Rng& rng) {
  STTR_CHECK(user_emb_ != nullptr) << "Prepare() not called";
  StepLosses losses;

  // Interaction tower: L_I (Eq. 11-13).
  ag::Variable xu = user_emb_->Forward(batch.users);
  ag::Variable xv = poi_emb_->Forward(batch.pois);
  ag::Variable logits =
      mlp_->Forward(ag::ConcatCols(xu, xv), /*training=*/true, rng);
  ag::Variable total = ag::BceWithLogits(logits, batch.labels);
  losses.interaction = total.value()[0];

  // Textual context prediction: L_G (Eq. 4).
  if (!batch.sg_pois.empty()) {
    ag::Variable pv = poi_emb_->Forward(batch.sg_pois);
    ag::Variable wv = word_emb_->Forward(batch.sg_words);
    ag::Variable lg =
        ag::BceWithLogits(ag::RowwiseDot(pv, wv), batch.sg_labels);
    losses.text = lg.value()[0];
    total = ag::Add(total, ag::Scale(lg, config_.text_loss_weight));
  }

  // Geographic context prediction (PACE).
  if (!batch.geo_pois_a.empty()) {
    ag::Variable pa = poi_emb_->Forward(batch.geo_pois_a);
    ag::Variable pb = poi_emb_->Forward(batch.geo_pois_b);
    ag::Variable lgeo =
        ag::BceWithLogits(ag::RowwiseDot(pa, pb), batch.geo_labels);
    losses.geo = lgeo.value()[0];
    total = ag::Add(total, lgeo);
  }

  // Transfer: lambda * D(P, Q) (Eq. 10).
  if (!batch.mmd_source.empty() && !batch.mmd_target.empty()) {
    ag::Variable xs = poi_emb_->Forward(batch.mmd_source);
    ag::Variable xt = poi_emb_->Forward(batch.mmd_target);
    double sigma = config_.mmd_sigma;
    if (sigma <= 0.0) {
      sigma = MedianHeuristicSigma(xs.value(), xt.value(), 256, rng);
    }
    ag::Variable mmd =
        config_.use_linear_mmd
            ? ag_ops::MmdLossLinear(xs, xt, {sigma})
            : ag_ops::MmdLoss(xs, xt, {sigma});
    losses.mmd = mmd.value()[0];
    total = ag::Add(total, ag::Scale(mmd, static_cast<float>(
                                              config_.lambda_mmd)));
  }

  losses.total = total.value()[0];
  ag::Backward(total);
  return losses;
}

void StTransRec::OptimizerStep() { optimizer_->Step(); }

std::vector<ag::Variable> StTransRec::Parameters() const {
  STTR_CHECK(user_emb_ != nullptr) << "Prepare() not called";
  std::vector<ag::Variable> params;
  for (auto& p : user_emb_->Parameters()) params.push_back(p);
  for (auto& p : poi_emb_->Parameters()) params.push_back(p);
  for (auto& p : word_emb_->Parameters()) params.push_back(p);
  for (auto& p : mlp_->Parameters()) params.push_back(p);
  return params;
}

Status StTransRec::Fit(const Dataset& dataset, const CrossCitySplit& split) {
  return TrainInternal(dataset, split, /*resume_dir=*/"");
}

Status StTransRec::Resume(const Dataset& dataset, const CrossCitySplit& split,
                          const std::string& dir) {
  const std::string resume_dir = dir.empty() ? config_.checkpoint_dir : dir;
  if (resume_dir.empty()) {
    return Status::InvalidArgument(
        "Resume: no checkpoint directory (set config.checkpoint_dir or pass "
        "dir)");
  }
  return TrainInternal(dataset, split, resume_dir);
}

Status StTransRec::TrainInternal(const Dataset& dataset,
                                 const CrossCitySplit& split,
                                 const std::string& resume_dir) {
  if (config_.num_train_workers > 1) {
    // Data-parallel path: ParallelTrainer shards every batch across worker
    // replicas and trains *this* model as the master (it calls Prepare()
    // and fills loss_history_ exactly like the serial loop below).
    const size_t workers =
        std::min(config_.num_train_workers, config_.batch_size);
    ParallelTrainer trainer(config_, workers);
    STTR_RETURN_IF_ERROR(trainer.InitWithMaster(this, dataset, split));
    if (!resume_dir.empty()) {
      STTR_RETURN_IF_ERROR(trainer.RestoreLatest(resume_dir));
    }
    const size_t done = loss_history_.size();
    if (done >= config_.num_epochs) {
      fitted_ = true;
      return Status::OK();
    }
    return trainer.TrainEpochs(config_.num_epochs - done);
  }
  STTR_RETURN_IF_ERROR(Prepare(dataset, split));
  if (!resume_dir.empty()) {
    StatusOr<std::string> path = FindLatestValidCheckpoint(env(), resume_dir);
    if (!path.ok()) return path.status();
    STTR_RETURN_IF_ERROR(RestoreFromCheckpoint(*path, nullptr));
  }
  const size_t steps = StepsPerEpoch();
  // Completed epochs == loss_history_.size(): a restored history resumes the
  // loop exactly where the checkpointed run stopped.
  for (size_t epoch = loss_history_.size(); epoch < config_.num_epochs;
       ++epoch) {
    double epoch_loss = 0;
    for (size_t s = 0; s < steps; ++s) {
      const TrainingBatch batch = SampleBatch(rng_);
      epoch_loss += ComputeGradients(batch, rng_).total;
      OptimizerStep();
    }
    loss_history_.push_back(epoch_loss / static_cast<double>(steps));
    if (config_.verbose) {
      STTR_LOG(Info) << name() << " epoch " << epoch + 1 << "/"
                     << config_.num_epochs
                     << " mean loss=" << loss_history_.back();
    }
    STTR_RETURN_IF_ERROR(MaybeWriteCheckpoint(nullptr));
  }
  fitted_ = true;
  return Status::OK();
}

double StTransRec::Score(UserId user, PoiId poi) const {
  return ScoreBatch(user, {&poi, 1})[0];
}

std::vector<double> StTransRec::ScoreBatch(UserId user,
                                           std::span<const PoiId> pois) const {
  STTR_CHECK(fitted_) << "ScoreBatch() before Fit()";
  if (pois.empty()) return {};
  // Inference path: plain tensor maths, no graph, no dropout. One gathered
  // [x_u | x_v] block per call; the tower then runs as N x D matrix
  // products (ParallelMatMul) instead of N separate 1 x D forward passes.
  const Tensor& user_table = user_emb_->table().value();
  const Tensor& poi_table = poi_emb_->table().value();
  STTR_CHECK_GE(user, 0);
  STTR_CHECK_LT(static_cast<size_t>(user), user_table.rows());
  const size_t n = pois.size();
  const size_t d = user_table.cols();
  const float* urow = user_table.row(static_cast<size_t>(user));
  Tensor h({n, 2 * d});
  for (size_t i = 0; i < n; ++i) {
    const PoiId v = pois[i];
    STTR_CHECK_GE(v, 0);
    STTR_CHECK_LT(static_cast<size_t>(v), poi_table.rows());
    float* dst = h.row(i);
    const float* vrow = poi_table.row(static_cast<size_t>(v));
    for (size_t j = 0; j < d; ++j) dst[j] = urow[j];
    for (size_t j = 0; j < d; ++j) dst[d + j] = vrow[j];
  }
  const Tensor logits = mlp_->InferenceForward(h);
  std::vector<double> out(n);
  // Per-element scalar sigmoid on purpose: the vector kernel's polynomial
  // exp differs from the scalar one by ulps across batch positions, which
  // would break the ScoreBatch == per-pair Score exactness contract.
  for (size_t i = 0; i < n; ++i) out[i] = SigmoidScalar(logits[i]);
  return out;
}

std::vector<double> StTransRec::ScorePairs(std::span<const UserId> users,
                                           std::span<const PoiId> pois) const {
  STTR_CHECK(fitted_) << "ScorePairs() before Fit()";
  STTR_CHECK_EQ(users.size(), pois.size());
  if (pois.empty()) return {};
  const Tensor& user_table = user_emb_->table().value();
  const Tensor& poi_table = poi_emb_->table().value();
  const size_t n = pois.size();
  const size_t d = user_table.cols();
  Tensor h({n, 2 * d});
  for (size_t i = 0; i < n; ++i) {
    const UserId u = users[i];
    const PoiId v = pois[i];
    STTR_CHECK_GE(u, 0);
    STTR_CHECK_LT(static_cast<size_t>(u), user_table.rows());
    STTR_CHECK_GE(v, 0);
    STTR_CHECK_LT(static_cast<size_t>(v), poi_table.rows());
    float* dst = h.row(i);
    const float* urow = user_table.row(static_cast<size_t>(u));
    const float* vrow = poi_table.row(static_cast<size_t>(v));
    for (size_t j = 0; j < d; ++j) dst[j] = urow[j];
    for (size_t j = 0; j < d; ++j) dst[d + j] = vrow[j];
  }
  const Tensor logits = mlp_->InferenceForward(h);
  std::vector<double> out(n);
  // Scalar sigmoid for the same reason as ScoreBatch: the vector kernel
  // differs by ulps across batch positions, which would break the
  // ScorePairs == per-pair Score exactness contract.
  for (size_t i = 0; i < n; ++i) out[i] = SigmoidScalar(logits[i]);
  return out;
}

std::vector<double> StTransRec::ScoreGatheredPairs(const Tensor& h) const {
  STTR_CHECK(fitted_) << "ScoreGatheredPairs() before Fit()";
  const size_t d = user_emb_->table().value().cols();
  STTR_CHECK_EQ(h.cols(), 2 * d);
  if (h.rows() == 0) return {};
  const Tensor logits = mlp_->InferenceForward(h);
  std::vector<double> out(h.rows());
  // Scalar sigmoid, same as ScorePairs: the exactness contract includes the
  // store-backed path.
  for (size_t i = 0; i < h.rows(); ++i) out[i] = SigmoidScalar(logits[i]);
  return out;
}

const Tensor& StTransRec::UserEmbeddingTable() const {
  STTR_CHECK(fitted_) << "UserEmbeddingTable() before Fit()";
  return user_emb_->table().value();
}

const Tensor& StTransRec::PoiEmbeddingTable() const {
  STTR_CHECK(fitted_) << "PoiEmbeddingTable() before Fit()";
  return poi_emb_->table().value();
}

const Tensor& StTransRec::WordEmbeddingTable() const {
  STTR_CHECK(fitted_) << "WordEmbeddingTable() before Fit()";
  return word_emb_->table().value();
}

std::vector<float> StTransRec::PoiEmbedding(PoiId poi) const {
  STTR_CHECK(fitted_);
  const Tensor& table = poi_emb_->table().value();
  STTR_CHECK_GE(poi, 0);
  STTR_CHECK_LT(static_cast<size_t>(poi), table.rows());
  const float* row = table.row(static_cast<size_t>(poi));
  return std::vector<float>(row, row + table.cols());
}

Status StTransRec::Save(std::ostream& out) const {
  if (user_emb_ == nullptr) {
    return Status::FailedPrecondition("Save() before Prepare()");
  }
  for (const auto& p : Parameters()) {
    STTR_RETURN_IF_ERROR(p.value().Serialize(out));
  }
  return Status::OK();
}

Status StTransRec::Load(std::istream& in) {
  if (user_emb_ == nullptr) {
    return Status::FailedPrecondition("Load() before Prepare()");
  }
  // All-or-nothing: a truncated stream or shape mismatch partway through
  // must not leave earlier parameters already replaced.
  STTR_RETURN_IF_ERROR(nn::LoadParametersAtomic(in, Parameters()));
  fitted_ = true;
  return Status::OK();
}

Status StTransRec::ApplyDelta(const DeltaCheckpoint& delta) {
  if (user_emb_ == nullptr) {
    return Status::FailedPrecondition("ApplyDelta() before Prepare()");
  }
  if (delta.config_fingerprint != ConfigFingerprint()) {
    return Status::FailedPrecondition(
        "ApplyDelta: delta was produced under a different config/dataset "
        "(delta '" +
        delta.config_fingerprint + "' vs model '" + ConfigFingerprint() +
        "')");
  }
  std::vector<ag::Variable> params = Parameters();
  const EmbeddingRowDelta* tables[3] = {&delta.user, &delta.poi, &delta.word};
  const char* names[3] = {"user", "poi", "word"};
  // Validate every table up front: a bad delta must not leave the model
  // half-patched.
  for (size_t t = 0; t < 3; ++t) {
    const EmbeddingRowDelta& d = *tables[t];
    if (d.num_rows() == 0) continue;
    const Tensor& table = params[t].value();
    if (d.dim != table.cols()) {
      return Status::InvalidArgument(
          "ApplyDelta: " + std::string(names[t]) + " row dim " +
          std::to_string(d.dim) + " does not match table dim " +
          std::to_string(table.cols()));
    }
    for (int64_t row : d.rows) {
      if (row < 0 || static_cast<size_t>(row) >= table.rows()) {
        return Status::InvalidArgument(
            "ApplyDelta: " + std::string(names[t]) + " row " +
            std::to_string(row) + " out of range [0, " +
            std::to_string(table.rows()) + ")");
      }
    }
  }
  if (!delta.dense_params.empty()) {
    // Dense refresh first — LoadParametersAtomic already guarantees
    // all-or-nothing, so a truncated dense blob fails before any embedding
    // row has been touched.
    std::istringstream in(delta.dense_params);
    STTR_RETURN_IF_ERROR(nn::LoadParametersAtomic(in, mlp_->Parameters()));
  }
  for (size_t t = 0; t < 3; ++t) {
    const EmbeddingRowDelta& d = *tables[t];
    if (d.num_rows() == 0) continue;
    Tensor& table = params[t].mutable_value();
    for (size_t i = 0; i < d.num_rows(); ++i) {
      std::memcpy(table.row(static_cast<size_t>(d.rows[i])), d.row_values(i),
                  d.dim * sizeof(float));
    }
  }
  fitted_ = true;
  return Status::OK();
}

Env& StTransRec::env() const {
  return config_.env != nullptr ? *config_.env : *Env::Default();
}

std::string StTransRec::ConfigFingerprint() const {
  STTR_CHECK(dataset_ != nullptr) << "ConfigFingerprint() before Prepare()";
  std::ostringstream os;
  os.precision(17);
  os << "fp1";
  os << ";dim=" << config_.embedding_dim;
  os << ";init=" << config_.embedding_init_stddev;
  os << ";hidden=";
  for (size_t i = 0; i < config_.hidden_dims.size(); ++i) {
    os << (i ? "," : "") << config_.hidden_dims[i];
  }
  os << ";dropout=" << config_.dropout_rate;
  os << ";lr=" << config_.learning_rate;
  os << ";batch=" << config_.batch_size;
  os << ";negatives=" << config_.negatives_per_positive;
  os << ";word_negatives=" << config_.word_negatives;
  os << ";mmd=" << config_.use_mmd << "," << config_.lambda_mmd << ","
     << config_.mmd_sigma << "," << config_.mmd_batch << ","
     << config_.use_linear_mmd;
  os << ";text=" << config_.use_text << "," << config_.text_loss_weight;
  os << ";geo=" << config_.use_geo_context << "," << config_.geo_neighbors;
  os << ";resample=" << config_.resample_alpha << "," << config_.grid_rows
     << "," << config_.grid_cols << "," << config_.region_delta << ","
     << config_.use_region_merging;
  os << ";seed=" << config_.seed;
  os << ";workers=" << config_.num_train_workers;
  os << ";target=" << target_city_;
  os << ";data=" << dataset_->num_users() << "," << dataset_->num_pois()
     << "," << dataset_->vocabulary().size() << "," << dataset_->num_cities();
  return os.str();
}

namespace {

constexpr char kSectionMeta[] = "meta";
constexpr char kSectionConfig[] = "config";
constexpr char kSectionModel[] = "model";
constexpr char kSectionOptimizer[] = "optimizer";
constexpr char kSectionRng[] = "rng";
constexpr char kSectionLossHistory[] = "loss_history";

void AppendRngState(std::string& out, const Rng& rng) {
  for (uint64_t word : rng.state()) AppendU64(out, word);
}

bool ReadRngState(std::string_view& in, Rng* rng) {
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) {
    if (!ReadU64(in, &word)) return false;
  }
  rng->set_state(state);
  return true;
}

}  // namespace

Status StTransRec::WriteCheckpoint(
    const std::vector<Rng>* worker_rngs) const {
  if (user_emb_ == nullptr) {
    return Status::FailedPrecondition("WriteCheckpoint() before Prepare()");
  }
  if (config_.checkpoint_dir.empty()) {
    return Status::InvalidArgument("WriteCheckpoint: checkpoint_dir not set");
  }
  const size_t completed = loss_history_.size();
  CheckpointWriter writer;
  {
    std::string meta;
    AppendU64(meta, completed);
    writer.AddSection(kSectionMeta, std::move(meta));
  }
  writer.AddSection(kSectionConfig, ConfigFingerprint());
  {
    std::ostringstream os(std::ios::binary);
    STTR_RETURN_IF_ERROR(Save(os));
    writer.AddSection(kSectionModel, std::move(os).str());
  }
  {
    std::ostringstream os(std::ios::binary);
    STTR_RETURN_IF_ERROR(optimizer_->SaveState(os));
    writer.AddSection(kSectionOptimizer, std::move(os).str());
  }
  {
    std::string rngs;
    const size_t num_workers = worker_rngs != nullptr ? worker_rngs->size() : 0;
    AppendU32(rngs, static_cast<uint32_t>(2 + num_workers));
    AppendRngState(rngs, rng_);
    AppendRngState(rngs, eval_rng_);
    for (size_t w = 0; w < num_workers; ++w) {
      AppendRngState(rngs, (*worker_rngs)[w]);
    }
    writer.AddSection(kSectionRng, std::move(rngs));
  }
  {
    std::string losses;
    AppendU64(losses, loss_history_.size());
    for (double l : loss_history_) AppendDouble(losses, l);
    writer.AddSection(kSectionLossHistory, std::move(losses));
  }
  Env& e = env();
  STTR_RETURN_IF_ERROR(e.CreateDir(config_.checkpoint_dir));
  STTR_RETURN_IF_ERROR(writer.WriteTo(
      e, config_.checkpoint_dir + "/" + CheckpointFileName(completed)));
  return RotateCheckpoints(e, config_.checkpoint_dir,
                           std::max<size_t>(1, config_.checkpoint_keep_last));
}

Status StTransRec::MaybeWriteCheckpoint(
    const std::vector<Rng>* worker_rngs) const {
  if (config_.checkpoint_dir.empty()) return Status::OK();
  const size_t completed = loss_history_.size();
  const size_t every = std::max<size_t>(1, config_.checkpoint_every_n_epochs);
  if (completed % every != 0 && completed != config_.num_epochs) {
    return Status::OK();
  }
  return WriteCheckpoint(worker_rngs);
}

Status StTransRec::RestoreFromCheckpoint(const std::string& path,
                                         std::vector<Rng>* worker_rngs) {
  if (user_emb_ == nullptr) {
    return Status::FailedPrecondition("RestoreFromCheckpoint before Prepare()");
  }
  StatusOr<CheckpointReader> reader = CheckpointReader::Open(env(), path);
  if (!reader.ok()) return reader.status();
  if (reader->version() != kCheckpointFormatVersion) {
    // v2 files are quantized serving artifacts: no optimizer/RNG state, int8
    // tables. There is nothing to resume training from.
    return Status::FailedPrecondition(
        "checkpoint " + path + " is a v" + std::to_string(reader->version()) +
        " quantized serving artifact, not a training checkpoint; training "
        "resumes only from v1 files");
  }

  StatusOr<std::string> fp = reader->Section(kSectionConfig);
  if (!fp.ok()) return fp.status();
  if (*fp != ConfigFingerprint()) {
    return Status::FailedPrecondition(
        "checkpoint " + path + " was written under a different config or "
        "dataset\n  checkpoint: " + *fp + "\n  current:    " +
        ConfigFingerprint());
  }

  StatusOr<std::string> model = reader->Section(kSectionModel);
  if (!model.ok()) return model.status();
  {
    std::istringstream in(*model, std::ios::binary);
    STTR_RETURN_IF_ERROR(nn::LoadParametersAtomic(in, Parameters()));
  }

  StatusOr<std::string> opt = reader->Section(kSectionOptimizer);
  if (!opt.ok()) return opt.status();
  {
    std::istringstream in(*opt, std::ios::binary);
    STTR_RETURN_IF_ERROR(optimizer_->LoadState(in));
  }

  StatusOr<std::string> rngs = reader->Section(kSectionRng);
  if (!rngs.ok()) return rngs.status();
  {
    std::string_view in(*rngs);
    uint32_t count = 0;
    if (!ReadU32(in, &count)) {
      return Status::IOError("checkpoint: truncated rng section");
    }
    const size_t expected =
        2 + (worker_rngs != nullptr ? worker_rngs->size() : 0);
    if (count != expected) {
      return Status::FailedPrecondition(
          "checkpoint holds " + std::to_string(count) +
          " RNG streams, resume expects " + std::to_string(expected) +
          " (train-worker count changed?)");
    }
    bool ok = ReadRngState(in, &rng_) && ReadRngState(in, &eval_rng_);
    if (worker_rngs != nullptr) {
      for (Rng& rng : *worker_rngs) ok = ok && ReadRngState(in, &rng);
    }
    if (!ok || !in.empty()) {
      return Status::IOError("checkpoint: malformed rng section");
    }
  }

  StatusOr<std::string> losses = reader->Section(kSectionLossHistory);
  if (!losses.ok()) return losses.status();
  {
    std::string_view in(*losses);
    uint64_t n = 0;
    if (!ReadU64(in, &n) || in.size() != n * sizeof(double)) {
      return Status::IOError("checkpoint: malformed loss_history section");
    }
    std::vector<double> history(n);
    for (double& l : history) ReadDouble(in, &l);
    loss_history_ = std::move(history);
  }

  StatusOr<std::string> meta = reader->Section(kSectionMeta);
  if (!meta.ok()) return meta.status();
  {
    std::string_view in(*meta);
    uint64_t epoch = 0;
    if (!ReadU64(in, &epoch) || epoch != loss_history_.size()) {
      return Status::IOError(
          "checkpoint: epoch counter disagrees with loss history");
    }
  }
  return Status::OK();
}

std::vector<float> StTransRec::WordEmbedding(WordId word) const {
  STTR_CHECK(fitted_);
  const Tensor& table = word_emb_->table().value();
  STTR_CHECK_GE(word, 0);
  STTR_CHECK_LT(static_cast<size_t>(word), table.rows());
  const float* row = table.row(static_cast<size_t>(word));
  return std::vector<float>(row, row + table.cols());
}

StTransRecConfig MakeVariant1(StTransRecConfig base) {
  base.use_mmd = false;
  return base;
}

StTransRecConfig MakeVariant2(StTransRecConfig base) {
  base.use_text = false;
  return base;
}

StTransRecConfig MakeVariant3(StTransRecConfig base) {
  base.resample_alpha = 0.0;
  return base;
}

}  // namespace sttr
