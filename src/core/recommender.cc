#include "core/recommender.h"

#include <algorithm>

namespace sttr {

namespace {

/// Ranking order: higher score first, ties broken by smaller POI id. Total
/// order, so the top-k result is independent of candidate enumeration order.
inline bool RanksBefore(const std::pair<PoiId, double>& a,
                        const std::pair<PoiId, double>& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

}  // namespace

std::vector<std::pair<PoiId, double>> TopKByScore(
    std::span<const PoiId> pois, std::span<const double> scores, size_t k) {
  // Bounded selection: a size-k heap under RanksBefore, whose front is the
  // *worst* kept entry, so memory stays O(k) instead of materialising and
  // partial_sort-ing every candidate's (poi, score) pair.
  if (k == 0 || pois.empty()) return {};
  std::vector<std::pair<PoiId, double>> heap;
  heap.reserve(std::min(k, pois.size()) + 1);
  for (size_t i = 0; i < pois.size(); ++i) {
    const std::pair<PoiId, double> entry{pois[i], scores[i]};
    if (heap.size() < k) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), RanksBefore);
    } else if (RanksBefore(entry, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), RanksBefore);
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end(), RanksBefore);
    }
  }
  // sort_heap yields ascending order under the comparator, which for
  // RanksBefore means best first — exactly the output contract.
  std::sort_heap(heap.begin(), heap.end(), RanksBefore);
  return heap;
}

std::vector<std::pair<PoiId, double>> Recommender::RecommendTopK(
    const Dataset& dataset, CityId city, UserId user, size_t k,
    const std::unordered_set<PoiId>* exclude) const {
  std::vector<PoiId> candidates;
  const auto& city_pois = dataset.PoisInCity(city);
  candidates.reserve(city_pois.size());
  for (PoiId v : city_pois) {
    if (exclude != nullptr && exclude->count(v)) continue;
    candidates.push_back(v);
  }
  if (k == 0 || candidates.empty()) return {};
  const std::vector<double> scores = ScoreBatch(user, candidates);
  return TopKByScore(candidates, scores, k);
}

}  // namespace sttr
