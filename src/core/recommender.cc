#include "core/recommender.h"

#include <algorithm>

namespace sttr {

std::vector<std::pair<PoiId, double>> Recommender::RecommendTopK(
    const Dataset& dataset, CityId city, UserId user, size_t k,
    const std::unordered_set<PoiId>* exclude) const {
  std::vector<std::pair<PoiId, double>> scored;
  for (PoiId v : dataset.PoisInCity(city)) {
    if (exclude != nullptr && exclude->count(v)) continue;
    scored.emplace_back(v, Score(user, v));
  }
  const size_t top = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(top),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  scored.resize(top);
  return scored;
}

}  // namespace sttr
