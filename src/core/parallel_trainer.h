#ifndef STTR_CORE_PARALLEL_TRAINER_H_
#define STTR_CORE_PARALLEL_TRAINER_H_

#include <memory>
#include <vector>

#include "core/st_transrec.h"
#include "util/thread_pool.h"

namespace sttr {

/// Synchronous data-parallel trainer: the CPU-thread stand-in for the
/// paper's multi-GPU training (Table 2). Each worker holds a full model
/// replica, computes gradients on its shard of every batch, the gradients
/// are averaged into the master, the master steps, and the updated weights
/// are broadcast back — exactly the all-reduce pattern of multi-GPU
/// TensorFlow data parallelism.
class ParallelTrainer {
 public:
  /// `num_workers` >= 1; per-worker batch size is config.batch_size /
  /// num_workers (so total work per iteration is constant across worker
  /// counts, as in the paper's comparison).
  ParallelTrainer(StTransRecConfig config, size_t num_workers);

  /// Prepares master and replicas on the split.
  Status Init(const Dataset& dataset, const CrossCitySplit& split);

  /// Runs `iterations` synchronous steps; returns total wall seconds.
  double RunIterations(size_t iterations);

  /// Runs `epochs` full epochs (StepsPerEpoch iterations each).
  Status TrainEpochs(size_t epochs);

  StTransRec& master() { return *master_; }
  size_t num_workers() const { return num_workers_; }

 private:
  void OneIteration();

  StTransRecConfig config_;
  size_t num_workers_;
  std::unique_ptr<StTransRec> master_;
  std::vector<std::unique_ptr<StTransRec>> replicas_;
  std::vector<Rng> worker_rngs_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace sttr

#endif  // STTR_CORE_PARALLEL_TRAINER_H_
