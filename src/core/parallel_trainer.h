#ifndef STTR_CORE_PARALLEL_TRAINER_H_
#define STTR_CORE_PARALLEL_TRAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/st_transrec.h"
#include "util/thread_pool.h"

namespace sttr {

/// Synchronous data-parallel trainer: the CPU-thread stand-in for the
/// paper's multi-GPU training (Table 2). Each worker holds a full model
/// replica, computes gradients on its shard of every batch, the gradients
/// are averaged into the master, the master steps, and the updated weights
/// are broadcast back — exactly the all-reduce pattern of multi-GPU
/// TensorFlow data parallelism.
///
/// The all-reduce is sparse-aware: embedding-table gradients only touch the
/// rows gathered by the step (~batch * (1 + negatives) of tens of thousands),
/// so reduce and broadcast move just those rows plus the small dense MLP
/// parameters, and the master's optimiser sees the merged touched-row list so
/// its lazy Adam update stays row-wise instead of sweeping whole tables.
class ParallelTrainer {
 public:
  /// How replica gradients are folded into the master. kSparse (default)
  /// reduces/broadcasts only touched embedding rows; kDense walks every
  /// table row. Both use the same per-row kernel in the same replica order,
  /// so they are bit-identical — kDense exists as the reference the sparse
  /// path is tested against.
  enum class ReduceMode { kSparse, kDense };

  /// `num_workers` >= 1; per-worker batch size is config.batch_size /
  /// num_workers (so total work per iteration is constant across worker
  /// counts, as in the paper's comparison).
  ParallelTrainer(StTransRecConfig config, size_t num_workers);

  /// Prepares master and replicas on the split.
  Status Init(const Dataset& dataset, const CrossCitySplit& split);

  /// Like Init(), but trains `master` (externally owned, already constructed
  /// with this trainer's config) in place instead of building an internal
  /// model. Used by StTransRec::Fit() to route through the trainer while
  /// keeping the caller's model object as the result.
  Status InitWithMaster(StTransRec* master, const Dataset& dataset,
                        const CrossCitySplit& split);

  void set_reduce_mode(ReduceMode mode) { reduce_mode_ = mode; }
  ReduceMode reduce_mode() const { return reduce_mode_; }

  /// Runs `iterations` synchronous steps; returns total wall seconds.
  double RunIterations(size_t iterations);

  /// Runs `epochs` full epochs (StepsPerEpoch iterations each), appending
  /// the mean per-step loss of each epoch to the master's loss_history().
  /// When the master's config has a checkpoint_dir, a checkpoint (including
  /// the per-worker RNG streams) is written at the configured epoch
  /// boundaries; an IO failure aborts training with that Status.
  Status TrainEpochs(size_t epochs);

  /// Restores the newest valid checkpoint in `dir` into the master —
  /// parameters, optimizer state, loss history and all RNG streams (the
  /// checkpoint must have been written with this worker count) — then
  /// re-broadcasts the restored parameters to every replica. Together with
  /// TrainEpochs this resumes bit-identically to an uninterrupted run.
  Status RestoreLatest(const std::string& dir);

  StTransRec& master() { return *master_; }
  size_t num_workers() const { return num_workers_; }

 private:
  /// Gradient compute + all-reduce + master step + broadcast; returns the
  /// mean of the workers' total step losses.
  double OneIteration();

  Status InitReplicas(const Dataset& dataset, const CrossCitySplit& split);

  StTransRecConfig config_;
  size_t num_workers_;
  ReduceMode reduce_mode_ = ReduceMode::kSparse;
  std::unique_ptr<StTransRec> owned_master_;
  StTransRec* master_ = nullptr;
  std::vector<std::unique_ptr<StTransRec>> replicas_;
  std::vector<Rng> worker_rngs_;
  std::unique_ptr<ThreadPool> pool_;

  // Cached parameter handles (aliases into the models), set up by Init.
  std::vector<ag::Variable> master_params_;
  std::vector<std::vector<ag::Variable>> replica_params_;  // [worker][param]

  // Per-iteration scratch, reused to avoid reallocation.
  std::vector<double> worker_losses_;
  std::vector<std::vector<int64_t>> replica_rows_;  // per worker, sorted+unique
  std::vector<std::vector<int64_t>> merged_rows_;   // per param, union of above
};

}  // namespace sttr

#endif  // STTR_CORE_PARALLEL_TRAINER_H_
