#include "core/parallel_trainer.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "tensor/simd.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace sttr {

namespace {

// Rows per chunk when sharding row-wise reduce/broadcast over the pool.
// Chunks partition the row list, so results do not depend on the grain (every
// row is reduced start-to-finish inside exactly one chunk).
constexpr size_t kSparseGrain = 64;
constexpr size_t kDenseGrain = 256;

}  // namespace

ParallelTrainer::ParallelTrainer(StTransRecConfig config, size_t num_workers)
    : config_(std::move(config)), num_workers_(num_workers) {
  STTR_CHECK_GE(num_workers, 1u);
  STTR_CHECK_GE(config_.batch_size, num_workers)
      << "batch must be shardable across workers";
}

Status ParallelTrainer::Init(const Dataset& dataset,
                             const CrossCitySplit& split) {
  owned_master_ = std::make_unique<StTransRec>(config_);
  master_ = owned_master_.get();
  STTR_RETURN_IF_ERROR(master_->Prepare(dataset, split));
  return InitReplicas(dataset, split);
}

Status ParallelTrainer::InitWithMaster(StTransRec* master,
                                       const Dataset& dataset,
                                       const CrossCitySplit& split) {
  STTR_CHECK(master != nullptr);
  owned_master_.reset();
  master_ = master;
  STTR_RETURN_IF_ERROR(master_->Prepare(dataset, split));
  return InitReplicas(dataset, split);
}

Status ParallelTrainer::InitReplicas(const Dataset& dataset,
                                     const CrossCitySplit& split) {
  StTransRecConfig worker_cfg = config_;
  worker_cfg.batch_size = config_.batch_size / num_workers_;
  // Shard every per-step workload so total work per iteration is constant
  // across worker counts (that is what Table 2 compares).
  worker_cfg.mmd_batch =
      std::max<size_t>(2, config_.mmd_batch / num_workers_);
  worker_cfg.num_train_workers = 1;
  replicas_.clear();
  worker_rngs_.clear();
  for (size_t w = 0; w < num_workers_; ++w) {
    worker_cfg.seed = config_.seed + 1000 + w;
    auto replica = std::make_unique<StTransRec>(worker_cfg);
    STTR_RETURN_IF_ERROR(replica->Prepare(dataset, split));
    replicas_.push_back(std::move(replica));
    worker_rngs_.emplace_back(config_.seed + 77 * (w + 1));
  }

  master_params_ = master_->Parameters();
  replica_params_.clear();
  for (auto& replica : replicas_) {
    replica_params_.push_back(replica->Parameters());
    STTR_CHECK_EQ(replica_params_.back().size(), master_params_.size());
  }
  // Broadcast the master initialisation so all replicas agree.
  for (auto& params : replica_params_) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value() = master_params_[i].value();
    }
  }

  worker_losses_.assign(num_workers_, 0.0);
  replica_rows_.assign(num_workers_, {});
  merged_rows_.assign(master_params_.size(), {});
  pool_ = std::make_unique<ThreadPool>(num_workers_);
  return Status::OK();
}

double ParallelTrainer::OneIteration() {
  const size_t num_params = master_params_.size();
  const size_t num_emb = master_->NumEmbeddingParameters();
  const float inv_workers = 1.0f / static_cast<float>(num_workers_);

  // 1. Each worker computes gradients on its own shard (own replica, own
  //    rng: no shared mutable state, so the workers run lock-free).
  pool_->ParallelFor(num_workers_, [this](size_t w) {
    const TrainingBatch batch = replicas_[w]->SampleBatch(worker_rngs_[w]);
    worker_losses_[w] =
        replicas_[w]->ComputeGradients(batch, worker_rngs_[w]).total;
  });

  // 2. All-reduce: average replica gradients into the master. Embedding
  //    tables reduce row-wise over the union of touched rows (or every row
  //    in kDense reference mode); per row, replicas are always folded in
  //    worker order with the same kernel, so the two modes and any pool
  //    size produce bit-identical sums.
  for (size_t i = 0; i < num_params; ++i) {
    const bool is_embedding = i < num_emb;
    if (!is_embedding) {
      // Dense MLP parameters are tiny; reduce them whole.
      for (auto& params : replica_params_) {
        master_params_[i].mutable_grad().Axpy(inv_workers, params[i].grad());
      }
      continue;
    }

    // Sorted, de-duplicated touched rows per replica (GatherRows appends
    // raw indices, so duplicates are expected), then their union.
    std::vector<int64_t>& merged = merged_rows_[i];
    merged.clear();
    for (size_t w = 0; w < num_workers_; ++w) {
      std::vector<int64_t>& rows = replica_rows_[w];
      const auto& touched = replica_params_[w][i].touched_rows();
      rows.assign(touched.begin(), touched.end());
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      merged.insert(merged.end(), rows.begin(), rows.end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

    const size_t d = master_params_[i].value().cols();
    float* mg = master_params_[i].mutable_grad().data();
    if (reduce_mode_ == ReduceMode::kSparse) {
      pool_->ParallelForChunked(
          merged.size(), kSparseGrain, [&](size_t begin, size_t end) {
            if (begin == end) return;
            for (size_t w = 0; w < num_workers_; ++w) {
              const std::vector<int64_t>& rows = replica_rows_[w];
              const float* rg = replica_params_[w][i].grad().data();
              auto it = std::lower_bound(rows.begin(), rows.end(),
                                         merged[begin]);
              for (size_t idx = begin; idx < end; ++idx) {
                const int64_t r = merged[idx];
                if (it != rows.end() && *it == r) {
                  const size_t off = static_cast<size_t>(r) * d;
                  simd::Axpy(mg + off, rg + off, inv_workers, d);
                  ++it;
                }
              }
            }
          });
    } else {
      // Reference mode: walk every table row. Untouched replica rows are
      // all-zero, so folding them in changes nothing — bitwise included,
      // since x + (+0.0f) == x for the values the accumulator can hold.
      const size_t table_rows = master_params_[i].value().rows();
      pool_->ParallelForChunked(
          table_rows, kDenseGrain, [&](size_t begin, size_t end) {
            for (size_t w = 0; w < num_workers_; ++w) {
              const float* rg = replica_params_[w][i].grad().data();
              for (size_t r = begin; r < end; ++r) {
                simd::Axpy(mg + r * d, rg + r * d, inv_workers, d);
              }
            }
          });
    }
    // Hand the optimiser the merged rows so its lazy (row-wise) update runs
    // over exactly the rows the reduce filled — the master never sees
    // gradients through GatherRows, so without this it would fall back to
    // dense whole-table sweeps every step.
    master_params_[i].node()->touched_rows = merged;
  }
  // Clear replica gradients for the next iteration (row-wise for the
  // embedding tables, dense for the rest).
  for (auto& params : replica_params_) {
    for (auto& p : params) p.ZeroGradSparse();
  }

  // 3. Master applies the update (lazy row-wise Adam on the tables).
  master_->OptimizerStep();

  // 4. Broadcast updated weights: only the rows the optimiser moved for the
  //    embedding tables (replicas match the master everywhere else by
  //    induction), whole tensors for the dense MLP parameters.
  for (size_t i = 0; i < num_params; ++i) {
    const bool row_delta =
        i < num_emb && reduce_mode_ == ReduceMode::kSparse;
    if (!row_delta) {
      for (auto& params : replica_params_) {
        params[i].mutable_value() = master_params_[i].value();
      }
      continue;
    }
    const std::vector<int64_t>& merged = merged_rows_[i];
    const size_t d = master_params_[i].value().cols();
    const float* src = master_params_[i].value().data();
    pool_->ParallelForChunked(
        merged.size(), kSparseGrain, [&](size_t begin, size_t end) {
          for (size_t idx = begin; idx < end; ++idx) {
            const size_t off = static_cast<size_t>(merged[idx]) * d;
            for (auto& params : replica_params_) {
              float* dst = params[i].mutable_value().data();
              std::copy(src + off, src + off + d, dst + off);
            }
          }
        });
  }

  double sum = 0.0;
  for (double l : worker_losses_) sum += l;
  return sum * static_cast<double>(inv_workers);
}

double ParallelTrainer::RunIterations(size_t iterations) {
  STTR_CHECK(master_ != nullptr) << "Init() not called";
  Timer timer;
  for (size_t i = 0; i < iterations; ++i) OneIteration();
  return timer.ElapsedSeconds();
}

Status ParallelTrainer::TrainEpochs(size_t epochs) {
  STTR_CHECK(master_ != nullptr) << "Init() not called";
  const size_t steps = master_->StepsPerEpoch();
  for (size_t e = 0; e < epochs; ++e) {
    double epoch_loss = 0.0;
    for (size_t s = 0; s < steps; ++s) epoch_loss += OneIteration();
    master_->loss_history_.push_back(epoch_loss / static_cast<double>(steps));
    if (config_.verbose) {
      STTR_LOG(Info) << master_->name() << " [x" << num_workers_
                     << " workers] epoch " << e + 1 << "/" << epochs
                     << " mean loss=" << master_->loss_history_.back();
    }
    // Checkpoint the master plus the worker RNG streams: the replica
    // parameters equal the master's after broadcast and replica gradients
    // are zero between iterations, so this is the complete training state.
    STTR_RETURN_IF_ERROR(master_->MaybeWriteCheckpoint(&worker_rngs_));
  }
  master_->fitted_ = true;
  return Status::OK();
}

Status ParallelTrainer::RestoreLatest(const std::string& dir) {
  STTR_CHECK(master_ != nullptr) << "Init() not called";
  StatusOr<std::string> path =
      FindLatestValidCheckpoint(master_->env(), dir);
  if (!path.ok()) return path.status();
  STTR_RETURN_IF_ERROR(master_->RestoreFromCheckpoint(*path, &worker_rngs_));
  // InitReplicas broadcast the freshly-initialised master; broadcast again
  // now that the master holds the checkpointed parameters.
  for (auto& params : replica_params_) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value() = master_params_[i].value();
    }
  }
  return Status::OK();
}

}  // namespace sttr
