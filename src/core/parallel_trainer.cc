#include "core/parallel_trainer.h"

#include <algorithm>

#include "util/check.h"
#include "util/timer.h"

namespace sttr {

ParallelTrainer::ParallelTrainer(StTransRecConfig config, size_t num_workers)
    : config_(std::move(config)), num_workers_(num_workers) {
  STTR_CHECK_GE(num_workers, 1u);
  STTR_CHECK_GE(config_.batch_size, num_workers)
      << "batch must be shardable across workers";
}

Status ParallelTrainer::Init(const Dataset& dataset,
                             const CrossCitySplit& split) {
  master_ = std::make_unique<StTransRec>(config_);
  STTR_RETURN_IF_ERROR(master_->Prepare(dataset, split));

  StTransRecConfig worker_cfg = config_;
  worker_cfg.batch_size = config_.batch_size / num_workers_;
  // Shard every per-step workload so total work per iteration is constant
  // across worker counts (that is what Table 2 compares).
  worker_cfg.mmd_batch =
      std::max<size_t>(2, config_.mmd_batch / num_workers_);
  replicas_.clear();
  worker_rngs_.clear();
  for (size_t w = 0; w < num_workers_; ++w) {
    worker_cfg.seed = config_.seed + 1000 + w;
    auto replica = std::make_unique<StTransRec>(worker_cfg);
    STTR_RETURN_IF_ERROR(replica->Prepare(dataset, split));
    replicas_.push_back(std::move(replica));
    worker_rngs_.emplace_back(config_.seed + 77 * (w + 1));
  }
  // Broadcast the master initialisation so all replicas agree.
  const auto master_params = master_->Parameters();
  for (auto& replica : replicas_) {
    auto params = replica->Parameters();
    STTR_CHECK_EQ(params.size(), master_params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value() = master_params[i].value();
    }
  }
  pool_ = std::make_unique<ThreadPool>(num_workers_);
  return Status::OK();
}

void ParallelTrainer::OneIteration() {
  // 1. Each worker computes gradients on its own shard (own replica, own
  //    rng: no shared mutable state, so the workers run lock-free).
  pool_->ParallelFor(num_workers_, [this](size_t w) {
    const TrainingBatch batch = replicas_[w]->SampleBatch(worker_rngs_[w]);
    replicas_[w]->ComputeGradients(batch, worker_rngs_[w]);
  });

  // 2. All-reduce: average replica gradients into the master.
  auto master_params = master_->Parameters();
  const float inv_workers = 1.0f / static_cast<float>(num_workers_);
  for (auto& replica : replicas_) {
    auto params = replica->Parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      master_params[i].mutable_grad().Axpy(inv_workers, params[i].grad());
      params[i].ZeroGrad();
    }
  }

  // 3. Master applies the update and broadcasts weights.
  master_->OptimizerStep();
  for (auto& replica : replicas_) {
    auto params = replica->Parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value() = master_params[i].value();
    }
  }
}

double ParallelTrainer::RunIterations(size_t iterations) {
  STTR_CHECK(master_ != nullptr) << "Init() not called";
  Timer timer;
  for (size_t i = 0; i < iterations; ++i) OneIteration();
  return timer.ElapsedSeconds();
}

Status ParallelTrainer::TrainEpochs(size_t epochs) {
  STTR_CHECK(master_ != nullptr) << "Init() not called";
  const size_t steps = master_->StepsPerEpoch();
  for (size_t e = 0; e < epochs; ++e) {
    RunIterations(steps);
  }
  master_->fitted_ = true;
  return Status::OK();
}

}  // namespace sttr
