#ifndef STTR_CORE_QUANTIZED_MODEL_H_
#define STTR_CORE_QUANTIZED_MODEL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/st_transrec.h"
#include "eval/protocol.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/fs.h"
#include "util/status.h"

namespace sttr {

/// Post-training quantization knobs.
struct QuantizationConfig {
  /// Scheme of the user/POI embedding tables. The layer-0 MLP weight is
  /// always symmetric: its per-output-column zero points would not cancel
  /// in the dot product the way the activation zero point does.
  QuantScheme embedding_scheme = QuantScheme::kAffine;
  /// Store the fp32 MLP tail as fp16 in the checkpoint (halves its bytes;
  /// relative error <= 2^-11 per weight). The tail is widened back to fp32
  /// at load time — scoring maths is unchanged, only storage shrinks.
  bool fp16_tail = true;
  /// Completed-epoch count recorded in the artifact. -1 takes
  /// model.loss_history().size(), which is correct when quantizing straight
  /// after Fit(); a tool quantizing a *loaded* checkpoint (where the loss
  /// history was not restored) passes the source checkpoint's meta epoch.
  int64_t epoch = -1;
};

/// An int8 serving-only snapshot of a fitted StTransRec.
///
/// What is quantized:
///   - user and POI embedding tables: per-row int8 (tensor/quant.h), the
///     dominant share of model bytes,
///   - the layer-0 MLP weight: per-output-column symmetric int8, stored
///     transposed so each output's column is a contiguous int8 row. Layer 0
///     is where the embeddings enter the tower, so its products can run
///     entirely in int8 (simd::DotI8) straight out of the quantized tables
///     — no dequantize-then-gather step exists at all.
/// The remaining tower (hidden layers 1.. and the output layer) stays fp32:
/// it is tiny next to the tables and keeping it exact confines quantization
/// error to one layer.
///
/// For an affine activation row u with scale s_u and zero point z_u, and
/// symmetric weight column w_j with scale s_j:
///   sum_c x_u[c] * w[c][j]
///     ~ s_u * s_j * (DotI8(q_u, q_wj) - z_u * sum_c q_wj[c])
/// The weight-column sums are precomputed once at quantization time
/// (w0_colsum_*_), so the zero point costs one multiply per output.
///
/// Scoring is deterministic: the int8 dot products are exact integer
/// arithmetic (bit-identical between the AVX2 kernel and the scalar
/// fallback — see tensor/simd.h), and the fp32 tail reuses the same
/// ParallelMatMul contract the fp32 scorer relies on. Thread-safe after
/// construction (all state is immutable).
class QuantizedModel : public PoiScorer {
 public:
  /// Quantizes a fitted model. When config.fp16_tail is set the tail is
  /// round-tripped through fp16 immediately, so the returned scorer is
  /// bit-identical to one loaded back from its own checkpoint.
  static StatusOr<QuantizedModel> Quantize(const StTransRec& model,
                                           const QuantizationConfig& config = {});

  double Score(UserId user, PoiId poi) const override;
  std::vector<double> ScoreBatch(UserId user,
                                 std::span<const PoiId> pois) const override;
  std::vector<double> ScorePairs(std::span<const UserId> users,
                                 std::span<const PoiId> pois) const override;

  size_t num_users() const { return user_q_.rows; }
  size_t num_pois() const { return poi_q_.rows; }
  size_t embedding_dim() const { return dim_; }
  QuantScheme embedding_scheme() const { return user_q_.scheme; }
  bool fp16_tail() const { return fp16_tail_; }

  /// Completed training epochs of the source model (v1 "meta" semantics).
  uint64_t epoch() const { return epoch_; }

  /// ConfigFingerprint() of the source model, carried through the
  /// checkpoint so a quantized artifact can be matched against the config
  /// and dataset a server is configured for.
  const std::string& config_fingerprint() const { return fingerprint_; }

  /// Resident bytes of the two quantized embedding tables (the number to
  /// compare against fp32's 4 * rows * dim).
  size_t EmbeddingBytes() const;

  /// Approximate resident bytes of the whole scorer (tables + quantized
  /// layer 0 + fp32 tail).
  size_t ApproxBytes() const;

  /// Writes a v2 serving checkpoint (kQuantCheckpointFormatVersion):
  /// sections "meta" and "config" keep their v1 meaning; the model lives in
  /// "quant_user" / "quant_poi" / "quant_mlp0" / "quant_tail". No
  /// optimizer/RNG state — this artifact serves, it does not resume.
  Status WriteCheckpointFile(Env& env, const std::string& path) const;

  /// Rebuilds a scorer from an already-parsed v2 container.
  static StatusOr<QuantizedModel> FromReader(const CheckpointReader& reader);

  /// Open + FromReader.
  static StatusOr<QuantizedModel> LoadFromCheckpoint(Env& env,
                                                     const std::string& path);

 private:
  QuantizedModel() = default;

  std::vector<double> ScoreCore(std::span<const UserId> users,
                                std::span<const PoiId> pois) const;

  /// Shape/consistency checks shared by Quantize() and FromReader().
  Status Validate() const;

  RowQuantizedMatrix user_q_;
  RowQuantizedMatrix poi_q_;

  // Layer 0 of the tower: weight (2d, h0) stored TRANSPOSED as h0 int8 rows
  // of length 2d, symmetric per row (== per output column). colsum_top[j] /
  // colsum_bot[j] are the sums of the first / last d quantized entries of
  // output j's column — the zero-point correction terms.
  RowQuantizedMatrix w0t_;
  std::vector<int32_t> w0_colsum_top_;
  std::vector<int32_t> w0_colsum_bot_;
  std::vector<float> b0_;
  bool layer0_relu_ = true;  // false when hidden_dims is empty (layer 0 IS the output logit)

  // fp32 tail, alternating (in,out) weight and (out) bias, ending with the
  // 1-logit output layer. Empty when hidden_dims is empty.
  std::vector<Tensor> tail_weights_;
  std::vector<Tensor> tail_biases_;

  size_t dim_ = 0;
  uint64_t epoch_ = 0;
  std::string fingerprint_;
  bool fp16_tail_ = false;
};

}  // namespace sttr

#endif  // STTR_CORE_QUANTIZED_MODEL_H_
