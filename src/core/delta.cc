#include "core/delta.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

namespace sttr {

namespace {

constexpr std::string_view kSectionDeltaMeta = "delta_meta";
constexpr std::string_view kSectionConfig = "config";
constexpr std::string_view kSectionDense = "delta_dense";

const char* RowSectionName(int table) {
  switch (table) {
    case 0:
      return "delta_rows_user";
    case 1:
      return "delta_rows_poi";
    default:
      return "delta_rows_word";
  }
}

std::string EncodeRowDelta(const EmbeddingRowDelta& t) {
  std::string out;
  AppendU64(out, t.dim);
  AppendU64(out, t.rows.size());
  out.reserve(out.size() + t.rows.size() * (8 + t.dim * sizeof(float)));
  for (size_t i = 0; i < t.rows.size(); ++i) {
    AppendU64(out, static_cast<uint64_t>(t.rows[i]));
    out.append(reinterpret_cast<const char*>(t.values.data() + i * t.dim),
               t.dim * sizeof(float));
  }
  return out;
}

Status DecodeRowDelta(std::string_view name, std::string_view in,
                      EmbeddingRowDelta* out) {
  uint64_t count = 0;
  if (!ReadU64(in, &out->dim) || !ReadU64(in, &count)) {
    return Status::IOError("delta: truncated header in section '" +
                           std::string(name) + "'");
  }
  if (count > 0 && out->dim == 0) {
    return Status::IOError("delta: zero dim with nonzero rows in section '" +
                           std::string(name) + "'");
  }
  const size_t row_bytes = 8 + out->dim * sizeof(float);
  if (in.size() != count * row_bytes) {
    return Status::IOError("delta: section '" + std::string(name) +
                           "' size does not match its row count");
  }
  out->rows.reserve(count);
  out->values.resize(count * out->dim);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t row = 0;
    std::string_view bytes;
    if (!ReadU64(in, &row) ||
        !ReadBytes(in, out->dim * sizeof(float), &bytes)) {
      return Status::IOError("delta: truncated row in section '" +
                             std::string(name) + "'");
    }
    out->rows.push_back(static_cast<int64_t>(row));
    std::memcpy(out->values.data() + i * out->dim, bytes.data(), bytes.size());
  }
  return Status::OK();
}

}  // namespace

std::string EncodeDeltaCheckpoint(const DeltaCheckpoint& delta) {
  CheckpointWriter writer(kDeltaCheckpointFormatVersion);
  std::string meta;
  AppendU64(meta, delta.base_epoch);
  AppendU32(meta, delta.base_model_crc);
  AppendU64(meta, delta.seq);
  AppendU64(meta, delta.events_applied);
  writer.AddSection(std::string(kSectionDeltaMeta), std::move(meta));
  writer.AddSection(std::string(kSectionConfig), delta.config_fingerprint);
  const EmbeddingRowDelta* tables[3] = {&delta.user, &delta.poi, &delta.word};
  for (int t = 0; t < 3; ++t) {
    writer.AddSection(RowSectionName(t), EncodeRowDelta(*tables[t]));
  }
  if (!delta.dense_params.empty()) {
    writer.AddSection(std::string(kSectionDense), delta.dense_params);
  }
  return writer.Encode();
}

Status WriteDeltaCheckpoint(Env& env, const std::string& path,
                            const DeltaCheckpoint& delta) {
  return AtomicWriteFile(env, path, EncodeDeltaCheckpoint(delta));
}

StatusOr<DeltaCheckpoint> ParseDeltaCheckpoint(const CheckpointReader& reader) {
  if (reader.version() != kDeltaCheckpointFormatVersion) {
    return Status::IOError("delta: not a delta checkpoint (format version " +
                           std::to_string(reader.version()) + ", want " +
                           std::to_string(kDeltaCheckpointFormatVersion) + ")");
  }
  DeltaCheckpoint delta;
  StatusOr<std::string> meta = reader.Section(kSectionDeltaMeta);
  if (!meta.ok()) return meta.status();
  std::string_view in(*meta);
  if (!ReadU64(in, &delta.base_epoch) || !ReadU32(in, &delta.base_model_crc) ||
      !ReadU64(in, &delta.seq) || !ReadU64(in, &delta.events_applied) ||
      !in.empty()) {
    return Status::IOError("delta: malformed delta_meta section");
  }
  StatusOr<std::string> config = reader.Section(kSectionConfig);
  if (!config.ok()) return config.status();
  delta.config_fingerprint = std::move(*config);
  EmbeddingRowDelta* tables[3] = {&delta.user, &delta.poi, &delta.word};
  for (int t = 0; t < 3; ++t) {
    StatusOr<std::string> rows = reader.Section(RowSectionName(t));
    if (!rows.ok()) return rows.status();
    STTR_RETURN_IF_ERROR(DecodeRowDelta(RowSectionName(t), *rows, tables[t]));
  }
  if (reader.HasSection(kSectionDense)) {
    StatusOr<std::string> dense = reader.Section(kSectionDense);
    if (!dense.ok()) return dense.status();
    delta.dense_params = std::move(*dense);
  }
  return delta;
}

StatusOr<DeltaCheckpoint> ReadDeltaCheckpoint(Env& env,
                                              const std::string& path) {
  StatusOr<CheckpointReader> reader = CheckpointReader::Open(env, path);
  if (!reader.ok()) return reader.status();
  return ParseDeltaCheckpoint(*reader);
}

std::string DeltaFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "delta-%06llu.sttr",
                static_cast<unsigned long long>(seq));
  return buf;
}

StatusOr<uint64_t> ParseDeltaSeq(const std::string& filename) {
  unsigned long long seq = 0;
  int consumed = 0;
  if (std::sscanf(filename.c_str(), "delta-%llu.sttr%n", &seq, &consumed) !=
          1 ||
      static_cast<size_t>(consumed) != filename.size()) {
    return Status::InvalidArgument("not a delta file name: " + filename);
  }
  return static_cast<uint64_t>(seq);
}

StatusOr<std::string> FindLatestValidDelta(Env& env, const std::string& dir) {
  StatusOr<std::vector<std::string>> names = env.ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const std::string& name : *names) {
    StatusOr<uint64_t> seq = ParseDeltaSeq(name);
    if (seq.ok()) found.emplace_back(*seq, name);
  }
  std::sort(found.begin(), found.end());
  // Newest first; a torn newer delta falls back to the previous complete one
  // — deltas are cumulative, so the older one is still a correct (if less
  // fresh) patch against the same base.
  for (auto it = found.rbegin(); it != found.rend(); ++it) {
    const std::string path = dir + "/" + it->second;
    StatusOr<CheckpointReader> reader = CheckpointReader::Open(env, path);
    if (reader.ok() && ParseDeltaCheckpoint(*reader).ok()) return path;
  }
  return Status::NotFound("no valid delta in " + dir);
}

Status RotateDeltas(Env& env, const std::string& dir, size_t keep) {
  if (keep == 0) {
    return Status::InvalidArgument("RotateDeltas: keep must be >= 1");
  }
  StatusOr<std::vector<std::string>> names = env.ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const std::string& name : *names) {
    StatusOr<uint64_t> seq = ParseDeltaSeq(name);
    if (seq.ok()) {
      found.emplace_back(*seq, name);
    } else if (IsTempFileName(name)) {
      STTR_RETURN_IF_ERROR(env.Remove(dir + "/" + name));
    }
  }
  std::sort(found.begin(), found.end());
  const size_t excess = found.size() > keep ? found.size() - keep : 0;
  for (size_t i = 0; i < excess; ++i) {
    STTR_RETURN_IF_ERROR(env.Remove(dir + "/" + found[i].second));
  }
  return Status::OK();
}

}  // namespace sttr
