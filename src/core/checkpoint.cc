#include "core/checkpoint.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

namespace sttr {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'T', 'R', 'C', 'K', 'P', '1'};
// A name longer than this is garbage from a corrupted header, not a real
// section; bail before trying to allocate it.
constexpr uint32_t kMaxSectionName = 256;

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const auto& table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void AppendDouble(std::string& out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

bool ReadU32(std::string_view& in, uint32_t* v) {
  if (in.size() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(in[static_cast<size_t>(i)]))
           << (8 * i);
  }
  in.remove_prefix(4);
  *v = out;
  return true;
}

bool ReadU64(std::string_view& in, uint64_t* v) {
  if (in.size() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(in[static_cast<size_t>(i)]))
           << (8 * i);
  }
  in.remove_prefix(8);
  *v = out;
  return true;
}

bool ReadDouble(std::string_view& in, double* v) {
  uint64_t bits = 0;
  if (!ReadU64(in, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool ReadBytes(std::string_view& in, size_t n, std::string_view* v) {
  if (in.size() < n) return false;
  *v = in.substr(0, n);
  in.remove_prefix(n);
  return true;
}

void CheckpointWriter::AddSection(std::string name, std::string payload) {
  CheckpointSection s;
  s.crc = Crc32(payload);
  s.name = std::move(name);
  s.payload = std::move(payload);
  sections_.push_back(std::move(s));
}

std::string CheckpointWriter::Encode() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(out, version_);
  AppendU32(out, static_cast<uint32_t>(sections_.size()));
  for (const CheckpointSection& s : sections_) {
    AppendU32(out, static_cast<uint32_t>(s.name.size()));
    out.append(s.name);
    AppendU64(out, s.payload.size());
    out.append(s.payload);
    AppendU32(out, s.crc);
  }
  return out;
}

Status CheckpointWriter::WriteTo(Env& env, const std::string& path) const {
  return AtomicWriteFile(env, path, Encode());
}

StatusOr<CheckpointReader> CheckpointReader::Parse(
    std::string bytes, uint32_t max_supported_version) {
  std::string_view in(bytes);
  std::string_view magic;
  if (!ReadBytes(in, sizeof(kMagic), &magic) ||
      std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("checkpoint: bad magic (not a checkpoint file?)");
  }
  CheckpointReader reader;
  uint32_t count = 0;
  if (!ReadU32(in, &reader.version_) || !ReadU32(in, &count)) {
    return Status::IOError("checkpoint: truncated header");
  }
  if (reader.version_ == 0 || reader.version_ > max_supported_version) {
    return Status::IOError("checkpoint: unsupported format version " +
                           std::to_string(reader.version_) +
                           " (this reader supports 1.." +
                           std::to_string(max_supported_version) + ")");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(in, &name_len)) {
      return Status::IOError("checkpoint: truncated section header");
    }
    if (name_len == 0 || name_len > kMaxSectionName) {
      return Status::IOError("checkpoint: corrupt section name length");
    }
    std::string_view name;
    uint64_t payload_len = 0;
    if (!ReadBytes(in, name_len, &name) || !ReadU64(in, &payload_len)) {
      return Status::IOError("checkpoint: truncated section header");
    }
    std::string_view payload;
    uint32_t stored_crc = 0;
    if (!ReadBytes(in, payload_len, &payload) || !ReadU32(in, &stored_crc)) {
      return Status::IOError("checkpoint: truncated section '" +
                             std::string(name) + "'");
    }
    const uint32_t actual_crc = Crc32(payload);
    if (actual_crc != stored_crc) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " (stored %08x, computed %08x)",
                    stored_crc, actual_crc);
      return Status::IOError("checkpoint: checksum mismatch in section '" +
                             std::string(name) + "'" + buf);
    }
    CheckpointSection s;
    s.name = std::string(name);
    s.payload = std::string(payload);
    s.crc = stored_crc;
    reader.sections_.push_back(std::move(s));
  }
  if (!in.empty()) {
    return Status::IOError("checkpoint: trailing garbage after last section");
  }
  return reader;
}

StatusOr<CheckpointReader> CheckpointReader::Open(
    Env& env, const std::string& path, uint32_t max_supported_version) {
  StatusOr<std::string> bytes = env.ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return Parse(std::move(bytes).value(), max_supported_version);
}

bool CheckpointReader::HasSection(std::string_view name) const {
  for (const CheckpointSection& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

StatusOr<std::string> CheckpointReader::Section(std::string_view name) const {
  for (const CheckpointSection& s : sections_) {
    if (s.name == name) return s.payload;
  }
  return Status::NotFound("checkpoint: no section '" + std::string(name) +
                          "'");
}

std::string CheckpointFileName(size_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06zu.sttr", epoch);
  return buf;
}

StatusOr<size_t> ParseCheckpointEpoch(const std::string& filename) {
  size_t epoch = 0;
  int consumed = 0;
  if (std::sscanf(filename.c_str(), "ckpt-%zu.sttr%n", &epoch, &consumed) !=
          1 ||
      static_cast<size_t>(consumed) != filename.size()) {
    return Status::InvalidArgument("not a checkpoint file name: " + filename);
  }
  return epoch;
}

StatusOr<std::string> FindLatestValidCheckpoint(Env& env,
                                                const std::string& dir) {
  StatusOr<std::vector<std::string>> names = env.ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<std::pair<size_t, std::string>> found;
  for (const std::string& name : *names) {
    StatusOr<size_t> epoch = ParseCheckpointEpoch(name);
    if (epoch.ok()) found.emplace_back(*epoch, name);
  }
  std::sort(found.begin(), found.end());
  // Newest first; a torn or bit-rotted newer file falls back to the previous
  // complete one instead of failing the resume outright.
  for (auto it = found.rbegin(); it != found.rend(); ++it) {
    const std::string path = dir + "/" + it->second;
    if (CheckpointReader::Open(env, path).ok()) return path;
  }
  return Status::NotFound("no valid checkpoint in " + dir);
}

Status RotateCheckpoints(Env& env, const std::string& dir, size_t keep) {
  if (keep == 0) {
    return Status::InvalidArgument("RotateCheckpoints: keep must be >= 1");
  }
  StatusOr<std::vector<std::string>> names = env.ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<std::pair<size_t, std::string>> found;
  for (const std::string& name : *names) {
    StatusOr<size_t> epoch = ParseCheckpointEpoch(name);
    if (epoch.ok()) {
      found.emplace_back(*epoch, name);
    } else if (IsTempFileName(name)) {
      // Residue of an interrupted atomic write; always safe to delete.
      STTR_RETURN_IF_ERROR(env.Remove(dir + "/" + name));
    }
  }
  std::sort(found.begin(), found.end());
  const size_t excess = found.size() > keep ? found.size() - keep : 0;
  for (size_t i = 0; i < excess; ++i) {
    STTR_RETURN_IF_ERROR(env.Remove(dir + "/" + found[i].second));
  }
  return Status::OK();
}

}  // namespace sttr
