#ifndef STTR_CORE_DELTA_H_
#define STTR_CORE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "util/fs.h"
#include "util/status.h"

namespace sttr {

/// Changed rows of one embedding table inside a delta checkpoint. `values`
/// is row-major with `rows.size() * dim` floats: values[i*dim .. i*dim+dim)
/// is the full new content of table row rows[i].
struct EmbeddingRowDelta {
  uint64_t dim = 0;
  std::vector<int64_t> rows;
  std::vector<float> values;

  size_t num_rows() const { return rows.size(); }
  const float* row_values(size_t i) const { return values.data() + i * dim; }
};

/// A v3 delta checkpoint: the rows of the user/POI/word embedding tables
/// the incremental trainer has touched since the base checkpoint, plus the
/// provenance needed to refuse applying it to anything else. Deltas are
/// *cumulative* against their base — delta seq N carries every row touched
/// since the base, so applying only the newest delta to a pristine copy of
/// the base (in any order, any number of times) reproduces the trainer's
/// exact state. That is what makes the serving-side double-buffered apply
/// idempotent and lets rotation delete older deltas freely.
struct DeltaCheckpoint {
  /// Completed epochs of the base checkpoint this delta patches.
  uint64_t base_epoch = 0;
  /// CRC32 of the base checkpoint's "model" section payload: binds the
  /// delta to the exact parameter bytes it was trained from, so a delta
  /// can never be applied to (or diffed against) a different base that
  /// happens to share the epoch number.
  uint32_t base_model_crc = 0;
  /// Delta sequence number, 1-based and strictly increasing per base.
  uint64_t seq = 0;
  /// Cumulative check-in events consumed since the base.
  uint64_t events_applied = 0;
  /// StTransRec::ConfigFingerprint() of the trainer; verified on apply.
  std::string config_fingerprint;

  EmbeddingRowDelta user;
  EmbeddingRowDelta poi;
  EmbeddingRowDelta word;

  /// When non-empty: a full refresh of the dense MLP parameters
  /// (concatenated Tensor::Serialize bytes, same layout as the tail of a
  /// v1 "model" section). Row-level cache invalidation is unsound for a
  /// dense refresh — every cached score depends on the tower — so a
  /// consumer seeing this must fall back to a wholesale flush. The default
  /// embedding-only incremental trainer never emits it.
  std::string dense_params;

  size_t total_rows() const {
    return user.num_rows() + poi.num_rows() + word.num_rows();
  }
};

/// Serialises `delta` as a v3 container (sections "delta_meta", "config",
/// "delta_rows_user"/"delta_rows_poi"/"delta_rows_word" and, when present,
/// "delta_dense") and writes it via AtomicWriteFile.
Status WriteDeltaCheckpoint(Env& env, const std::string& path,
                            const DeltaCheckpoint& delta);

/// Encodes without touching the filesystem (tests, ckpt_inspect).
std::string EncodeDeltaCheckpoint(const DeltaCheckpoint& delta);

/// Decodes a parsed v3 container. Rejects other versions, malformed row
/// sections, and row/value count mismatches.
StatusOr<DeltaCheckpoint> ParseDeltaCheckpoint(const CheckpointReader& reader);

/// Open + Parse + decode in one step.
StatusOr<DeltaCheckpoint> ReadDeltaCheckpoint(Env& env,
                                              const std::string& path);

// -- Delta directories -----------------------------------------------------------
// Deltas live in their own directory (conventionally "<ckpt_dir>/delta")
// with their own file-name shape, so FindLatestValidCheckpoint and
// checkpoint rotation never mistake one for a full checkpoint.

/// "delta-000007.sttr" for delta sequence number 7.
std::string DeltaFileName(uint64_t seq);

/// Parses the sequence number out of a DeltaFileName-shaped name; error for
/// temp files and foreign names.
StatusOr<uint64_t> ParseDeltaSeq(const std::string& filename);

/// Full path of the newest delta in `dir` that parses and passes every
/// checksum, newest-first with torn files skipped — the same crash-safety
/// contract as FindLatestValidCheckpoint.
StatusOr<std::string> FindLatestValidDelta(Env& env, const std::string& dir);

/// Deletes all but the `keep` newest deltas plus leftover temp files. Safe
/// because deltas are cumulative: the newest one alone reproduces the full
/// trainer state. keep == 0 is rejected.
Status RotateDeltas(Env& env, const std::string& dir, size_t keep);

}  // namespace sttr

#endif  // STTR_CORE_DELTA_H_
