#include "autograd/variable.h"

#include <unordered_set>

#include "util/check.h"

namespace sttr::ag {

namespace internal {

Tensor& Node::EnsureGrad() {
  if (!grad_allocated) {
    grad = Tensor(value.shape());
    grad_allocated = true;
  }
  return grad;
}

}  // namespace internal

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<internal::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  STTR_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  STTR_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  STTR_CHECK(defined());
  return const_cast<internal::Node*>(node_.get())->EnsureGrad();
}

Tensor& Variable::mutable_grad() {
  STTR_CHECK(defined());
  return node_->EnsureGrad();
}

bool Variable::requires_grad() const {
  STTR_CHECK(defined());
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  STTR_CHECK(defined());
  if (node_->grad_allocated) node_->grad.Fill(0.0f);
  node_->touched_rows.clear();
}

void Variable::ZeroGradSparse() {
  STTR_CHECK(defined());
  internal::Node& n = *node_;
  if (n.touched_rows.empty()) {
    if (n.grad_allocated) n.grad.Fill(0.0f);
    return;
  }
  STTR_CHECK(n.grad_allocated);
  STTR_CHECK_EQ(n.grad.ndim(), 2u) << "touched rows require a 2-D gradient";
  const size_t cols = n.grad.cols();
  // The list may contain duplicates (GatherRows appends raw indices);
  // re-zeroing a row is harmless.
  for (int64_t r : n.touched_rows) {
    float* row = n.grad.row(static_cast<size_t>(r));
    std::fill(row, row + cols, 0.0f);
  }
  n.touched_rows.clear();
}

const std::vector<int64_t>& Variable::touched_rows() const {
  STTR_CHECK(defined());
  return node_->touched_rows;
}

void Variable::set_name(std::string name) {
  STTR_CHECK(defined());
  node_->name = std::move(name);
}

const std::string& Variable::name() const {
  STTR_CHECK(defined());
  return node_->name;
}

Variable MakeNode(Tensor value,
                  std::vector<std::shared_ptr<internal::Node>> parents,
                  std::function<void(internal::Node&)> backward_fn,
                  std::string name) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  node->backward_fn = std::move(backward_fn);
  node->name = std::move(name);
  // An interior node needs gradients iff any ancestor is trainable.
  for (const auto& p : node->parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  return Variable(std::move(node));
}

void Backward(const Variable& root) {
  STTR_CHECK(root.defined());
  STTR_CHECK_EQ(root.value().size(), 1u)
      << "Backward() roots must be scalar losses";

  // Iterative post-order DFS producing a topological order (parents first in
  // `topo`, so we propagate in reverse).
  std::vector<internal::Node*> topo;
  std::unordered_set<internal::Node*> visited;
  std::vector<std::pair<internal::Node*, size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      internal::Node* child = node->parents[next_child].get();
      ++next_child;
      if (!visited.count(child) && child->requires_grad) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }

  root.node()->EnsureGrad().Fill(1.0f);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    internal::Node* node = *it;
    if (node->backward_fn && node->requires_grad) {
      node->backward_fn(*node);
    }
  }
}

}  // namespace sttr::ag
