#include "autograd/ops.h"

#include <cmath>

#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace sttr::ag {

namespace {

using internal::Node;
using NodePtr = std::shared_ptr<Node>;

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  // Bit-identical to the serial kernel; large batches shard across the
  // global pool (no-op inside ParallelTrainer workers, see ThreadPool).
  Tensor out = sttr::ParallelMatMul(a.value(), b.value());
  NodePtr na = a.node(), nb = b.node();
  return MakeNode(
      std::move(out), {na, nb},
      [na, nb](Node& self) {
        if (na->requires_grad) {
          na->EnsureGrad().AddInPlace(MatMulTransB(self.grad, nb->value));
        }
        if (nb->requires_grad) {
          nb->EnsureGrad().AddInPlace(MatMulTransA(na->value, self.grad));
        }
      },
      "matmul");
}

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = sttr::Add(a.value(), b.value());
  NodePtr na = a.node(), nb = b.node();
  return MakeNode(
      std::move(out), {na, nb},
      [na, nb](Node& self) {
        if (na->requires_grad) na->EnsureGrad().AddInPlace(self.grad);
        if (nb->requires_grad) nb->EnsureGrad().AddInPlace(self.grad);
      },
      "add");
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = sttr::Sub(a.value(), b.value());
  NodePtr na = a.node(), nb = b.node();
  return MakeNode(
      std::move(out), {na, nb},
      [na, nb](Node& self) {
        if (na->requires_grad) na->EnsureGrad().AddInPlace(self.grad);
        if (nb->requires_grad) nb->EnsureGrad().Axpy(-1.0f, self.grad);
      },
      "sub");
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = sttr::Mul(a.value(), b.value());
  NodePtr na = a.node(), nb = b.node();
  return MakeNode(
      std::move(out), {na, nb},
      [na, nb](Node& self) {
        if (na->requires_grad) {
          na->EnsureGrad().AddInPlace(sttr::Mul(self.grad, nb->value));
        }
        if (nb->requires_grad) {
          nb->EnsureGrad().AddInPlace(sttr::Mul(self.grad, na->value));
        }
      },
      "mul");
}

Variable Scale(const Variable& x, float alpha) {
  Tensor out = sttr::Scale(x.value(), alpha);
  NodePtr nx = x.node();
  return MakeNode(
      std::move(out), {nx},
      [nx, alpha](Node& self) {
        if (nx->requires_grad) nx->EnsureGrad().Axpy(alpha, self.grad);
      },
      "scale");
}

Variable AddRowBroadcast(const Variable& x, const Variable& bias) {
  Tensor out = sttr::AddRowBroadcast(x.value(), bias.value());
  NodePtr nx = x.node(), nb = bias.node();
  return MakeNode(
      std::move(out), {nx, nb},
      [nx, nb](Node& self) {
        if (nx->requires_grad) nx->EnsureGrad().AddInPlace(self.grad);
        if (nb->requires_grad) {
          Tensor colsum = ColSum(self.grad);
          Tensor& g = nb->EnsureGrad();
          STTR_CHECK_EQ(g.size(), colsum.size());
          for (size_t j = 0; j < g.size(); ++j) g[j] += colsum[j];
        }
      },
      "add_bias");
}

Variable Relu(const Variable& x) {
  Tensor out = sttr::Relu(x.value());
  NodePtr nx = x.node();
  return MakeNode(
      std::move(out), {nx},
      [nx](Node& self) {
        if (!nx->requires_grad) return;
        Tensor& g = nx->EnsureGrad();
        for (size_t i = 0; i < g.size(); ++i) {
          if (self.value[i] > 0.0f) g[i] += self.grad[i];
        }
      },
      "relu");
}

Variable SigmoidOp(const Variable& x) {
  Tensor out = sttr::Sigmoid(x.value());
  NodePtr nx = x.node();
  return MakeNode(
      std::move(out), {nx},
      [nx](Node& self) {
        if (!nx->requires_grad) return;
        Tensor& g = nx->EnsureGrad();
        for (size_t i = 0; i < g.size(); ++i) {
          const float s = self.value[i];
          g[i] += self.grad[i] * s * (1.0f - s);
        }
      },
      "sigmoid");
}

Variable TanhOp(const Variable& x) {
  Tensor out = sttr::TanhT(x.value());
  NodePtr nx = x.node();
  return MakeNode(
      std::move(out), {nx},
      [nx](Node& self) {
        if (!nx->requires_grad) return;
        Tensor& g = nx->EnsureGrad();
        for (size_t i = 0; i < g.size(); ++i) {
          const float t = self.value[i];
          g[i] += self.grad[i] * (1.0f - t * t);
        }
      },
      "tanh");
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  Tensor out = sttr::ConcatCols(a.value(), b.value());
  NodePtr na = a.node(), nb = b.node();
  const size_t p = a.value().cols();
  const size_t q = b.value().cols();
  return MakeNode(
      std::move(out), {na, nb},
      [na, nb, p, q](Node& self) {
        if (na->requires_grad) {
          na->EnsureGrad().AddInPlace(SliceCols(self.grad, 0, p));
        }
        if (nb->requires_grad) {
          nb->EnsureGrad().AddInPlace(SliceCols(self.grad, p, p + q));
        }
      },
      "concat_cols");
}

Variable GatherRows(const Variable& table,
                    const std::vector<int64_t>& indices) {
  Tensor out = sttr::GatherRows(table.value(), indices);
  NodePtr nt = table.node();
  return MakeNode(
      std::move(out), {nt},
      [nt, indices](Node& self) {
        if (!nt->requires_grad) return;
        ScatterRowsAdd(nt->EnsureGrad(), indices, self.grad);
        nt->touched_rows.insert(nt->touched_rows.end(), indices.begin(),
                                indices.end());
      },
      "gather_rows");
}

Variable Dropout(const Variable& x, float rate, bool training, Rng& rng) {
  STTR_CHECK_GE(rate, 0.0f);
  STTR_CHECK_LT(rate, 1.0f) << "dropout rate must be < 1";
  if (!training || rate == 0.0f) return x;
  const float keep = 1.0f - rate;
  const float inv_keep = 1.0f / keep;
  Tensor mask(x.value().shape());
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng.Bernoulli(keep) ? inv_keep : 0.0f;
  }
  Tensor out = sttr::Mul(x.value(), mask);
  NodePtr nx = x.node();
  return MakeNode(
      std::move(out), {nx},
      [nx, mask = std::move(mask)](Node& self) {
        if (!nx->requires_grad) return;
        nx->EnsureGrad().AddInPlace(sttr::Mul(self.grad, mask));
      },
      "dropout");
}

Variable Sum(const Variable& x) {
  Tensor out = Tensor::Scalar(static_cast<float>(x.value().Sum()));
  NodePtr nx = x.node();
  return MakeNode(
      std::move(out), {nx},
      [nx](Node& self) {
        if (!nx->requires_grad) return;
        nx->EnsureGrad().Axpy(self.grad[0], Tensor::Ones(nx->value.shape()));
      },
      "sum");
}

Variable Mean(const Variable& x) {
  STTR_CHECK(!x.value().empty());
  Tensor out = Tensor::Scalar(static_cast<float>(x.value().Mean()));
  NodePtr nx = x.node();
  const float inv_n = 1.0f / static_cast<float>(x.value().size());
  return MakeNode(
      std::move(out), {nx},
      [nx, inv_n](Node& self) {
        if (!nx->requires_grad) return;
        nx->EnsureGrad().Axpy(self.grad[0] * inv_n,
                              Tensor::Ones(nx->value.shape()));
      },
      "mean");
}

Variable RowwiseDot(const Variable& a, const Variable& b) {
  Tensor out = sttr::RowwiseDot(a.value(), b.value());
  NodePtr na = a.node(), nb = b.node();
  return MakeNode(
      std::move(out), {na, nb},
      [na, nb](Node& self) {
        const size_t n = na->value.rows();
        const size_t d = na->value.cols();
        if (na->requires_grad) {
          Tensor& g = na->EnsureGrad();
          for (size_t i = 0; i < n; ++i) {
            const float gi = self.grad[i];
            const float* rb = nb->value.row(i);
            float* dst = g.row(i);
            for (size_t j = 0; j < d; ++j) dst[j] += gi * rb[j];
          }
        }
        if (nb->requires_grad) {
          Tensor& g = nb->EnsureGrad();
          for (size_t i = 0; i < n; ++i) {
            const float gi = self.grad[i];
            const float* ra = na->value.row(i);
            float* dst = g.row(i);
            for (size_t j = 0; j < d; ++j) dst[j] += gi * ra[j];
          }
        }
      },
      "rowwise_dot");
}

Variable BceWithLogits(const Variable& logits, const Tensor& labels) {
  const Tensor& x = logits.value();
  STTR_CHECK_EQ(x.size(), labels.size());
  STTR_CHECK_GT(x.size(), 0u);
  // -[y log s + (1-y) log(1-s)] = softplus(x) - y*x, computed stably and
  // vectorised (simd.h) — this forward runs on every training step.
  const double loss = simd::BceWithLogitsSum(x.data(), labels.data(), x.size());
  const size_t n = x.size();
  Tensor out = Tensor::Scalar(static_cast<float>(loss / static_cast<double>(n)));
  NodePtr nx = logits.node();
  return MakeNode(
      std::move(out), {nx},
      [nx, labels, n](Node& self) {
        if (!nx->requires_grad) return;
        Tensor& g = nx->EnsureGrad();
        const float scale = self.grad[0] / static_cast<float>(n);
        for (size_t i = 0; i < g.size(); ++i) {
          g[i] += scale * (SigmoidScalar(nx->value[i]) - labels[i]);
        }
      },
      "bce_with_logits");
}

}  // namespace sttr::ag
