#ifndef STTR_AUTOGRAD_VARIABLE_H_
#define STTR_AUTOGRAD_VARIABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sttr::ag {

namespace internal {

/// One node of the dynamic computation graph. Owned via shared_ptr by the
/// Variables referencing it and by its children (through `parents`).
struct Node {
  Tensor value;
  Tensor grad;  // Allocated on first use; same shape as value.
  bool requires_grad = false;
  bool grad_allocated = false;

  /// Upstream nodes this value was computed from (empty for leaves).
  std::vector<std::shared_ptr<Node>> parents;

  /// Propagates this->grad into the parents' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;

  /// For embedding tables: rows whose grad is non-zero after backward.
  /// Lets optimisers run lazy (sparse) updates. Maintained by GatherRows.
  std::vector<int64_t> touched_rows;

  /// Debug label.
  std::string name;

  /// Zero-allocates grad if needed and returns it.
  Tensor& EnsureGrad();
};

}  // namespace internal

/// Handle to a computation-graph node. Copying a Variable aliases the node.
///
/// Leaves created with requires_grad=true act as trainable parameters: their
/// grad persists across backward passes (accumulated) until ZeroGrad().
class Variable {
 public:
  /// Null handle; defined() is false.
  Variable() = default;

  /// Leaf node holding `value`.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  Tensor& mutable_value();

  /// Gradient w.r.t. this variable; zeros if backward has not touched it.
  const Tensor& grad() const;
  Tensor& mutable_grad();

  bool requires_grad() const;

  /// Clears the accumulated gradient (and the touched-row list).
  void ZeroGrad();

  /// Sparse-aware gradient clear: zeroes only the rows recorded in
  /// touched_rows() (the only dirty rows of an embedding-table gradient) and
  /// resets the list; falls back to a dense clear when no rows are recorded.
  /// O(touched * cols) instead of O(rows * cols) on embedding tables.
  void ZeroGradSparse();

  /// Rows recorded as touched by sparse (embedding) backward passes since the
  /// last ZeroGrad(). May contain duplicates.
  const std::vector<int64_t>& touched_rows() const;

  /// Debug name (optional).
  void set_name(std::string name);
  const std::string& name() const;

  std::shared_ptr<internal::Node> node() const { return node_; }

  /// Wraps an existing node.
  explicit Variable(std::shared_ptr<internal::Node> node)
      : node_(std::move(node)) {}

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Runs reverse-mode differentiation from `root`, which must hold a single
/// scalar. Gradients are accumulated (+=) into every reachable node with
/// requires_grad set (directly or transitively).
void Backward(const Variable& root);

/// Creates an interior node. Used by the op library; exposed for custom ops
/// (e.g. the MMD loss in src/transfer).
Variable MakeNode(Tensor value,
                  std::vector<std::shared_ptr<internal::Node>> parents,
                  std::function<void(internal::Node&)> backward_fn,
                  std::string name = {});

}  // namespace sttr::ag

#endif  // STTR_AUTOGRAD_VARIABLE_H_
