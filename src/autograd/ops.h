#ifndef STTR_AUTOGRAD_OPS_H_
#define STTR_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "util/rng.h"

namespace sttr::ag {

// Differentiable op library. Each function runs the forward kernel eagerly
// and registers a closure that accumulates gradients into the inputs.

/// Matrix product: a(n,k) * b(k,m).
Variable MatMul(const Variable& a, const Variable& b);

/// Elementwise sum (same shape).
Variable Add(const Variable& a, const Variable& b);

/// Elementwise difference (same shape).
Variable Sub(const Variable& a, const Variable& b);

/// Hadamard product (same shape).
Variable Mul(const Variable& a, const Variable& b);

/// alpha * x.
Variable Scale(const Variable& x, float alpha);

/// x(n,m) + bias(m) broadcast over rows.
Variable AddRowBroadcast(const Variable& x, const Variable& bias);

/// max(0, x).
Variable Relu(const Variable& x);

/// Logistic sigmoid.
Variable SigmoidOp(const Variable& x);

/// tanh(x).
Variable TanhOp(const Variable& x);

/// [a | b] along columns (equal rows).
Variable ConcatCols(const Variable& a, const Variable& b);

/// Row lookup into an embedding table. Records touched rows on the table
/// node so optimisers can apply lazy sparse updates.
Variable GatherRows(const Variable& table, const std::vector<int64_t>& indices);

/// Inverted dropout. Identity when !training or rate == 0.
Variable Dropout(const Variable& x, float rate, bool training, Rng& rng);

/// Scalar sum of all entries.
Variable Sum(const Variable& x);

/// Scalar mean of all entries.
Variable Mean(const Variable& x);

/// Row-wise dot of two (n,d) inputs -> (n).
Variable RowwiseDot(const Variable& a, const Variable& b);

/// Mean binary cross-entropy over logits(n) against labels(n) in {0,1}
/// (computed stably from logits; gradient is (sigmoid(x)-y)/n).
Variable BceWithLogits(const Variable& logits, const Tensor& labels);

/// Constant (non-trainable) wrapper.
inline Variable Constant(Tensor t) { return Variable(std::move(t), false); }

}  // namespace sttr::ag

#endif  // STTR_AUTOGRAD_OPS_H_
