#ifndef STTR_EVAL_METRICS_H_
#define STTR_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace sttr {

/// The four ranking metrics the paper reports (definitions per Liu et al.,
/// "An experimental evaluation of point-of-interest recommendation", which
/// the paper cites as [20]).
struct RankingMetrics {
  double recall = 0.0;
  double precision = 0.0;
  double ndcg = 0.0;
  double map = 0.0;

  RankingMetrics& operator+=(const RankingMetrics& o);
  RankingMetrics operator/(double denom) const;
};

/// `relevance[i]` marks whether the item ranked at position i (0-based) is a
/// ground-truth hit; `num_relevant` is the total ground-truth size.

/// |hits in top-k| / num_relevant.
double RecallAtK(const std::vector<bool>& relevance, size_t num_relevant,
                 size_t k);

/// |hits in top-k| / k.
double PrecisionAtK(const std::vector<bool>& relevance, size_t k);

/// Binary-relevance NDCG with IDCG = best possible DCG given num_relevant.
double NdcgAtK(const std::vector<bool>& relevance, size_t num_relevant,
               size_t k);

/// Average precision at k, normalised by min(num_relevant, k).
double ApAtK(const std::vector<bool>& relevance, size_t num_relevant,
             size_t k);

/// All four at once.
RankingMetrics MetricsAtK(const std::vector<bool>& relevance,
                          size_t num_relevant, size_t k);

/// Mean reciprocal rank truncated at k: 1/rank of the first hit within the
/// top-k, 0 if none. (Not reported by the paper; provided because much of
/// the follow-up literature uses it.)
double MrrAtK(const std::vector<bool>& relevance, size_t k);

/// Hit ratio at k: 1 if any ground-truth item appears in the top-k.
double HitRateAtK(const std::vector<bool>& relevance, size_t k);

}  // namespace sttr

#endif  // STTR_EVAL_METRICS_H_
