#ifndef STTR_EVAL_FIDELITY_H_
#define STTR_EVAL_FIDELITY_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "eval/protocol.h"

namespace sttr {

/// Configuration of the quantization fidelity harness.
struct FidelityConfig {
  /// Cutoffs of the full-city ranking comparison.
  std::vector<size_t> ks = {5, 10};
  /// Settings of the sampled-negatives protocol run for both scorers
  /// (EvaluateRanking; deterministic for a fixed seed, so ref and candidate
  /// see identical negative samples).
  EvalConfig protocol;
  /// Cap on test users in the full-city sweep; 0 = all of them.
  size_t max_users = 0;
};

/// Per-cutoff comparison of a reference scorer against a candidate.
struct FidelityAtK {
  double hr_ref = 0.0;
  double hr_cand = 0.0;
  double ndcg_ref = 0.0;
  double ndcg_cand = 0.0;
  /// Mean |top-k(ref) intersect top-k(cand)| / k across users: 1.0 means the
  /// candidate surfaces exactly the same POIs.
  double overlap = 0.0;

  double hr_delta() const { return hr_cand - hr_ref; }
  double ndcg_delta() const { return ndcg_cand - ndcg_ref; }
};

/// Result of CompareScorers: how faithfully `cand` reproduces `ref`.
struct FidelityReport {
  std::map<size_t, FidelityAtK> at_k;
  size_t num_users = 0;
  /// All (user, candidate) scores compared for the delta statistics.
  size_t num_pairs_scored = 0;
  double max_abs_score_delta = 0.0;
  double mean_abs_score_delta = 0.0;
  /// The paper's sampled-negatives protocol, run for both scorers.
  EvalResult protocol_ref;
  EvalResult protocol_cand;

  /// Human-readable multi-line summary (the table EXPERIMENTS.md quotes).
  std::string ToString() const;
};

/// Fidelity harness for approximate inference paths (int8 quantization):
/// ranks EVERY target-city POI for each crossing-city test user under both
/// scorers and reports HR@K / NDCG@K for each, their deltas, top-k overlap,
/// and raw score-delta statistics, plus a run of the standard sampled-
/// negatives protocol for both. Rankings use the canonical serving order —
/// higher score first, ties to the smaller POI id — matching
/// TopKByScore (core/recommender.h).
FidelityReport CompareScorers(const Dataset& dataset,
                              const CrossCitySplit& split,
                              const PoiScorer& ref, const PoiScorer& cand,
                              const FidelityConfig& config = {});

}  // namespace sttr

#endif  // STTR_EVAL_FIDELITY_H_
