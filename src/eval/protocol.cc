#include "eval/protocol.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sttr {

namespace {

/// One test user's fully sampled candidate pool: everything the scoring
/// phase needs, so that phase is free of shared mutable state and can run
/// on any thread.
struct UserEvalTask {
  UserId user = -1;
  std::vector<PoiId> candidates;
  std::unordered_set<PoiId> truth;
};

}  // namespace

const RankingMetrics& EvalResult::At(size_t k) const {
  auto it = at_k.find(k);
  STTR_CHECK(it != at_k.end()) << "no metrics at k=" << k;
  return it->second;
}

EvalResult EvaluateRanking(const Dataset& dataset, const CrossCitySplit& split,
                           const PoiScorer& scorer, const EvalConfig& config) {
  STTR_CHECK(!config.ks.empty());
  STTR_CHECK_GT(config.num_negatives, 0u);
  Rng rng(config.seed);

  EvalResult result;
  for (size_t k : config.ks) result.at_k[k] = RankingMetrics{};

  const auto& target_pois = dataset.PoisInCity(split.target_city);

  // ---- Phase 1 (serial): sample each user's candidate pool. ------------------
  // Negative sampling consumes the single protocol RNG in test-user order,
  // exactly as the historical sequential loop did, so the pools — and hence
  // every downstream number — are independent of the thread count.
  std::vector<UserEvalTask> tasks;
  tasks.reserve(split.test_users.size());
  for (const auto& test_user : split.test_users) {
    if (test_user.ground_truth.empty()) continue;

    // POIs this user ever touched (train or test) are not negatives.
    std::unordered_set<PoiId> visited;
    for (size_t idx : dataset.CheckinsOfUser(test_user.user)) {
      visited.insert(dataset.checkins()[idx].poi);
    }

    UserEvalTask task;
    task.user = test_user.user;
    task.truth.insert(test_user.ground_truth.begin(),
                      test_user.ground_truth.end());

    // Candidate pool: ground truth + sampled unvisited target POIs.
    task.candidates = test_user.ground_truth;
    std::unordered_set<PoiId> chosen(task.truth.begin(), task.truth.end());
    size_t attempts = 0;
    const size_t max_attempts = 50 * config.num_negatives + target_pois.size();
    while (chosen.size() < task.truth.size() + config.num_negatives &&
           attempts < max_attempts) {
      ++attempts;
      const PoiId cand = target_pois[rng.UniformInt(target_pois.size())];
      if (visited.count(cand) || !chosen.insert(cand).second) continue;
      task.candidates.push_back(cand);
    }
    tasks.push_back(std::move(task));
  }

  // ---- Phase 2 (parallel): score and rank every user independently. ----------
  // Each task writes only its own per-user accumulator slot.
  std::vector<std::vector<RankingMetrics>> per_user(
      tasks.size(), std::vector<RankingMetrics>(config.ks.size()));
  const auto eval_one = [&](size_t t) {
    const UserEvalTask& task = tasks[t];
    const std::vector<double> scores =
        scorer.ScoreBatch(task.user, task.candidates);

    // Rank by score, breaking ties by POI id for determinism.
    std::vector<std::pair<double, PoiId>> scored;
    scored.reserve(task.candidates.size());
    for (size_t i = 0; i < task.candidates.size(); ++i) {
      scored.emplace_back(scores[i], task.candidates[i]);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });

    std::vector<bool> relevance(scored.size());
    for (size_t i = 0; i < scored.size(); ++i) {
      relevance[i] = task.truth.count(scored[i].second) > 0;
    }
    for (size_t ki = 0; ki < config.ks.size(); ++ki) {
      per_user[t][ki] = MetricsAtK(relevance, task.truth.size(),
                                   config.ks[ki]);
    }
  };

  const size_t threads =
      config.num_threads > 0 ? config.num_threads : DefaultNumThreads();
  if (threads <= 1 || tasks.size() <= 1 || ThreadPool::InWorker()) {
    for (size_t t = 0; t < tasks.size(); ++t) eval_one(t);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(tasks.size(), eval_one);
  }

  // ---- Phase 3 (serial): reduce in test-user order. --------------------------
  // Same addition order as the sequential loop: bit-identical averages.
  for (size_t t = 0; t < tasks.size(); ++t) {
    for (size_t ki = 0; ki < config.ks.size(); ++ki) {
      result.at_k[config.ks[ki]] += per_user[t][ki];
    }
    result.num_users_evaluated += 1;
  }
  if (result.num_users_evaluated > 0) {
    for (auto& [k, m] : result.at_k) {
      m = m / static_cast<double>(result.num_users_evaluated);
    }
  }
  return result;
}

}  // namespace sttr
