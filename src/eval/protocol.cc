#include "eval/protocol.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"

namespace sttr {

const RankingMetrics& EvalResult::At(size_t k) const {
  auto it = at_k.find(k);
  STTR_CHECK(it != at_k.end()) << "no metrics at k=" << k;
  return it->second;
}

EvalResult EvaluateRanking(const Dataset& dataset, const CrossCitySplit& split,
                           const PoiScorer& scorer, const EvalConfig& config) {
  STTR_CHECK(!config.ks.empty());
  STTR_CHECK_GT(config.num_negatives, 0u);
  Rng rng(config.seed);

  EvalResult result;
  for (size_t k : config.ks) result.at_k[k] = RankingMetrics{};

  const auto& target_pois = dataset.PoisInCity(split.target_city);

  for (const auto& test_user : split.test_users) {
    if (test_user.ground_truth.empty()) continue;

    // POIs this user ever touched (train or test) are not negatives.
    std::unordered_set<PoiId> visited;
    for (size_t idx : dataset.CheckinsOfUser(test_user.user)) {
      visited.insert(dataset.checkins()[idx].poi);
    }

    std::unordered_set<PoiId> truth(test_user.ground_truth.begin(),
                                    test_user.ground_truth.end());

    // Candidate pool: ground truth + sampled unvisited target POIs.
    std::vector<PoiId> candidates(test_user.ground_truth);
    std::unordered_set<PoiId> chosen(truth.begin(), truth.end());
    size_t attempts = 0;
    const size_t max_attempts = 50 * config.num_negatives + target_pois.size();
    while (chosen.size() < truth.size() + config.num_negatives &&
           attempts < max_attempts) {
      ++attempts;
      const PoiId cand = target_pois[rng.UniformInt(target_pois.size())];
      if (visited.count(cand) || !chosen.insert(cand).second) continue;
      candidates.push_back(cand);
    }

    // Rank by score, breaking ties by POI id for determinism.
    std::vector<std::pair<double, PoiId>> scored;
    scored.reserve(candidates.size());
    for (PoiId v : candidates) {
      scored.emplace_back(scorer.Score(test_user.user, v), v);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });

    std::vector<bool> relevance(scored.size());
    for (size_t i = 0; i < scored.size(); ++i) {
      relevance[i] = truth.count(scored[i].second) > 0;
    }

    for (size_t k : config.ks) {
      result.at_k[k] += MetricsAtK(relevance, truth.size(), k);
    }
    result.num_users_evaluated += 1;
  }

  if (result.num_users_evaluated > 0) {
    for (auto& [k, m] : result.at_k) {
      m = m / static_cast<double>(result.num_users_evaluated);
    }
  }
  return result;
}

}  // namespace sttr
