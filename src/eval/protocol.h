#ifndef STTR_EVAL_PROTOCOL_H_
#define STTR_EVAL_PROTOCOL_H_

#include <map>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "eval/metrics.h"

namespace sttr {

/// Scoring interface every recommender (ST-TransRec, its variants and all
/// baselines) implements. Higher scores rank earlier.
///
/// Score()/ScoreBatch() must be safe to call concurrently from multiple
/// threads after fitting: the evaluation protocol and RecommendTopK shard
/// candidate scoring across a thread pool.
class PoiScorer {
 public:
  virtual ~PoiScorer() = default;

  /// Preference score of `user` for `poi` in the target city.
  virtual double Score(UserId user, PoiId poi) const = 0;

  /// Scores one user against many candidate POIs, returned in input order.
  /// The default loops over Score(); models with a batched inference path
  /// (ST-TransRec runs the candidate set through its MLP tower as one
  /// matrix product) override this with something much faster. Overrides
  /// must return exactly the values the per-pair path would.
  virtual std::vector<double> ScoreBatch(UserId user,
                                         std::span<const PoiId> pois) const {
    std::vector<double> out;
    out.reserve(pois.size());
    for (PoiId v : pois) out.push_back(Score(user, v));
    return out;
  }

  /// Scores heterogeneous (user, poi) pairs, returned in input order. This
  /// is the entry point the online micro-batcher coalesces concurrent
  /// requests from *different* users into. The default loops over Score();
  /// overrides must return exactly the per-pair values Score() would, so
  /// batching is invisible to callers. Precondition: equal span lengths.
  virtual std::vector<double> ScorePairs(std::span<const UserId> users,
                                         std::span<const PoiId> pois) const {
    std::vector<double> out;
    out.reserve(pois.size());
    for (size_t i = 0; i < pois.size(); ++i) {
      out.push_back(Score(users[i], pois[i]));
    }
    return out;
  }
};

/// Configuration of the paper's §4.1 ranking protocol.
struct EvalConfig {
  /// Cutoffs reported (paper: 2, 4, 6, 8, 10).
  std::vector<size_t> ks = {2, 4, 6, 8, 10};
  /// Unvisited target-city POIs sampled per test user (paper: 100).
  size_t num_negatives = 100;
  uint64_t seed = 7;
  /// Worker threads for the scoring phase. 0 = DefaultNumThreads() (the
  /// STTR_NUM_THREADS environment variable, else hardware concurrency);
  /// 1 = fully sequential. Results are bit-identical across thread counts:
  /// negative sampling stays serial and per-user metrics are reduced in
  /// test-user order.
  size_t num_threads = 0;
};

/// Averaged metrics per cutoff, plus bookkeeping.
struct EvalResult {
  std::map<size_t, RankingMetrics> at_k;
  size_t num_users_evaluated = 0;

  const RankingMetrics& At(size_t k) const;
};

/// Runs the protocol: for each crossing-city test user, samples
/// `num_negatives` target-city POIs the user never visited, pools them with
/// the ground truth, ranks by scorer and averages the metrics over users.
/// Deterministic for a fixed config.seed (scorer permitting).
EvalResult EvaluateRanking(const Dataset& dataset, const CrossCitySplit& split,
                           const PoiScorer& scorer, const EvalConfig& config);

}  // namespace sttr

#endif  // STTR_EVAL_PROTOCOL_H_
