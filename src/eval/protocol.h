#ifndef STTR_EVAL_PROTOCOL_H_
#define STTR_EVAL_PROTOCOL_H_

#include <map>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "eval/metrics.h"

namespace sttr {

/// Scoring interface every recommender (ST-TransRec, its variants and all
/// baselines) implements. Higher scores rank earlier.
class PoiScorer {
 public:
  virtual ~PoiScorer() = default;

  /// Preference score of `user` for `poi` in the target city.
  virtual double Score(UserId user, PoiId poi) const = 0;
};

/// Configuration of the paper's §4.1 ranking protocol.
struct EvalConfig {
  /// Cutoffs reported (paper: 2, 4, 6, 8, 10).
  std::vector<size_t> ks = {2, 4, 6, 8, 10};
  /// Unvisited target-city POIs sampled per test user (paper: 100).
  size_t num_negatives = 100;
  uint64_t seed = 7;
};

/// Averaged metrics per cutoff, plus bookkeeping.
struct EvalResult {
  std::map<size_t, RankingMetrics> at_k;
  size_t num_users_evaluated = 0;

  const RankingMetrics& At(size_t k) const;
};

/// Runs the protocol: for each crossing-city test user, samples
/// `num_negatives` target-city POIs the user never visited, pools them with
/// the ground truth, ranks by scorer and averages the metrics over users.
/// Deterministic for a fixed config.seed (scorer permitting).
EvalResult EvaluateRanking(const Dataset& dataset, const CrossCitySplit& split,
                           const PoiScorer& scorer, const EvalConfig& config);

}  // namespace sttr

#endif  // STTR_EVAL_PROTOCOL_H_
