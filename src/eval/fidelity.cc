#include "eval/fidelity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "eval/metrics.h"
#include "util/check.h"

namespace sttr {

namespace {

/// Candidate indices ranked under the canonical order (score desc, POI id
/// asc) — the same order TopKByScore produces, restated here because eval
/// cannot depend on core.
std::vector<size_t> RankAll(const std::vector<PoiId>& pois,
                            const std::vector<double>& scores) {
  std::vector<size_t> order(pois.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return pois[a] < pois[b];
  });
  return order;
}

/// relevance[r] = is the POI ranked at position r a ground-truth hit, for
/// the first `depth` positions.
std::vector<bool> RelevanceTo(const std::vector<size_t>& order,
                              const std::vector<PoiId>& pois,
                              const std::unordered_set<PoiId>& truth,
                              size_t depth) {
  const size_t n = std::min(depth, order.size());
  std::vector<bool> rel(n, false);
  for (size_t r = 0; r < n; ++r) rel[r] = truth.count(pois[order[r]]) > 0;
  return rel;
}

}  // namespace

FidelityReport CompareScorers(const Dataset& dataset,
                              const CrossCitySplit& split,
                              const PoiScorer& ref, const PoiScorer& cand,
                              const FidelityConfig& config) {
  STTR_CHECK(!config.ks.empty()) << "FidelityConfig.ks must not be empty";
  const std::vector<PoiId>& candidates = dataset.PoisInCity(split.target_city);
  const size_t max_k = *std::max_element(config.ks.begin(), config.ks.end());

  FidelityReport report;
  for (size_t k : config.ks) report.at_k[k] = FidelityAtK{};

  double sum_abs_delta = 0.0;
  for (const CrossCitySplit::TestUser& tu : split.test_users) {
    if (config.max_users > 0 && report.num_users >= config.max_users) break;
    if (tu.ground_truth.empty() || candidates.empty()) continue;

    const std::vector<double> ref_scores = ref.ScoreBatch(tu.user, candidates);
    const std::vector<double> cand_scores =
        cand.ScoreBatch(tu.user, candidates);
    STTR_CHECK_EQ(ref_scores.size(), cand_scores.size());
    for (size_t i = 0; i < ref_scores.size(); ++i) {
      const double d = std::fabs(ref_scores[i] - cand_scores[i]);
      sum_abs_delta += d;
      report.max_abs_score_delta = std::max(report.max_abs_score_delta, d);
    }
    report.num_pairs_scored += ref_scores.size();

    const std::vector<size_t> ref_order = RankAll(candidates, ref_scores);
    const std::vector<size_t> cand_order = RankAll(candidates, cand_scores);
    const std::unordered_set<PoiId> truth(tu.ground_truth.begin(),
                                          tu.ground_truth.end());
    const std::vector<bool> ref_rel =
        RelevanceTo(ref_order, candidates, truth, max_k);
    const std::vector<bool> cand_rel =
        RelevanceTo(cand_order, candidates, truth, max_k);

    for (size_t k : config.ks) {
      FidelityAtK& at = report.at_k[k];
      at.hr_ref += HitRateAtK(ref_rel, k);
      at.hr_cand += HitRateAtK(cand_rel, k);
      at.ndcg_ref += NdcgAtK(ref_rel, truth.size(), k);
      at.ndcg_cand += NdcgAtK(cand_rel, truth.size(), k);
      const size_t depth = std::min(k, ref_order.size());
      std::unordered_set<PoiId> ref_top;
      ref_top.reserve(depth);
      for (size_t r = 0; r < depth; ++r) {
        ref_top.insert(candidates[ref_order[r]]);
      }
      size_t hits = 0;
      for (size_t r = 0; r < depth; ++r) {
        if (ref_top.count(candidates[cand_order[r]]) > 0) ++hits;
      }
      if (depth > 0) {
        at.overlap += static_cast<double>(hits) / static_cast<double>(depth);
      }
    }
    ++report.num_users;
  }

  if (report.num_users > 0) {
    const double denom = static_cast<double>(report.num_users);
    for (auto& [k, at] : report.at_k) {
      at.hr_ref /= denom;
      at.hr_cand /= denom;
      at.ndcg_ref /= denom;
      at.ndcg_cand /= denom;
      at.overlap /= denom;
    }
  }
  if (report.num_pairs_scored > 0) {
    report.mean_abs_score_delta =
        sum_abs_delta / static_cast<double>(report.num_pairs_scored);
  }

  report.protocol_ref = EvaluateRanking(dataset, split, ref, config.protocol);
  report.protocol_cand =
      EvaluateRanking(dataset, split, cand, config.protocol);
  return report;
}

std::string FidelityReport::ToString() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "fidelity over %zu users, %zu scored pairs\n"
                "score delta: max=%.3e mean=%.3e\n",
                num_users, num_pairs_scored, max_abs_score_delta,
                mean_abs_score_delta);
  os << buf;
  os << "   k    HR(ref)   HR(cand)   dHR     NDCG(ref) NDCG(cand) dNDCG"
        "    overlap\n";
  for (const auto& [k, at] : at_k) {
    std::snprintf(buf, sizeof(buf),
                  "%4zu   %8.4f   %8.4f  %+7.4f   %8.4f   %8.4f  %+7.4f"
                  "   %7.4f\n",
                  k, at.hr_ref, at.hr_cand, at.hr_delta(), at.ndcg_ref,
                  at.ndcg_cand, at.ndcg_delta(), at.overlap);
    os << buf;
  }
  for (const auto& [k, m] : protocol_ref.at_k) {
    const RankingMetrics& c = protocol_cand.At(k);
    std::snprintf(buf, sizeof(buf),
                  "protocol@%-2zu  recall %.4f -> %.4f   ndcg %.4f -> %.4f\n",
                  k, m.recall, c.recall, m.ndcg, c.ndcg);
    os << buf;
  }
  return os.str();
}

}  // namespace sttr
