#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sttr {

RankingMetrics& RankingMetrics::operator+=(const RankingMetrics& o) {
  recall += o.recall;
  precision += o.precision;
  ndcg += o.ndcg;
  map += o.map;
  return *this;
}

RankingMetrics RankingMetrics::operator/(double denom) const {
  STTR_CHECK_NE(denom, 0.0);
  return {recall / denom, precision / denom, ndcg / denom, map / denom};
}

namespace {
size_t HitsInTopK(const std::vector<bool>& relevance, size_t k) {
  size_t hits = 0;
  for (size_t i = 0; i < k && i < relevance.size(); ++i) {
    hits += relevance[i] ? 1 : 0;
  }
  return hits;
}
}  // namespace

double RecallAtK(const std::vector<bool>& relevance, size_t num_relevant,
                 size_t k) {
  if (num_relevant == 0) return 0.0;
  return static_cast<double>(HitsInTopK(relevance, k)) /
         static_cast<double>(num_relevant);
}

double PrecisionAtK(const std::vector<bool>& relevance, size_t k) {
  STTR_CHECK_GT(k, 0u);
  return static_cast<double>(HitsInTopK(relevance, k)) /
         static_cast<double>(k);
}

double NdcgAtK(const std::vector<bool>& relevance, size_t num_relevant,
               size_t k) {
  if (num_relevant == 0) return 0.0;
  double dcg = 0;
  for (size_t i = 0; i < k && i < relevance.size(); ++i) {
    if (relevance[i]) dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  double idcg = 0;
  const size_t ideal = std::min(num_relevant, k);
  for (size_t i = 0; i < ideal; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0 ? dcg / idcg : 0.0;
}

double ApAtK(const std::vector<bool>& relevance, size_t num_relevant,
             size_t k) {
  if (num_relevant == 0) return 0.0;
  double sum = 0;
  size_t hits = 0;
  for (size_t i = 0; i < k && i < relevance.size(); ++i) {
    if (relevance[i]) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  const size_t denom = std::min(num_relevant, k);
  return denom > 0 ? sum / static_cast<double>(denom) : 0.0;
}

double MrrAtK(const std::vector<bool>& relevance, size_t k) {
  for (size_t i = 0; i < k && i < relevance.size(); ++i) {
    if (relevance[i]) return 1.0 / static_cast<double>(i + 1);
  }
  return 0.0;
}

double HitRateAtK(const std::vector<bool>& relevance, size_t k) {
  return HitsInTopK(relevance, k) > 0 ? 1.0 : 0.0;
}

RankingMetrics MetricsAtK(const std::vector<bool>& relevance,
                          size_t num_relevant, size_t k) {
  return {RecallAtK(relevance, num_relevant, k),
          PrecisionAtK(relevance, k),
          NdcgAtK(relevance, num_relevant, k),
          ApAtK(relevance, num_relevant, k)};
}

}  // namespace sttr
