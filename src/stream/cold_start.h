#ifndef STTR_STREAM_COLD_START_H_
#define STTR_STREAM_COLD_START_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "data/types.h"
#include "tensor/tensor.h"

namespace sttr::stream {

struct ColdStartConfig {
  /// Time-of-day buckets the 24-hour clock is divided into for the
  /// popularity feature (4 = night/morning/afternoon/evening).
  size_t time_buckets = 4;
  /// Weight of the time-of-day popularity term relative to the word-bridge
  /// similarity (which is layer-normalised to comparable scale).
  double time_weight = 0.25;
};

/// Serving-side scorer for users with no history in the request city (the
/// paper's crossing-city cold start). The interaction tower has nothing to
/// say about such a pair beyond the user embedding — which for a
/// target-city-unseen user encodes only source-city behaviour — so this
/// path scores through the transfer bridge directly: the user's word
/// profile (words of POIs they visited anywhere, i.e. source-city history
/// alone) is embedded with the model's word table and matched against each
/// candidate's word profile, plus a time-of-day popularity prior per
/// (POI, bucket) following the spatiotemporal-aware POI representation
/// line. Deterministic, allocation-light, and entirely on learned
/// parameters — a cold user gets real word-bridge recommendations, not a
/// popularity fallback.
class ColdStartScorer {
 public:
  /// Precomputes user word profiles, per-city seen sets, and the
  /// (POI, bucket) popularity table from the dataset's check-ins. The
  /// dataset must outlive the scorer.
  ColdStartScorer(const Dataset& dataset, ColdStartConfig config);

  /// True when `user` has no check-ins in `city` (the cold case).
  bool IsColdIn(UserId user, CityId city) const;

  /// Bucket of an hour-of-day clock value (time is hours; the wall-clock
  /// day is time mod 24). Returns -1 for negative (unknown) times.
  int BucketOf(double time) const;

  /// Scores `candidates` for the cold user: word-bridge similarity through
  /// `word_table` (the serving snapshot's word embeddings) plus the
  /// time-of-day popularity prior when `bucket` >= 0. `out` is resized to
  /// candidates.size(); deterministic for fixed inputs.
  void Score(const Tensor& word_table, UserId user, int bucket,
             std::span<const PoiId> candidates,
             std::vector<double>* out) const;

  const ColdStartConfig& config() const { return config_; }

 private:
  /// Mean word-table row of `words` accumulated into `profile`
  /// (profile must be zeroed, word_table.cols() wide). Returns false when
  /// no word id is in range.
  bool AccumulateProfile(const Tensor& word_table,
                         std::span<const WordId> words,
                         std::vector<float>* profile) const;

  ColdStartConfig config_;
  const Dataset* dataset_;

  /// Per user: sorted city ids with at least one check-in.
  std::vector<std::vector<CityId>> user_cities_;
  /// Per user: sorted unique word ids of every visited POI (the word-bridge
  /// input; built from all of the user's history, which for a target-cold
  /// user is source-city history alone).
  std::vector<std::vector<WordId>> user_words_;
  /// (poi * time_buckets + bucket) -> check-in count, normalised to [0, 1]
  /// per (city, bucket) by the bucket's max count.
  std::unordered_map<uint64_t, double> bucket_pop_;
};

}  // namespace sttr::stream

#endif  // STTR_STREAM_COLD_START_H_
