#ifndef STTR_STREAM_EVENT_LOG_H_
#define STTR_STREAM_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "data/types.h"
#include "util/mutex.h"
#include "util/status.h"

namespace sttr::stream {

/// One streamed check-in, as admitted by the ingest endpoint.
struct CheckinEvent {
  UserId user = -1;
  PoiId poi = -1;
  CityId city = -1;
  /// Event time in hours (the synthetic worlds' global clock); < 0 when the
  /// producer did not supply one. Only the time-of-day bucket is used.
  double time = -1.0;
  /// Admission order, 1-based, assigned by the log.
  uint64_t seq = 0;
};

/// Bounded MPMC event queue between the ingest endpoint and the incremental
/// trainer. Append never blocks — a full log rejects (the HTTP layer turns
/// that into 503, the backpressure signal) — while consumers block in
/// WaitPop until events or Close() arrive. Every admitted event gets a
/// 1-based sequence number, which is what makes "the same event stream"
/// well-defined for the offline-replay bit-identity check.
class EventLog {
 public:
  explicit EventLog(size_t capacity);

  /// Admits `event` and returns its sequence number, or ResourceExhausted
  /// when the log is full / FailedPrecondition after Close().
  StatusOr<uint64_t> Append(CheckinEvent event) EXCLUDES(mu_);

  /// Blocks until at least one event is available (or the log is closed),
  /// then moves up to `max` events into `*out` (appended; the caller clears)
  /// and returns how many. Returns 0 only when closed and drained.
  size_t WaitPop(size_t max, std::vector<CheckinEvent>* out) EXCLUDES(mu_);

  /// Non-blocking WaitPop.
  size_t TryPop(size_t max, std::vector<CheckinEvent>* out) EXCLUDES(mu_);

  /// Marks the log closed: further Appends fail, WaitPop drains what is
  /// left and then returns 0 instead of blocking.
  void Close() EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);
  bool closed() const EXCLUDES(mu_);
  uint64_t total_appended() const EXCLUDES(mu_);

 private:
  size_t PopLocked(size_t max, std::vector<CheckinEvent>* out) REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  CondVar ready_;
  std::deque<CheckinEvent> events_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace sttr::stream

#endif  // STTR_STREAM_EVENT_LOG_H_
