#ifndef STTR_STREAM_INCREMENTAL_TRAINER_H_
#define STTR_STREAM_INCREMENTAL_TRAINER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/delta.h"
#include "core/st_transrec.h"
#include "data/dataset.h"
#include "nn/optimizer.h"
#include "stream/event_log.h"
#include "util/fs.h"
#include "util/rng.h"
#include "util/status.h"

namespace sttr::stream {

struct IncrementalTrainerConfig {
  /// Directory deltas are published into (conventionally
  /// "<checkpoint_dir>/delta"); created on Init.
  std::string delta_dir;
  /// Keep-last-K rotation of published deltas. Because deltas are
  /// cumulative, the newest one alone carries the full patch.
  size_t delta_keep_last = 4;
  /// Seed of the trainer's private RNG stream (negative sampling +
  /// dropout). Part of what "the same event stream" means for the
  /// offline-replay bit-identity guarantee.
  uint64_t seed = 1u << 17;
  /// Filesystem for delta publishing; null means Env::Default(). Tests
  /// inject a FaultInjectionEnv here.
  Env* env = nullptr;
};

/// Online trainer over streamed check-ins: consumes event windows, runs the
/// model's interaction loss (positives = the events, negatives sampled from
/// the event city's POI pool), and steps ONLY the embedding tables — its
/// private Adam owns just the user/POI/word Variables, and the dense MLP
/// gradients are discarded every window. Freezing the tower is what makes
/// the published row-deltas a complete description of the update (and
/// row-level cache invalidation sound): every parameter the stream moves is
/// an embedding row the delta carries.
///
/// Everything is deterministic — single-threaded, one seeded RNG, event
/// order fixed by the log's sequence numbers — so replaying the same events
/// in the same windows through a fresh trainer over the same base checkpoint
/// reproduces the parameters bit-identically. That replay IS the offline
/// retrain of the end-to-end invariant, and the E2E test does exactly it.
class IncrementalTrainer {
 public:
  explicit IncrementalTrainer(IncrementalTrainerConfig config);

  /// Binds the trainer to a Prepare()d model and loads the base
  /// checkpoint's parameters into it. Verifies the base's config
  /// fingerprint against the model, records its epoch and model-section
  /// CRC for delta provenance, and creates the delta directory. The model
  /// and dataset must outlive the trainer.
  Status Init(StTransRec* model, const Dataset& dataset,
              const std::string& base_checkpoint_path);

  /// Trains one window (one optimizer step) on `events`, in order.
  /// Events must reference valid ids (the ingest service validates).
  Status TrainWindow(std::span<const CheckinEvent> events);

  /// Publishes the cumulative delta (every row touched since Init) as the
  /// next delta file and rotates old ones. No-op Status::OK when nothing
  /// was trained since Init.
  Status PublishDelta();

  /// Builds the cumulative delta in memory without writing it (what
  /// PublishDelta would write, minus seq assignment side effects).
  DeltaCheckpoint BuildDelta() const;

  uint64_t events_applied() const { return events_applied_; }
  uint64_t published_seq() const { return published_seq_; }
  size_t dirty_user_rows() const { return dirty_user_.size(); }
  size_t dirty_poi_rows() const { return dirty_poi_.size(); }
  size_t dirty_word_rows() const { return dirty_word_.size(); }
  const std::string& delta_dir() const { return config_.delta_dir; }

 private:
  Env& env() const;

  IncrementalTrainerConfig config_;
  Rng rng_;

  StTransRec* model_ = nullptr;
  const Dataset* dataset_ = nullptr;

  // Base provenance, captured by Init.
  uint64_t base_epoch_ = 0;
  uint32_t base_model_crc_ = 0;
  std::string fingerprint_;

  /// Adam over ONLY the embedding tables (model params 0..2); the dense
  /// tower is frozen. Fresh moments (the offline replay starts from the
  /// same zeros).
  std::unique_ptr<nn::Adam> optimizer_;

  /// Per-user visited POIs (sorted), seeded from the dataset's check-ins
  /// and extended with streamed events, for negative-sample rejection.
  std::vector<std::vector<int64_t>> user_visited_;

  std::unordered_set<int64_t> dirty_user_;
  std::unordered_set<int64_t> dirty_poi_;
  std::unordered_set<int64_t> dirty_word_;

  uint64_t events_applied_ = 0;
  uint64_t published_seq_ = 0;
};

}  // namespace sttr::stream

#endif  // STTR_STREAM_INCREMENTAL_TRAINER_H_
