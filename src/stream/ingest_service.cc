#include "stream/ingest_service.h"

#include <utility>

#include "util/logging.h"

namespace sttr::stream {

IngestService::IngestService(const Dataset& dataset,
                             IncrementalTrainer* trainer, IngestStats* stats,
                             IngestServiceConfig config)
    : dataset_(dataset),
      trainer_(trainer),
      stats_(stats),
      config_(config),
      log_(config.queue_capacity) {
  if (config_.window == 0) config_.window = 1;
  if (config_.publish_every_windows == 0) config_.publish_every_windows = 1;
}

IngestService::~IngestService() { Stop(); }

StatusOr<uint64_t> IngestService::Submit(CheckinEvent event) {
  const auto reject = [this](Status status) -> StatusOr<uint64_t> {
    if (stats_ != nullptr) {
      stats_->checkins_rejected.fetch_add(1, std::memory_order_relaxed);
    }
    return status;
  };
  if (event.user < 0 ||
      static_cast<size_t>(event.user) >= dataset_.num_users()) {
    return reject(Status::InvalidArgument("checkin: unknown user " +
                                          std::to_string(event.user)));
  }
  if (event.poi < 0 || static_cast<size_t>(event.poi) >= dataset_.num_pois()) {
    return reject(Status::InvalidArgument("checkin: unknown poi " +
                                          std::to_string(event.poi)));
  }
  const CityId poi_city = dataset_.poi(event.poi).city;
  if (event.city < 0) {
    event.city = poi_city;
  } else if (event.city != poi_city) {
    return reject(Status::InvalidArgument(
        "checkin: city " + std::to_string(event.city) + " does not match poi " +
        std::to_string(event.poi) + "'s city " + std::to_string(poi_city)));
  }
  StatusOr<uint64_t> seq = log_.Append(event);
  if (!seq.ok()) return reject(seq.status());
  if (stats_ != nullptr) {
    stats_->checkins_accepted.fetch_add(1, std::memory_order_relaxed);
  }
  return seq;
}

void IngestService::TrainAndMaybePublish(
    const std::vector<CheckinEvent>& events, bool force_publish) {
  if (!events.empty()) {
    const Status trained = trainer_->TrainWindow(events);
    if (!trained.ok()) {
      STTR_LOG(Warning) << "ingest: window dropped: " << trained.ToString();
      return;
    }
    ++windows_trained_;
    if (stats_ != nullptr) {
      stats_->events_trained.fetch_add(events.size(),
                                       std::memory_order_relaxed);
    }
  }
  const bool cadence =
      windows_trained_ - windows_published_ >= config_.publish_every_windows;
  if (!cadence && !(force_publish && windows_trained_ > windows_published_)) {
    return;
  }
  const Status published = trainer_->PublishDelta();
  if (published.ok()) {
    windows_published_ = windows_trained_;
    if (stats_ != nullptr) {
      stats_->deltas_published.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Keep training: the next publish attempt carries the same rows again
    // (deltas are cumulative), so a transient IO failure loses freshness,
    // never updates.
    if (stats_ != nullptr) {
      stats_->delta_publish_failures.fetch_add(1, std::memory_order_relaxed);
    }
    STTR_LOG(Warning) << "ingest: delta publish failed: "
                      << published.ToString();
  }
}

void IngestService::TrainerLoop() {
  std::vector<CheckinEvent> window;
  window.reserve(config_.window);
  for (;;) {
    window.clear();
    while (window.size() < config_.window) {
      const size_t got =
          log_.WaitPop(config_.window - window.size(), &window);
      if (got == 0) {
        // Closed and drained: the trailing partial window (the only one in
        // the stream, see IngestServiceConfig::window) plus a final
        // publish, then out.
        TrainAndMaybePublish(window, /*force_publish=*/true);
        return;
      }
    }
    TrainAndMaybePublish(window, /*force_publish=*/false);
  }
}

void IngestService::Start() {
  MutexLock lock(lifecycle_mu_);
  if (running_) return;
  running_ = true;
  loop_ = std::thread([this] { TrainerLoop(); });
}

void IngestService::Stop() {
  log_.Close();
  std::thread to_join;
  {
    MutexLock lock(lifecycle_mu_);
    if (!running_) return;
    running_ = false;
    to_join = std::move(loop_);
  }
  to_join.join();
}

}  // namespace sttr::stream
