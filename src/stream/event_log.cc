#include "stream/event_log.h"

#include <algorithm>

#include "util/check.h"

namespace sttr::stream {

EventLog::EventLog(size_t capacity) : capacity_(capacity) {
  STTR_CHECK_GT(capacity, 0u);
}

StatusOr<uint64_t> EventLog::Append(CheckinEvent event) {
  MutexLock lock(mu_);
  if (closed_) {
    return Status::FailedPrecondition("event log is closed");
  }
  if (events_.size() >= capacity_) {
    return Status::ResourceExhausted("event log full (" +
                                     std::to_string(capacity_) + " events)");
  }
  event.seq = ++next_seq_;
  const uint64_t seq = event.seq;
  events_.push_back(event);
  ready_.NotifyOne();
  return seq;
}

size_t EventLog::PopLocked(size_t max, std::vector<CheckinEvent>* out) {
  const size_t n = std::min(max, events_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(events_.front());
    events_.pop_front();
  }
  return n;
}

size_t EventLog::WaitPop(size_t max, std::vector<CheckinEvent>* out) {
  MutexLock lock(mu_);
  while (events_.empty() && !closed_) ready_.Wait(mu_);
  return PopLocked(max, out);
}

size_t EventLog::TryPop(size_t max, std::vector<CheckinEvent>* out) {
  MutexLock lock(mu_);
  return PopLocked(max, out);
}

void EventLog::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  ready_.NotifyAll();
}

size_t EventLog::size() const {
  MutexLock lock(mu_);
  return events_.size();
}

bool EventLog::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

uint64_t EventLog::total_appended() const {
  MutexLock lock(mu_);
  return next_seq_;
}

}  // namespace sttr::stream
