#include "stream/cold_start.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sttr::stream {

namespace {

/// L2-normalises `v` in place; no-op on a zero vector.
void Normalize(std::vector<float>* v) {
  double norm = 0.0;
  for (float x : *v) norm += static_cast<double>(x) * x;
  if (norm <= 0.0) return;
  const float inv = static_cast<float>(1.0 / std::sqrt(norm));
  for (float& x : *v) x *= inv;
}

}  // namespace

ColdStartScorer::ColdStartScorer(const Dataset& dataset, ColdStartConfig config)
    : config_(config), dataset_(&dataset) {
  STTR_CHECK_GT(config_.time_buckets, 0u);
  user_cities_.assign(dataset.num_users(), {});
  user_words_.assign(dataset.num_users(), {});

  // Raw (poi, bucket) counts, then per-(city, bucket) max for normalising.
  std::unordered_map<uint64_t, double> counts;
  std::unordered_map<uint64_t, double> city_bucket_max;
  for (const CheckinRecord& rec : dataset.checkins()) {
    const auto u = static_cast<size_t>(rec.user);
    user_cities_[u].push_back(rec.city);
    const Poi& poi = dataset.poi(rec.poi);
    user_words_[u].insert(user_words_[u].end(), poi.words.begin(),
                          poi.words.end());
    const int bucket = BucketOf(rec.time);
    if (bucket >= 0) {
      const uint64_t key = static_cast<uint64_t>(rec.poi) * config_.time_buckets +
                           static_cast<uint64_t>(bucket);
      counts[key] += 1.0;
    }
  }
  for (auto& cities : user_cities_) {
    std::sort(cities.begin(), cities.end());
    cities.erase(std::unique(cities.begin(), cities.end()), cities.end());
  }
  for (auto& words : user_words_) {
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
  }
  for (const auto& [key, count] : counts) {
    const PoiId poi = static_cast<PoiId>(key / config_.time_buckets);
    const uint64_t bucket = key % config_.time_buckets;
    const uint64_t ck =
        static_cast<uint64_t>(dataset.poi(poi).city) * config_.time_buckets +
        bucket;
    double& max = city_bucket_max[ck];
    max = std::max(max, count);
  }
  bucket_pop_.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    const PoiId poi = static_cast<PoiId>(key / config_.time_buckets);
    const uint64_t bucket = key % config_.time_buckets;
    const uint64_t ck =
        static_cast<uint64_t>(dataset.poi(poi).city) * config_.time_buckets +
        bucket;
    bucket_pop_[key] = count / city_bucket_max[ck];
  }
}

bool ColdStartScorer::IsColdIn(UserId user, CityId city) const {
  if (user < 0 || static_cast<size_t>(user) >= user_cities_.size()) {
    return false;
  }
  const auto& cities = user_cities_[static_cast<size_t>(user)];
  return !std::binary_search(cities.begin(), cities.end(), city);
}

int ColdStartScorer::BucketOf(double time) const {
  if (time < 0.0) return -1;
  const double hour = std::fmod(time, 24.0);
  const auto bucket = static_cast<size_t>(hour / 24.0 *
                                          static_cast<double>(config_.time_buckets));
  return static_cast<int>(std::min(bucket, config_.time_buckets - 1));
}

bool ColdStartScorer::AccumulateProfile(const Tensor& word_table,
                                        std::span<const WordId> words,
                                        std::vector<float>* profile) const {
  size_t used = 0;
  const size_t dim = word_table.cols();
  for (WordId w : words) {
    if (w < 0 || static_cast<size_t>(w) >= word_table.rows()) continue;
    const float* row = word_table.row(static_cast<size_t>(w));
    for (size_t d = 0; d < dim; ++d) (*profile)[d] += row[d];
    ++used;
  }
  if (used == 0) return false;
  const float inv = 1.0f / static_cast<float>(used);
  for (float& x : *profile) x *= inv;
  return true;
}

void ColdStartScorer::Score(const Tensor& word_table, UserId user, int bucket,
                            std::span<const PoiId> candidates,
                            std::vector<double>* out) const {
  out->assign(candidates.size(), 0.0);
  const size_t dim = word_table.cols();
  std::vector<float> user_profile(dim, 0.0f);
  bool has_profile = false;
  if (user >= 0 && static_cast<size_t>(user) < user_words_.size()) {
    has_profile =
        AccumulateProfile(word_table, user_words_[static_cast<size_t>(user)],
                          &user_profile);
  }
  // Cosine similarity: both profiles normalised, so the word term lands in
  // [-1, 1] and the time_weight mix is scale-stable across models.
  if (has_profile) Normalize(&user_profile);

  std::vector<float> cand_profile(dim, 0.0f);
  for (size_t i = 0; i < candidates.size(); ++i) {
    double score = 0.0;
    if (has_profile) {
      std::fill(cand_profile.begin(), cand_profile.end(), 0.0f);
      if (AccumulateProfile(word_table, dataset_->poi(candidates[i]).words,
                            &cand_profile)) {
        Normalize(&cand_profile);
        double dot = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          dot += static_cast<double>(user_profile[d]) * cand_profile[d];
        }
        score = dot;
      }
    }
    if (bucket >= 0) {
      const uint64_t key =
          static_cast<uint64_t>(candidates[i]) * config_.time_buckets +
          static_cast<uint64_t>(bucket);
      auto it = bucket_pop_.find(key);
      if (it != bucket_pop_.end()) score += config_.time_weight * it->second;
    }
    (*out)[i] = score;
  }
}

}  // namespace sttr::stream
