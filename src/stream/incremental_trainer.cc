#include "stream/incremental_trainer.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/checkpoint.h"
#include "util/check.h"

namespace sttr::stream {

namespace {

bool SortedContains(const std::vector<int64_t>& v, int64_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

void SortedInsert(std::vector<int64_t>& v, int64_t x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

/// Sorted copy of a dirty-row set (deltas keep rows ordered so inspection
/// diffs are stable).
std::vector<int64_t> SortedRows(const std::unordered_set<int64_t>& dirty) {
  std::vector<int64_t> rows(dirty.begin(), dirty.end());
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Copies the named rows out of `table` into a row delta.
EmbeddingRowDelta SnapshotRows(const Tensor& table,
                               std::vector<int64_t> rows) {
  EmbeddingRowDelta d;
  d.dim = table.cols();
  d.rows = std::move(rows);
  d.values.resize(d.rows.size() * d.dim);
  for (size_t i = 0; i < d.rows.size(); ++i) {
    std::memcpy(d.values.data() + i * d.dim,
                table.row(static_cast<size_t>(d.rows[i])),
                d.dim * sizeof(float));
  }
  return d;
}

}  // namespace

IncrementalTrainer::IncrementalTrainer(IncrementalTrainerConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

Env& IncrementalTrainer::env() const {
  return config_.env != nullptr ? *config_.env : *Env::Default();
}

Status IncrementalTrainer::Init(StTransRec* model, const Dataset& dataset,
                                const std::string& base_checkpoint_path) {
  STTR_CHECK(model != nullptr);
  if (!model->prepared()) {
    return Status::FailedPrecondition(
        "IncrementalTrainer::Init: model must be Prepare()d");
  }
  if (config_.delta_dir.empty()) {
    return Status::InvalidArgument(
        "IncrementalTrainer: config.delta_dir is empty");
  }

  StatusOr<CheckpointReader> reader =
      CheckpointReader::Open(env(), base_checkpoint_path);
  if (!reader.ok()) return reader.status();
  if (reader->version() != kCheckpointFormatVersion) {
    return Status::FailedPrecondition(
        "IncrementalTrainer: base " + base_checkpoint_path +
        " is not a v1 training checkpoint (version " +
        std::to_string(reader->version()) + ")");
  }
  StatusOr<std::string> fingerprint = reader->Section("config");
  if (!fingerprint.ok()) return fingerprint.status();
  if (*fingerprint != model->ConfigFingerprint()) {
    return Status::FailedPrecondition(
        "IncrementalTrainer: base checkpoint was written under a different "
        "config or dataset (base '" +
        *fingerprint + "' vs model '" + model->ConfigFingerprint() + "')");
  }
  // The section CRC binds every published delta to these exact bytes.
  uint32_t model_crc = 0;
  for (const CheckpointSection& s : reader->sections()) {
    if (s.name == "model") model_crc = s.crc;
  }
  StatusOr<std::string> params = reader->Section("model");
  if (!params.ok()) return params.status();
  {
    std::istringstream in(*params, std::ios::binary);
    STTR_RETURN_IF_ERROR(model->Load(in));
  }
  uint64_t epoch = 0;
  StatusOr<std::string> meta = reader->Section("meta");
  if (meta.ok()) {
    std::string_view in(*meta);
    ReadU64(in, &epoch);
  }

  STTR_RETURN_IF_ERROR(env().CreateDir(config_.delta_dir));

  model_ = model;
  dataset_ = &dataset;
  base_epoch_ = epoch;
  base_model_crc_ = model_crc;
  fingerprint_ = *std::move(fingerprint);

  std::vector<ag::Variable> all = model_->Parameters();
  std::vector<ag::Variable> embeddings(
      all.begin(),
      all.begin() + static_cast<long>(model_->NumEmbeddingParameters()));
  optimizer_ = std::make_unique<nn::Adam>(std::move(embeddings),
                                          model_->config().learning_rate);

  user_visited_.assign(dataset.num_users(), {});
  for (const CheckinRecord& rec : dataset.checkins()) {
    user_visited_[static_cast<size_t>(rec.user)].push_back(rec.poi);
  }
  for (auto& v : user_visited_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  dirty_user_.clear();
  dirty_poi_.clear();
  dirty_word_.clear();
  events_applied_ = 0;
  published_seq_ = 0;
  return Status::OK();
}

Status IncrementalTrainer::TrainWindow(std::span<const CheckinEvent> events) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("IncrementalTrainer: Init() not called");
  }
  if (events.empty()) return Status::OK();

  const size_t negatives = model_->config().negatives_per_positive;
  TrainingBatch batch;
  const size_t rows = events.size() * (1 + negatives);
  batch.users.reserve(rows);
  batch.pois.reserve(rows);
  std::vector<float> labels;
  labels.reserve(rows);
  for (const CheckinEvent& e : events) {
    const auto& pool = dataset_->PoisInCity(e.city);
    if (pool.empty()) {
      return Status::InvalidArgument("TrainWindow: city " +
                                     std::to_string(e.city) + " has no POIs");
    }
    batch.users.push_back(e.user);
    batch.pois.push_back(e.poi);
    labels.push_back(1.0f);
    auto& visited = user_visited_[static_cast<size_t>(e.user)];
    for (size_t k = 0; k < negatives; ++k) {
      // Same rejection scheme as StTransRec::SampleBatch: up to 8 re-draws
      // to dodge the user's visited set, then give up (tiny city pools).
      int64_t neg = static_cast<int64_t>(pool[rng_.UniformInt(pool.size())]);
      for (int tries = 0; tries < 8 && SortedContains(visited, neg);
           ++tries) {
        neg = static_cast<int64_t>(pool[rng_.UniformInt(pool.size())]);
      }
      batch.users.push_back(e.user);
      batch.pois.push_back(neg);
      labels.push_back(0.0f);
    }
    // The event is now history: later negative draws must not sample it.
    SortedInsert(visited, e.poi);
  }
  const size_t n_labels = labels.size();
  batch.labels = Tensor({n_labels}, std::move(labels));

  // Interaction term only (sg_/mmd_/geo_ vectors stay empty, so
  // ComputeGradients skips those losses — and the word table, which keeps
  // serving the frozen word bridge).
  model_->ComputeGradients(batch, rng_);

  // Touched rows must be harvested before Step(): the optimizer consumes
  // and clears them via ZeroGradSparse.
  std::vector<ag::Variable> params = model_->Parameters();
  std::unordered_set<int64_t>* dirty[3] = {&dirty_user_, &dirty_poi_,
                                           &dirty_word_};
  for (size_t t = 0; t < model_->NumEmbeddingParameters(); ++t) {
    for (int64_t row : params[t].touched_rows()) dirty[t]->insert(row);
  }
  optimizer_->Step();
  // The tower is frozen: its accumulated gradients are dropped, not
  // applied, so no dense parameter ever drifts from the base (which is
  // what makes row-level cache invalidation sound).
  for (size_t i = model_->NumEmbeddingParameters(); i < params.size(); ++i) {
    params[i].ZeroGrad();
  }

  events_applied_ += events.size();
  return Status::OK();
}

DeltaCheckpoint IncrementalTrainer::BuildDelta() const {
  STTR_CHECK(model_ != nullptr) << "Init() not called";
  std::vector<ag::Variable> params = model_->Parameters();
  DeltaCheckpoint delta;
  delta.base_epoch = base_epoch_;
  delta.base_model_crc = base_model_crc_;
  delta.seq = published_seq_ + 1;
  delta.events_applied = events_applied_;
  delta.config_fingerprint = fingerprint_;
  delta.user = SnapshotRows(params[0].value(), SortedRows(dirty_user_));
  delta.poi = SnapshotRows(params[1].value(), SortedRows(dirty_poi_));
  delta.word = SnapshotRows(params[2].value(), SortedRows(dirty_word_));
  return delta;
}

Status IncrementalTrainer::PublishDelta() {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("IncrementalTrainer: Init() not called");
  }
  if (events_applied_ == 0) return Status::OK();
  const DeltaCheckpoint delta = BuildDelta();
  const std::string path =
      config_.delta_dir + "/" + DeltaFileName(delta.seq);
  STTR_RETURN_IF_ERROR(WriteDeltaCheckpoint(env(), path, delta));
  published_seq_ = delta.seq;
  return RotateDeltas(env(), config_.delta_dir,
                      std::max<size_t>(1, config_.delta_keep_last));
}

}  // namespace sttr::stream
