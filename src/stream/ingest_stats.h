#ifndef STTR_STREAM_INGEST_STATS_H_
#define STTR_STREAM_INGEST_STATS_H_

#include <atomic>
#include <cstdint>

namespace sttr::stream {

/// Counters of the streaming ingest pipeline (event log → incremental
/// trainer → delta publisher). All relaxed atomics, same snapshot semantics
/// as serve::ServeStats, which embeds one of these so /statz can surface
/// them; stream code never depends on serve.
struct IngestStats {
  std::atomic<uint64_t> checkins_accepted{0};  ///< events admitted to the log
  std::atomic<uint64_t> checkins_rejected{0};  ///< log full or invalid ids
  std::atomic<uint64_t> events_trained{0};     ///< events consumed by windows
  std::atomic<uint64_t> deltas_published{0};   ///< delta files written
  std::atomic<uint64_t> delta_publish_failures{0};
};

}  // namespace sttr::stream

#endif  // STTR_STREAM_INGEST_STATS_H_
