#ifndef STTR_STREAM_INGEST_SERVICE_H_
#define STTR_STREAM_INGEST_SERVICE_H_

#include <cstdint>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "stream/event_log.h"
#include "stream/incremental_trainer.h"
#include "stream/ingest_stats.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sttr::stream {

struct IngestServiceConfig {
  /// Event-log capacity; a full log rejects Submits (HTTP 503 upstream).
  size_t queue_capacity = 4096;
  /// Events per training window (one optimizer step). The background loop
  /// trains only FULL windows — a trailing partial window is trained once,
  /// at Stop() — so the window boundaries are a pure function of the event
  /// count, which is what lets an offline replay chunk the same stream
  /// identically (the bit-identity guarantee).
  size_t window = 32;
  /// Publish a delta after this many trained windows (and once more at
  /// Stop() when anything is unpublished).
  size_t publish_every_windows = 1;
};

/// Glue of the streaming path: validates and enqueues check-ins from the
/// HTTP layer (Submit, any thread) and runs the incremental trainer over
/// them on one background thread, publishing deltas on its cadence. The
/// trainer itself is single-threaded and owned by the caller so tests can
/// drive it synchronously instead of through Start().
class IngestService {
 public:
  /// `trainer` must be Init()ed; dataset/trainer/stats must outlive the
  /// service. `stats` may be null.
  IngestService(const Dataset& dataset, IncrementalTrainer* trainer,
                IngestStats* stats, IngestServiceConfig config);
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Validates the event against the dataset's id spaces (a negative city
  /// is filled in from the POI; a stated city must match it) and enqueues.
  /// Returns the admission sequence number; InvalidArgument for bad ids,
  /// ResourceExhausted when the log is full — both counted.
  StatusOr<uint64_t> Submit(CheckinEvent event);

  /// Spawns the trainer loop. No-op if already running.
  void Start() EXCLUDES(lifecycle_mu_);

  /// Closes the log, waits for the loop to train the remainder (including
  /// one final partial window) and publish a last delta, then joins.
  /// Without Start(), just closes the log.
  void Stop() EXCLUDES(lifecycle_mu_);

  /// Queued (not yet trained) events.
  size_t pending() const { return log_.size(); }

  EventLog& log() { return log_; }
  const IncrementalTrainer& trainer() const { return *trainer_; }

 private:
  void TrainerLoop();
  /// Trains `events` and publishes on cadence; failures are counted and
  /// logged, never fatal to the loop (serving continues from the last
  /// good delta).
  void TrainAndMaybePublish(const std::vector<CheckinEvent>& events,
                            bool force_publish);

  const Dataset& dataset_;
  IncrementalTrainer* trainer_;
  IngestStats* stats_;
  IngestServiceConfig config_;
  EventLog log_;

  uint64_t windows_trained_ = 0;  ///< trainer-loop thread only
  uint64_t windows_published_ = 0;

  Mutex lifecycle_mu_;
  bool running_ GUARDED_BY(lifecycle_mu_) = false;
  std::thread loop_ GUARDED_BY(lifecycle_mu_);
};

}  // namespace sttr::stream

#endif  // STTR_STREAM_INGEST_SERVICE_H_
