#ifndef STTR_BASELINES_CTLM_H_
#define STTR_BASELINES_CTLM_H_

#include <string>
#include <vector>

#include "core/recommender.h"

namespace sttr::baselines {

/// CTLM (Li et al., "A common topic transfer learning model for crossing
/// city POI recommendations"): a cross-collection topic model that separates
/// *common* topics from *city-specific* ones so users' interests transfer
/// through the common part. Each token draws a topic z from the user's
/// distribution and a switch x deciding whether the word comes from the
/// common word distribution phi0_z or the city-specific phi_z^c (collapsed
/// Beta prior on the switch). Scoring a target POI mixes the common and
/// target-specific word distributions under the user's source-learned
/// topics — the transfer mechanism of the original.
class Ctlm : public Recommender {
 public:
  Ctlm(size_t num_topics = 16, size_t gibbs_iterations = 120,
       double alpha = 0.5, double beta = 0.05, double gamma = 1.0,
       double personal_weight = 0.7, uint64_t seed = 19);

  Status Fit(const Dataset& dataset, const CrossCitySplit& split) override;
  double Score(UserId user, PoiId poi) const override;
  std::string name() const override { return "CTLM"; }

  /// P(common | topic, city) after Fit(); exposed for tests (city-dependent
  /// landmark words should gravitate to the specific distributions).
  double CommonProbability(size_t topic, CityId city) const;

  /// phi0_t(w), the common word distribution.
  const std::vector<std::vector<double>>& common_phi() const { return phi0_; }

  /// theta_u(t) after Fit().
  const std::vector<std::vector<double>>& user_topics() const {
    return theta_;
  }

  /// Target-city crowd topic distribution after Fit().
  const std::vector<double>& crowd() const { return crowd_; }

  /// City-specific word distributions phi_spec[city][topic][word].
  const std::vector<std::vector<std::vector<double>>>& specific_phi() const {
    return phi_spec_;
  }

 private:
  size_t num_topics_;
  size_t iterations_;
  double alpha_;
  double beta_;
  double gamma_;  // Beta prior of the common/specific switch
  double personal_weight_;
  uint64_t seed_;

  const Dataset* dataset_ = nullptr;
  CityId target_city_ = -1;
  std::vector<std::vector<double>> theta_;  // users x K
  std::vector<std::vector<double>> phi0_;   // K x W, common
  /// phi_spec_[c][z][w], per-city specific distributions.
  std::vector<std::vector<std::vector<double>>> phi_spec_;
  /// p_common_[c][z].
  std::vector<std::vector<double>> p_common_;
  std::vector<double> crowd_;  // target-city crowd topic preferences
  bool fitted_ = false;
};

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_CTLM_H_
