#ifndef STTR_BASELINES_LCE_H_
#define STTR_BASELINES_LCE_H_

#include <string>

#include "core/recommender.h"
#include "tensor/tensor.h"

namespace sttr::baselines {

/// LCE (Saveski & Mantrach, "Item cold-start recommendations: learning
/// local collective embeddings"): joint non-negative factorisation of the
/// user-POI interaction matrix A ~= U V^T and the POI-word content matrix
/// B ~= V H^T with *shared* POI factors V, solved with Lee-Seung
/// multiplicative updates. Cold (target-city) POIs obtain factors through
/// their content, which is what makes the method applicable across cities.
/// (The original's manifold/locality regulariser is omitted; DESIGN.md
/// records the simplification.)
class Lce : public Recommender {
 public:
  /// `rank` latent dimensions, `iterations` multiplicative update rounds,
  /// `content_weight` is beta on the content reconstruction term.
  Lce(size_t rank = 32, size_t iterations = 40, double content_weight = 1.0,
      uint64_t seed = 11);

  Status Fit(const Dataset& dataset, const CrossCitySplit& split) override;
  double Score(UserId user, PoiId poi) const override;
  std::string name() const override { return "LCE"; }

  /// Frobenius reconstruction error history (one entry per iteration).
  const std::vector<double>& loss_history() const { return loss_history_; }

 private:
  size_t rank_;
  size_t iterations_;
  double content_weight_;
  uint64_t seed_;
  Tensor u_;  // users x k
  Tensor v_;  // pois x k
  std::vector<double> loss_history_;
  bool fitted_ = false;
};

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_LCE_H_
