#ifndef STTR_BASELINES_REGISTRY_H_
#define STTR_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/st_transrec.h"

namespace sttr::baselines {

/// Builds a recommender by its paper name. Recognised names:
/// "ItemPop", "LCE", "CRCF", "PR-UIDT", "ST-LDA", "CTLM", "SH-CDL", "PACE",
/// "ST-TransRec", "ST-TransRec-1", "ST-TransRec-2", "ST-TransRec-3".
/// `deep_config` parameterises the deep models (ST-TransRec family, PACE;
/// SH-CDL derives its sizes from it). Returns NotFound for unknown names.
StatusOr<std::unique_ptr<Recommender>> MakeRecommender(
    const std::string& name, const StTransRecConfig& deep_config = {});

/// The Figure 3/4 method roster, in the paper's order.
std::vector<std::string> ComparisonMethodNames();

/// The Figure 5/6 ablation roster.
std::vector<std::string> AblationMethodNames();

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_REGISTRY_H_
