#ifndef STTR_BASELINES_PR_UIDT_H_
#define STTR_BASELINES_PR_UIDT_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "tensor/tensor.h"

namespace sttr::baselines {

/// PR-UIDT (Ding et al., "Learning from hometown and current city:
/// cross-city POI recommendation via interest drift and transfer learning"):
/// matrix factorisation where a POI's latent factor is tied to its content,
///
///   q_v = mean_{w in W_v} e_w + d_v,
///
/// with shared word factors e_w carrying the *transferable* interest and a
/// free per-POI deviation d_v modelling the local *drift*. Trained with
/// logistic loss and uniform negatives. Following the paper's adaptation
/// ("this model makes users' preferences learned from the source city
/// directly match POIs in the target city"), scoring uses p_u . q_v with no
/// crossing-city alignment step.
class PrUidt : public Recommender {
 public:
  PrUidt(size_t rank = 32, size_t epochs = 8, float learning_rate = 0.05f,
         float l2 = 1e-4f, size_t negatives = 4, uint64_t seed = 13);

  Status Fit(const Dataset& dataset, const CrossCitySplit& split) override;
  double Score(UserId user, PoiId poi) const override;
  std::string name() const override { return "PR-UIDT"; }

 private:
  size_t rank_;
  size_t epochs_;
  float lr_;
  float l2_;
  size_t negatives_;
  uint64_t seed_;

  const Dataset* dataset_ = nullptr;
  Tensor users_;       // num_users x k
  Tensor words_;       // num_words x k
  Tensor deviations_;  // num_pois x k
  bool fitted_ = false;

  void PoiFactor(PoiId poi, float* out) const;
};

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_PR_UIDT_H_
