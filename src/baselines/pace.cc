#include "baselines/pace.h"

namespace sttr::baselines {

StTransRecConfig Pace::MakeConfig(StTransRecConfig base) {
  base.use_mmd = false;
  base.resample_alpha = 0.0;
  base.use_text = true;
  base.use_geo_context = true;
  return base;
}

Pace::Pace(StTransRecConfig base) : inner_(MakeConfig(std::move(base))) {}

Status Pace::Fit(const Dataset& dataset, const CrossCitySplit& split) {
  return inner_.Fit(dataset, split);
}

double Pace::Score(UserId user, PoiId poi) const {
  return inner_.Score(user, poi);
}

}  // namespace sttr::baselines
