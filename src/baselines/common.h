#ifndef STTR_BASELINES_COMMON_H_
#define STTR_BASELINES_COMMON_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"

namespace sttr::baselines {

/// Training-side views shared by several baselines.
struct TrainView {
  /// (user, poi) training interactions, with multiplicity.
  std::vector<std::pair<UserId, PoiId>> positives;
  /// Distinct POIs each user visited in training.
  std::vector<std::vector<PoiId>> user_pois;
  /// Train check-in count per POI.
  std::vector<size_t> poi_popularity;
  /// POIs per city.
  std::vector<std::vector<PoiId>> city_pois;
};

/// Extracts the view from a split.
TrainView MakeTrainView(const Dataset& dataset, const CrossCitySplit& split);

/// One token of a user document for the topic-model baselines: a word from
/// the description of a POI the user checked into, tagged with the POI's
/// city (cross-collection models condition on it).
struct DocToken {
  WordId word = -1;
  CityId city = -1;
};

/// Builds the per-user documents from training check-ins: every check-in
/// contributes all words of its POI (with multiplicity).
std::vector<std::vector<DocToken>> BuildUserDocuments(
    const Dataset& dataset, const CrossCitySplit& split);

/// Sparse TF-IDF vectors over the vocabulary.
class TfIdfModel {
 public:
  /// Document frequency computed over POIs' word lists.
  TfIdfModel(const Dataset& dataset);

  /// TF-IDF vector of one POI (word -> weight), L2-normalised.
  const std::unordered_map<WordId, double>& PoiVector(PoiId poi) const;

  /// L2-normalised TF-IDF profile of a user: the word counts of all their
  /// training POIs.
  std::unordered_map<WordId, double> UserProfile(
      const std::vector<PoiId>& visited) const;

  /// Cosine similarity of two sparse vectors.
  static double Cosine(const std::unordered_map<WordId, double>& a,
                       const std::unordered_map<WordId, double>& b);

 private:
  std::vector<double> idf_;
  std::vector<std::unordered_map<WordId, double>> poi_vectors_;
  const Dataset* dataset_;
};

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_COMMON_H_
