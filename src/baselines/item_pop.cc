#include "baselines/item_pop.h"

#include "util/check.h"

namespace sttr::baselines {

Status ItemPop::Fit(const Dataset& dataset, const CrossCitySplit& split) {
  popularity_.assign(dataset.num_pois(), 0);
  for (size_t idx : split.train) {
    popularity_[static_cast<size_t>(dataset.checkins()[idx].poi)] += 1;
  }
  return Status::OK();
}

double ItemPop::Score(UserId /*user*/, PoiId poi) const {
  STTR_CHECK(!popularity_.empty()) << "Score() before Fit()";
  STTR_CHECK_GE(poi, 0);
  STTR_CHECK_LT(static_cast<size_t>(poi), popularity_.size());
  return static_cast<double>(popularity_[static_cast<size_t>(poi)]);
}

}  // namespace sttr::baselines
