#include "baselines/crcf.h"

#include <algorithm>
#include <cmath>

#include "geo/geo.h"
#include "util/check.h"

namespace sttr::baselines {

Crcf::Crcf(double content_weight) : content_weight_(content_weight) {
  STTR_CHECK_GE(content_weight, 0.0);
  STTR_CHECK_LE(content_weight, 1.0);
}

Status Crcf::Fit(const Dataset& dataset, const CrossCitySplit& split) {
  const TrainView view = MakeTrainView(dataset, split);
  tfidf_ = std::make_unique<TfIdfModel>(dataset);

  user_profiles_.resize(dataset.num_users());
  for (UserId u = 0; u < static_cast<UserId>(dataset.num_users()); ++u) {
    user_profiles_[static_cast<size_t>(u)] =
        tfidf_->UserProfile(view.user_pois[static_cast<size_t>(u)]);
  }

  // Location preference per user, learned only from the user's own
  // check-ins in the candidate's city: a POI scores by its proximity to
  // the user's activity centroid there. Crossing-city test users have no
  // target-city training check-ins, so their map stays empty (flat score).
  user_location_score_.assign(dataset.num_users(), {});
  std::vector<std::vector<PoiId>> user_target_pois(dataset.num_users());
  for (size_t idx : split.train) {
    const CheckinRecord& rec = dataset.checkins()[idx];
    if (rec.city == split.target_city) {
      user_target_pois[static_cast<size_t>(rec.user)].push_back(rec.poi);
    }
  }
  for (UserId u = 0; u < static_cast<UserId>(dataset.num_users()); ++u) {
    const auto& mine = user_target_pois[static_cast<size_t>(u)];
    if (mine.empty()) continue;
    GeoPoint centroid{0, 0};
    for (PoiId v : mine) {
      centroid.lat += dataset.poi(v).location.lat;
      centroid.lon += dataset.poi(v).location.lon;
    }
    centroid.lat /= static_cast<double>(mine.size());
    centroid.lon /= static_cast<double>(mine.size());
    auto& scores = user_location_score_[static_cast<size_t>(u)];
    for (PoiId v : dataset.PoisInCity(split.target_city)) {
      const double km = HaversineKm(centroid, dataset.poi(v).location);
      scores[v] = std::exp(-km / 5.0);  // ~5 km activity radius
    }
  }
  fitted_ = true;
  return Status::OK();
}

double Crcf::Score(UserId user, PoiId poi) const {
  STTR_CHECK(fitted_) << "Score() before Fit()";
  const double content = TfIdfModel::Cosine(
      user_profiles_[static_cast<size_t>(user)], tfidf_->PoiVector(poi));
  const auto& loc = user_location_score_[static_cast<size_t>(user)];
  const auto it = loc.find(poi);
  // Unknown location in the new city -> uninformative 0.5.
  const double location = it == loc.end() ? 0.5 : it->second;
  return content_weight_ * content + (1.0 - content_weight_) * location;
}

}  // namespace sttr::baselines
