#include "baselines/registry.h"

#include "baselines/crcf.h"
#include "baselines/ctlm.h"
#include "baselines/item_pop.h"
#include "baselines/lce.h"
#include "baselines/pace.h"
#include "baselines/pr_uidt.h"
#include "baselines/sh_cdl.h"
#include "baselines/st_lda.h"

namespace sttr::baselines {

StatusOr<std::unique_ptr<Recommender>> MakeRecommender(
    const std::string& name, const StTransRecConfig& deep_config) {
  if (name == "ItemPop") {
    return std::unique_ptr<Recommender>(new ItemPop());
  }
  if (name == "LCE") {
    return std::unique_ptr<Recommender>(new Lce());
  }
  if (name == "CRCF") {
    return std::unique_ptr<Recommender>(new Crcf());
  }
  if (name == "PR-UIDT") {
    return std::unique_ptr<Recommender>(new PrUidt());
  }
  if (name == "ST-LDA") {
    return std::unique_ptr<Recommender>(new StLda());
  }
  if (name == "CTLM") {
    return std::unique_ptr<Recommender>(new Ctlm());
  }
  if (name == "SH-CDL") {
    // The paper gives SH-CDL the same sizes as ST-TransRec.
    ShCdl::Config cfg;
    cfg.representation_dim = deep_config.embedding_dim / 2;
    cfg.seed = deep_config.seed;
    return std::unique_ptr<Recommender>(new ShCdl(cfg));
  }
  if (name == "PACE") {
    return std::unique_ptr<Recommender>(new Pace(deep_config));
  }
  if (name == "ST-TransRec") {
    return std::unique_ptr<Recommender>(new StTransRec(deep_config));
  }
  if (name == "ST-TransRec-1") {
    return std::unique_ptr<Recommender>(
        new StTransRec(MakeVariant1(deep_config)));
  }
  if (name == "ST-TransRec-2") {
    return std::unique_ptr<Recommender>(
        new StTransRec(MakeVariant2(deep_config)));
  }
  if (name == "ST-TransRec-3") {
    return std::unique_ptr<Recommender>(
        new StTransRec(MakeVariant3(deep_config)));
  }
  return Status::NotFound("unknown recommender: " + name);
}

std::vector<std::string> ComparisonMethodNames() {
  return {"ItemPop", "LCE",    "CRCF",   "PR-UIDT",    "ST-LDA",
          "CTLM",    "SH-CDL", "PACE",   "ST-TransRec"};
}

std::vector<std::string> AblationMethodNames() {
  return {"ST-TransRec", "ST-TransRec-1", "ST-TransRec-2", "ST-TransRec-3"};
}

}  // namespace sttr::baselines
