#include "baselines/sh_cdl.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "baselines/common.h"
#include "geo/grid.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace sttr::baselines {

ShCdl::ShCdl() : ShCdl(Config{}) {}

ShCdl::ShCdl(Config config) : config_(config) {
  STTR_CHECK_GT(config_.representation_dim, 0u);
}

Status ShCdl::Fit(const Dataset& dataset, const CrossCitySplit& split) {
  const TrainView view = MakeTrainView(dataset, split);
  if (view.positives.empty()) {
    return Status::InvalidArgument("empty training split");
  }
  Rng rng(config_.seed);
  const size_t num_pois = dataset.num_pois();
  const size_t num_words = dataset.vocabulary().size();
  const size_t dim = config_.representation_dim;

  // ---- Stage 1: denoising autoencoder over POI bag-of-words. -----------------
  Tensor bow({num_pois, num_words});
  for (const Poi& p : dataset.pois()) {
    float* row = bow.row(static_cast<size_t>(p.id));
    for (WordId w : p.words) row[static_cast<size_t>(w)] += 1.0f;
    double norm = 0;
    for (size_t j = 0; j < num_words; ++j) norm += row[j] * row[j];
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (size_t j = 0; j < num_words; ++j) {
        row[j] /= static_cast<float>(norm);
      }
    }
  }

  nn::Linear enc1(num_words, config_.dae_hidden, rng);
  nn::Linear enc2(config_.dae_hidden, dim, rng);
  nn::Linear dec1(dim, config_.dae_hidden, rng);
  nn::Linear dec2(config_.dae_hidden, num_words, rng);
  std::vector<ag::Variable> params;
  for (auto* layer : {&enc1, &enc2, &dec1, &dec2}) {
    for (auto& p : layer->Parameters()) params.push_back(p);
  }
  nn::Adam adam(params, config_.dae_learning_rate);

  std::vector<size_t> order(num_pois);
  for (size_t i = 0; i < num_pois; ++i) order[i] = i;
  auto encode = [&](const ag::Variable& x) {
    return ag::TanhOp(enc2.Forward(ag::Relu(enc1.Forward(x))));
  };
  for (size_t epoch = 0; epoch < config_.dae_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < num_pois; start += config_.dae_batch) {
      const size_t end = std::min(num_pois, start + config_.dae_batch);
      Tensor clean({end - start, num_words});
      Tensor corrupted({end - start, num_words});
      for (size_t i = start; i < end; ++i) {
        const float* src = bow.row(order[i]);
        float* dst_clean = clean.row(i - start);
        float* dst_cor = corrupted.row(i - start);
        for (size_t j = 0; j < num_words; ++j) {
          dst_clean[j] = src[j];
          dst_cor[j] =
              rng.Bernoulli(config_.dae_corruption) ? 0.0f : src[j];
        }
      }
      ag::Variable x = ag::Constant(std::move(corrupted));
      ag::Variable recon = dec2.Forward(ag::Relu(dec1.Forward(encode(x))));
      ag::Variable diff = ag::Sub(recon, ag::Constant(std::move(clean)));
      ag::Variable loss = ag::Mean(ag::Mul(diff, diff));
      ag::Backward(loss);
      adam.Step();
    }
  }

  // Freeze representations: encoder output on clean inputs.
  {
    ag::Variable x = ag::Constant(bow);
    representations_ = encode(x).value();
  }

  // ---- Spatial prior: log-scaled popularity of the POI's grid cell. ----------
  std::vector<std::unique_ptr<GridIndex>> grids;
  std::vector<std::vector<double>> cell_pop(dataset.num_cities());
  for (size_t c = 0; c < dataset.num_cities(); ++c) {
    grids.push_back(std::make_unique<GridIndex>(
        dataset.city(static_cast<CityId>(c)).box, config_.grid_rows,
        config_.grid_cols));
    cell_pop[c].assign(grids[c]->NumCells(), 0.0);
  }
  for (size_t idx : split.train) {
    const CheckinRecord& rec = dataset.checkins()[idx];
    const size_t c = static_cast<size_t>(rec.city);
    cell_pop[c][grids[c]->CellOf(dataset.poi(rec.poi).location)] += 1.0;
  }
  spatial_prior_.assign(num_pois, 0.0);
  for (const Poi& p : dataset.pois()) {
    const size_t c = static_cast<size_t>(p.city);
    spatial_prior_[static_cast<size_t>(p.id)] =
        config_.spatial_weight *
        std::log1p(cell_pop[c][grids[c]->CellOf(p.location)]);
  }

  // ---- Stage 2: logistic MF against the frozen deep representations. --------
  user_factors_ =
      Tensor::RandomNormal({dataset.num_users(), dim}, rng, 0, 0.1f);
  poi_bias_.assign(num_pois, 0.0f);
  const float lr = config_.mf_learning_rate;
  auto sgd = [&](UserId u, PoiId v, float label) {
    float* pu = user_factors_.row(static_cast<size_t>(u));
    const float* rv = representations_.row(static_cast<size_t>(v));
    double s = poi_bias_[static_cast<size_t>(v)] +
               spatial_prior_[static_cast<size_t>(v)];
    for (size_t j = 0; j < dim; ++j) s += static_cast<double>(pu[j]) * rv[j];
    const float g = label - SigmoidScalar(static_cast<float>(s));
    poi_bias_[static_cast<size_t>(v)] += lr * g;
    for (size_t j = 0; j < dim; ++j) pu[j] += lr * g * rv[j];
  };
  for (size_t epoch = 0; epoch < config_.mf_epochs; ++epoch) {
    for (size_t n = 0; n < view.positives.size(); ++n) {
      const auto& [u, v] =
          view.positives[rng.UniformInt(view.positives.size())];
      sgd(u, v, 1.0f);
      const auto& pool =
          view.city_pois[static_cast<size_t>(dataset.poi(v).city)];
      for (size_t k = 0; k < config_.negatives; ++k) {
        sgd(u, static_cast<PoiId>(pool[rng.UniformInt(pool.size())]), 0.0f);
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

double ShCdl::Score(UserId user, PoiId poi) const {
  STTR_CHECK(fitted_) << "Score() before Fit()";
  const float* pu = user_factors_.row(static_cast<size_t>(user));
  const float* rv = representations_.row(static_cast<size_t>(poi));
  double s = poi_bias_[static_cast<size_t>(poi)] +
             spatial_prior_[static_cast<size_t>(poi)];
  for (size_t j = 0; j < config_.representation_dim; ++j) {
    s += static_cast<double>(pu[j]) * rv[j];
  }
  return SigmoidScalar(static_cast<float>(s));
}

std::vector<float> ShCdl::PoiRepresentation(PoiId poi) const {
  STTR_CHECK(fitted_);
  const float* row = representations_.row(static_cast<size_t>(poi));
  return std::vector<float>(row, row + representations_.cols());
}

}  // namespace sttr::baselines
