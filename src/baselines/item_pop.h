#ifndef STTR_BASELINES_ITEM_POP_H_
#define STTR_BASELINES_ITEM_POP_H_

#include <string>
#include <vector>

#include "core/recommender.h"

namespace sttr::baselines {

/// Popularity baseline: ranks POIs by their number of training check-ins
/// (the paper's "ItemPop"). No personalisation at all.
class ItemPop : public Recommender {
 public:
  Status Fit(const Dataset& dataset, const CrossCitySplit& split) override;
  double Score(UserId user, PoiId poi) const override;
  std::string name() const override { return "ItemPop"; }

 private:
  std::vector<size_t> popularity_;
};

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_ITEM_POP_H_
