#include "baselines/st_lda.h"

#include <cmath>

#include "baselines/common.h"
#include "util/check.h"
#include "util/rng.h"

namespace sttr::baselines {

StLda::StLda(size_t num_topics, size_t gibbs_iterations, double alpha,
             double beta, double personal_weight, uint64_t seed)
    : num_topics_(num_topics),
      iterations_(gibbs_iterations),
      alpha_(alpha),
      beta_(beta),
      personal_weight_(personal_weight),
      seed_(seed) {
  STTR_CHECK_GT(num_topics, 0u);
  STTR_CHECK_GE(personal_weight, 0.0);
  STTR_CHECK_LE(personal_weight, 1.0);
}

Status StLda::Fit(const Dataset& dataset, const CrossCitySplit& split) {
  dataset_ = &dataset;
  const auto docs = BuildUserDocuments(dataset, split);
  const size_t num_users = dataset.num_users();
  const size_t num_words = dataset.vocabulary().size();
  const size_t k = num_topics_;

  // Flatten tokens for cache-friendly sweeps.
  struct Token {
    uint32_t doc;
    uint32_t word;
    uint8_t in_target;
    uint32_t topic;
  };
  std::vector<Token> tokens;
  for (size_t u = 0; u < docs.size(); ++u) {
    for (const DocToken& t : docs[u]) {
      tokens.push_back(Token{static_cast<uint32_t>(u),
                             static_cast<uint32_t>(t.word),
                             static_cast<uint8_t>(t.city == split.target_city),
                             0});
    }
  }
  if (tokens.empty()) return Status::InvalidArgument("no training tokens");

  Rng rng(seed_);
  std::vector<int> ndk(num_users * k, 0);   // doc-topic
  std::vector<int> nkw(k * num_words, 0);   // topic-word
  std::vector<int> nk(k, 0);                // topic totals
  for (Token& t : tokens) {
    t.topic = static_cast<uint32_t>(rng.UniformInt(k));
    ndk[t.doc * k + t.topic] += 1;
    nkw[t.topic * num_words + t.word] += 1;
    nk[t.topic] += 1;
  }

  // Collapsed Gibbs sweeps.
  const double wbeta = static_cast<double>(num_words) * beta_;
  std::vector<double> p(k);
  for (size_t it = 0; it < iterations_; ++it) {
    for (Token& t : tokens) {
      ndk[t.doc * k + t.topic] -= 1;
      nkw[t.topic * num_words + t.word] -= 1;
      nk[t.topic] -= 1;
      double total = 0;
      for (size_t z = 0; z < k; ++z) {
        p[z] = (ndk[t.doc * k + z] + alpha_) *
               (nkw[z * num_words + t.word] + beta_) / (nk[z] + wbeta);
        total += p[z];
      }
      double r = rng.Uniform() * total;
      size_t z = 0;
      for (; z + 1 < k; ++z) {
        r -= p[z];
        if (r <= 0) break;
      }
      t.topic = static_cast<uint32_t>(z);
      ndk[t.doc * k + z] += 1;
      nkw[z * num_words + t.word] += 1;
      nk[z] += 1;
    }
  }

  // Point estimates.
  theta_.assign(num_users, std::vector<double>(k, 0.0));
  for (size_t u = 0; u < num_users; ++u) {
    double len = 0;
    for (size_t z = 0; z < k; ++z) len += ndk[u * k + z];
    for (size_t z = 0; z < k; ++z) {
      theta_[u][z] =
          (ndk[u * k + z] + alpha_) / (len + static_cast<double>(k) * alpha_);
    }
  }
  phi_.assign(k, std::vector<double>(num_words, 0.0));
  for (size_t z = 0; z < k; ++z) {
    for (size_t w = 0; w < num_words; ++w) {
      phi_[z][w] = (nkw[z * num_words + w] + beta_) / (nk[z] + wbeta);
    }
  }

  // Target-city crowd preference: topic histogram of target tokens.
  crowd_.assign(k, 1.0 / static_cast<double>(k));
  double target_total = 0;
  std::vector<double> counts(k, 0.0);
  for (const Token& t : tokens) {
    if (t.in_target) {
      counts[t.topic] += 1;
      target_total += 1;
    }
  }
  if (target_total > 0) {
    for (size_t z = 0; z < k; ++z) {
      crowd_[z] = (counts[z] + alpha_) /
                  (target_total + static_cast<double>(k) * alpha_);
    }
  }
  fitted_ = true;
  return Status::OK();
}

double StLda::Score(UserId user, PoiId poi) const {
  STTR_CHECK(fitted_) << "Score() before Fit()";
  const auto& words = dataset_->poi(poi).words;
  if (words.empty()) return 0.0;
  const auto& theta = theta_[static_cast<size_t>(user)];
  double score = 0;
  for (size_t z = 0; z < num_topics_; ++z) {
    double mean_phi = 0;
    for (WordId w : words) mean_phi += phi_[z][static_cast<size_t>(w)];
    mean_phi /= static_cast<double>(words.size());
    const double mix =
        personal_weight_ * theta[z] + (1.0 - personal_weight_) * crowd_[z];
    score += mix * mean_phi;
  }
  return score;
}

}  // namespace sttr::baselines
