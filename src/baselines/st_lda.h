#ifndef STTR_BASELINES_ST_LDA_H_
#define STTR_BASELINES_ST_LDA_H_

#include <string>
#include <vector>

#include "core/recommender.h"

namespace sttr::baselines {

/// ST-LDA (Yin et al., "Adapting to user interest drift for POI
/// recommendation"): a probabilistic generative model learning
/// region-dependent personal interests and crowd preferences. Our
/// implementation: collapsed-Gibbs LDA over user documents (the words of
/// their visited POIs), plus a target-city *crowd* topic distribution
/// estimated from local check-ins. A candidate POI is scored by
///
///   sum_t [pi theta_u(t) + (1-pi) theta_crowd(t)] * mean_{w in W_v} phi_t(w),
///
/// mixing personal interest with the out-of-town crowd preference exactly as
/// the original interpolates the two.
class StLda : public Recommender {
 public:
  StLda(size_t num_topics = 12, size_t gibbs_iterations = 120,
        double alpha = 0.5, double beta = 0.05, double personal_weight = 0.7,
        uint64_t seed = 17);

  Status Fit(const Dataset& dataset, const CrossCitySplit& split) override;
  double Score(UserId user, PoiId poi) const override;
  std::string name() const override { return "ST-LDA"; }

  /// theta_u(t) after Fit(); for tests that check topic recovery.
  const std::vector<std::vector<double>>& user_topics() const {
    return theta_;
  }

 private:
  size_t num_topics_;
  size_t iterations_;
  double alpha_;
  double beta_;
  double personal_weight_;
  uint64_t seed_;

  const Dataset* dataset_ = nullptr;
  std::vector<std::vector<double>> theta_;  // users x K
  std::vector<std::vector<double>> phi_;    // K x W
  std::vector<double> crowd_;               // K (target-city crowd prefs)
  bool fitted_ = false;
};

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_ST_LDA_H_
