#include "baselines/ctlm.h"

#include "baselines/common.h"
#include "util/check.h"
#include "util/rng.h"

namespace sttr::baselines {

namespace {
/// Fixed prior probability that a token draws its word from the common
/// (transferable) distribution rather than the city-specific one.
constexpr double kCommonPrior = 0.7;
}  // namespace

Ctlm::Ctlm(size_t num_topics, size_t gibbs_iterations, double alpha,
           double beta, double gamma, double personal_weight, uint64_t seed)
    : num_topics_(num_topics),
      iterations_(gibbs_iterations),
      alpha_(alpha),
      beta_(beta),
      gamma_(gamma),
      personal_weight_(personal_weight),
      seed_(seed) {
  STTR_CHECK_GT(num_topics, 0u);
}

Status Ctlm::Fit(const Dataset& dataset, const CrossCitySplit& split) {
  dataset_ = &dataset;
  target_city_ = split.target_city;
  const auto docs = BuildUserDocuments(dataset, split);
  const size_t num_users = dataset.num_users();
  const size_t num_words = dataset.vocabulary().size();
  const size_t num_cities = dataset.num_cities();
  const size_t k = num_topics_;

  struct Token {
    uint32_t doc;
    uint32_t word;
    uint16_t city;
    uint16_t common;  // switch x: 1 = common distribution
    uint32_t topic;
  };
  std::vector<Token> tokens;
  for (size_t u = 0; u < docs.size(); ++u) {
    for (const DocToken& t : docs[u]) {
      tokens.push_back(Token{static_cast<uint32_t>(u),
                             static_cast<uint32_t>(t.word),
                             static_cast<uint16_t>(t.city), 0, 0});
    }
  }
  if (tokens.empty()) return Status::InvalidArgument("no training tokens");

  Rng rng(seed_);
  std::vector<int> ndk(num_users * k, 0);
  std::vector<int> n0kw(k * num_words, 0);  // common topic-word
  std::vector<int> n0k(k, 0);
  // Specific counts, flattened [city][topic][word].
  std::vector<int> nckw(num_cities * k * num_words, 0);
  std::vector<int> nck(num_cities * k, 0);
  // Switch counts per (city, topic).
  std::vector<int> s_common(num_cities * k, 0);
  std::vector<int> s_specific(num_cities * k, 0);

  auto add_token = [&](Token& t, int delta) {
    ndk[t.doc * k + t.topic] += delta;
    if (t.common) {
      n0kw[t.topic * num_words + t.word] += delta;
      n0k[t.topic] += delta;
      s_common[t.city * k + t.topic] += delta;
    } else {
      nckw[(t.city * k + t.topic) * num_words + t.word] += delta;
      nck[t.city * k + t.topic] += delta;
      s_specific[t.city * k + t.topic] += delta;
    }
  };

  for (Token& t : tokens) {
    t.topic = static_cast<uint32_t>(rng.UniformInt(k));
    t.common = static_cast<uint16_t>(rng.Bernoulli(0.5) ? 1 : 0);
    add_token(t, +1);
  }

  const double wbeta = static_cast<double>(num_words) * beta_;
  std::vector<double> p(2 * k);
  for (size_t it = 0; it < iterations_; ++it) {
    for (Token& t : tokens) {
      add_token(t, -1);
      double total = 0;
      for (size_t z = 0; z < k; ++z) {
        const double theta_term = ndk[t.doc * k + z] + alpha_;
        // Fixed switch prior P(common) = kCommonPrior. Inferring the switch
        // from counts is unstable here: a city-specific distribution has a
        // smaller support than the shared one, so its per-token likelihood
        // always wins and the chain collapses into per-city topic copies
        // (nothing transfers). A fixed prior keeps the common route alive;
        // genuinely city-bound words still prefer the specific route
        // because their common-likelihood is diluted across cities.
        p[2 * z] = theta_term * kCommonPrior *
                   (n0kw[z * num_words + t.word] + beta_) / (n0k[z] + wbeta);
        // x = city-specific.
        p[2 * z + 1] =
            theta_term * (1.0 - kCommonPrior) *
            (nckw[(t.city * k + z) * num_words + t.word] + beta_) /
            (nck[t.city * k + z] + wbeta);
        total += p[2 * z] + p[2 * z + 1];
      }
      double r = rng.Uniform() * total;
      size_t pick = 0;
      for (; pick + 1 < 2 * k; ++pick) {
        r -= p[pick];
        if (r <= 0) break;
      }
      t.topic = static_cast<uint32_t>(pick / 2);
      t.common = static_cast<uint16_t>(pick % 2 == 0 ? 1 : 0);
      add_token(t, +1);
    }
  }

  // Point estimates.
  theta_.assign(num_users, std::vector<double>(k, 0.0));
  for (size_t u = 0; u < num_users; ++u) {
    double len = 0;
    for (size_t z = 0; z < k; ++z) len += ndk[u * k + z];
    for (size_t z = 0; z < k; ++z) {
      theta_[u][z] =
          (ndk[u * k + z] + alpha_) / (len + static_cast<double>(k) * alpha_);
    }
  }
  phi0_.assign(k, std::vector<double>(num_words, 0.0));
  for (size_t z = 0; z < k; ++z) {
    for (size_t w = 0; w < num_words; ++w) {
      phi0_[z][w] = (n0kw[z * num_words + w] + beta_) / (n0k[z] + wbeta);
    }
  }
  phi_spec_.assign(num_cities,
                   std::vector<std::vector<double>>(
                       k, std::vector<double>(num_words, 0.0)));
  p_common_.assign(num_cities, std::vector<double>(k, 0.5));
  for (size_t c = 0; c < num_cities; ++c) {
    for (size_t z = 0; z < k; ++z) {
      for (size_t w = 0; w < num_words; ++w) {
        phi_spec_[c][z][w] =
            (nckw[(c * k + z) * num_words + w] + beta_) /
            (nck[c * k + z] + wbeta);
      }
      const double sc = s_common[c * k + z];
      const double ss = s_specific[c * k + z];
      p_common_[c][z] = (sc + gamma_) / (sc + ss + 2.0 * gamma_);
    }
  }
  // Target-city crowd topic preferences (like ST-LDA's crowd term: the
  // original CTLM also mixes the local crowd's interests when ranking for
  // out-of-town visitors).
  crowd_.assign(k, 1.0 / static_cast<double>(k));
  double target_total = 0;
  std::vector<double> counts(k, 0.0);
  for (const Token& t : tokens) {
    if (static_cast<CityId>(t.city) == target_city_) {
      counts[t.topic] += 1;
      target_total += 1;
    }
  }
  if (target_total > 0) {
    for (size_t z = 0; z < k; ++z) {
      crowd_[z] = (counts[z] + alpha_) /
                  (target_total + static_cast<double>(k) * alpha_);
    }
  }

  fitted_ = true;
  return Status::OK();
}

double Ctlm::CommonProbability(size_t topic, CityId city) const {
  STTR_CHECK(fitted_);
  STTR_CHECK_LT(topic, num_topics_);
  return p_common_[static_cast<size_t>(city)][topic];
}

double Ctlm::Score(UserId user, PoiId poi) const {
  STTR_CHECK(fitted_) << "Score() before Fit()";
  const auto& words = dataset_->poi(poi).words;
  if (words.empty()) return 0.0;
  const auto& theta = theta_[static_cast<size_t>(user)];
  double score = 0;
  for (size_t z = 0; z < num_topics_; ++z) {
    // Rank through the *common* distributions only: user interests live in
    // the transferable topics, while the target-specific distributions
    // mostly hold local landmark words that carry no preference signal
    // (this is the "transfer via common topics" mechanism of the original;
    // blending the specific distributions back in only adds noise).
    double mean_word = 0;
    for (WordId w : words) {
      mean_word += phi0_[z][static_cast<size_t>(w)];
    }
    mean_word /= static_cast<double>(words.size());
    const double mix =
        personal_weight_ * theta[z] + (1.0 - personal_weight_) * crowd_[z];
    score += mix * mean_word;
  }
  return score;
}

}  // namespace sttr::baselines
