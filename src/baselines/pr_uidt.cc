#include "baselines/pr_uidt.h"

#include <algorithm>
#include <cmath>

#include "baselines/common.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace sttr::baselines {

PrUidt::PrUidt(size_t rank, size_t epochs, float learning_rate, float l2,
               size_t negatives, uint64_t seed)
    : rank_(rank),
      epochs_(epochs),
      lr_(learning_rate),
      l2_(l2),
      negatives_(negatives),
      seed_(seed) {
  STTR_CHECK_GT(rank, 0u);
}

void PrUidt::PoiFactor(PoiId poi, float* out) const {
  const auto& w_ids = dataset_->poi(poi).words;
  const float* dev = deviations_.row(static_cast<size_t>(poi));
  for (size_t j = 0; j < rank_; ++j) out[j] = dev[j];
  if (w_ids.empty()) return;
  const float inv = 1.0f / static_cast<float>(w_ids.size());
  for (WordId w : w_ids) {
    const float* wr = words_.row(static_cast<size_t>(w));
    for (size_t j = 0; j < rank_; ++j) out[j] += inv * wr[j];
  }
}

Status PrUidt::Fit(const Dataset& dataset, const CrossCitySplit& split) {
  dataset_ = &dataset;
  const TrainView view = MakeTrainView(dataset, split);
  if (view.positives.empty()) {
    return Status::InvalidArgument("empty training split");
  }

  Rng rng(seed_);
  users_ = Tensor::RandomNormal({dataset.num_users(), rank_}, rng, 0, 0.1f);
  words_ = Tensor::RandomNormal({dataset.vocabulary().size(), rank_}, rng, 0,
                                0.1f);
  deviations_ = Tensor::RandomNormal({dataset.num_pois(), rank_}, rng, 0,
                                     0.01f);

  std::vector<float> q(rank_);
  auto sgd_step = [&](UserId u, PoiId v, float label) {
    PoiFactor(v, q.data());
    float* pu = users_.row(static_cast<size_t>(u));
    double s = 0;
    for (size_t j = 0; j < rank_; ++j) s += static_cast<double>(pu[j]) * q[j];
    const float g = label - SigmoidScalar(static_cast<float>(s));
    // Gradient ascent on log-likelihood with L2 shrinkage.
    float* dv = deviations_.row(static_cast<size_t>(v));
    const auto& w_ids = dataset.poi(v).words;
    const float inv_w =
        w_ids.empty() ? 0.0f : 1.0f / static_cast<float>(w_ids.size());
    for (size_t j = 0; j < rank_; ++j) {
      const float gu = g * q[j] - l2_ * pu[j];
      const float gq = g * pu[j];
      dv[j] += lr_ * (gq - l2_ * dv[j]);
      for (WordId w : w_ids) {
        words_.row(static_cast<size_t>(w))[j] += lr_ * inv_w * gq;
      }
      pu[j] += lr_ * gu;
    }
  };

  for (size_t epoch = 0; epoch < epochs_; ++epoch) {
    for (size_t n = 0; n < view.positives.size(); ++n) {
      const auto& [u, v] = view.positives[rng.UniformInt(
          view.positives.size())];
      sgd_step(u, v, 1.0f);
      const auto& pool = view.city_pois[static_cast<size_t>(
          dataset.poi(v).city)];
      for (size_t k = 0; k < negatives_; ++k) {
        sgd_step(u, static_cast<PoiId>(pool[rng.UniformInt(pool.size())]),
                 0.0f);
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

double PrUidt::Score(UserId user, PoiId poi) const {
  STTR_CHECK(fitted_) << "Score() before Fit()";
  std::vector<float> q(rank_);
  PoiFactor(poi, q.data());
  const float* pu = users_.row(static_cast<size_t>(user));
  double s = 0;
  for (size_t j = 0; j < rank_; ++j) s += static_cast<double>(pu[j]) * q[j];
  return SigmoidScalar(static_cast<float>(s));
}

}  // namespace sttr::baselines
