#ifndef STTR_BASELINES_SH_CDL_H_
#define STTR_BASELINES_SH_CDL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sttr::baselines {

/// SH-CDL (Yin et al., "Spatial-aware hierarchical collaborative deep
/// learning for POI recommendation"): a deep network learns unified POI
/// representations from heterogeneous content, combined with spatial-aware
/// user preferences. Our implementation:
///
///  1. A denoising autoencoder (masking noise) over each POI's normalised
///     bag-of-words learns a deep content representation — the paper's
///     deep-belief-network stage (substitution recorded in DESIGN.md: a DAE
///     trained by backprop replaces layer-wise RBM pre-training; both yield
///     a deep content encoding).
///  2. A preference model scores sigma(p_u . enc(v) + b_v + spatial(v)):
///     user factors and POI biases trained with logistic loss and uniform
///     negatives; spatial(v) is a fixed grid-cell popularity prior, the
///     spatial-awareness of the original.
///
/// As the paper observes, only the POI side is deep — user-POI interactions
/// stay shallow, which is why PACE/ST-TransRec outrank it.
class ShCdl : public Recommender {
 public:
  struct Config {
    size_t representation_dim = 32;
    size_t dae_hidden = 96;
    size_t dae_epochs = 12;
    size_t dae_batch = 64;
    float dae_corruption = 0.3f;
    float dae_learning_rate = 1e-3f;

    size_t mf_epochs = 16;
    size_t mf_batch = 256;
    size_t negatives = 4;
    float mf_learning_rate = 5e-2f;
    double spatial_weight = 0.3;
    size_t grid_rows = 16;
    size_t grid_cols = 16;
    uint64_t seed = 23;
  };

  ShCdl();
  explicit ShCdl(Config config);

  Status Fit(const Dataset& dataset, const CrossCitySplit& split) override;
  double Score(UserId user, PoiId poi) const override;
  std::string name() const override { return "SH-CDL"; }

  /// Deep POI representation (row of the encoder output), after Fit().
  std::vector<float> PoiRepresentation(PoiId poi) const;

 private:
  Config config_;
  Tensor representations_;  // pois x dim (frozen after DAE training)
  Tensor user_factors_;     // users x dim
  std::vector<float> poi_bias_;
  std::vector<double> spatial_prior_;  // per poi
  bool fitted_ = false;
};

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_SH_CDL_H_
