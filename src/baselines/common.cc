#include "baselines/common.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace sttr::baselines {

TrainView MakeTrainView(const Dataset& dataset, const CrossCitySplit& split) {
  TrainView view;
  view.positives.reserve(split.train.size());
  view.user_pois.assign(dataset.num_users(), {});
  view.poi_popularity.assign(dataset.num_pois(), 0);
  view.city_pois.assign(dataset.num_cities(), {});
  for (size_t idx : split.train) {
    const CheckinRecord& rec = dataset.checkins()[idx];
    view.positives.emplace_back(rec.user, rec.poi);
    view.user_pois[static_cast<size_t>(rec.user)].push_back(rec.poi);
    view.poi_popularity[static_cast<size_t>(rec.poi)] += 1;
  }
  for (auto& v : view.user_pois) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  for (const Poi& p : dataset.pois()) {
    view.city_pois[static_cast<size_t>(p.city)].push_back(p.id);
  }
  return view;
}

std::vector<std::vector<DocToken>> BuildUserDocuments(
    const Dataset& dataset, const CrossCitySplit& split) {
  std::vector<std::vector<DocToken>> docs(dataset.num_users());
  for (size_t idx : split.train) {
    const CheckinRecord& rec = dataset.checkins()[idx];
    const Poi& poi = dataset.poi(rec.poi);
    for (WordId w : poi.words) {
      docs[static_cast<size_t>(rec.user)].push_back(DocToken{w, poi.city});
    }
  }
  return docs;
}

TfIdfModel::TfIdfModel(const Dataset& dataset) : dataset_(&dataset) {
  const size_t num_words = dataset.vocabulary().size();
  std::vector<size_t> df(num_words, 0);
  for (const Poi& p : dataset.pois()) {
    std::unordered_set<WordId> seen;
    for (WordId w : p.words) {
      if (seen.insert(w).second) df[static_cast<size_t>(w)] += 1;
    }
  }
  idf_.resize(num_words);
  const double n = static_cast<double>(dataset.num_pois());
  for (size_t w = 0; w < num_words; ++w) {
    idf_[w] = std::log((n + 1.0) / (static_cast<double>(df[w]) + 1.0)) + 1.0;
  }

  poi_vectors_.resize(dataset.num_pois());
  for (const Poi& p : dataset.pois()) {
    auto& vec = poi_vectors_[static_cast<size_t>(p.id)];
    for (WordId w : p.words) vec[w] += idf_[static_cast<size_t>(w)];
    double norm = 0;
    for (const auto& [w, x] : vec) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (auto& [w, x] : vec) x /= norm;
    }
  }
}

const std::unordered_map<WordId, double>& TfIdfModel::PoiVector(
    PoiId poi) const {
  STTR_CHECK_GE(poi, 0);
  STTR_CHECK_LT(static_cast<size_t>(poi), poi_vectors_.size());
  return poi_vectors_[static_cast<size_t>(poi)];
}

std::unordered_map<WordId, double> TfIdfModel::UserProfile(
    const std::vector<PoiId>& visited) const {
  std::unordered_map<WordId, double> profile;
  for (PoiId v : visited) {
    for (WordId w : dataset_->poi(v).words) {
      profile[w] += idf_[static_cast<size_t>(w)];
    }
  }
  double norm = 0;
  for (const auto& [w, x] : profile) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (auto& [w, x] : profile) x /= norm;
  }
  return profile;
}

double TfIdfModel::Cosine(const std::unordered_map<WordId, double>& a,
                          const std::unordered_map<WordId, double>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& big = a.size() <= b.size() ? b : a;
  double dot = 0;
  for (const auto& [w, x] : small) {
    auto it = big.find(w);
    if (it != big.end()) dot += x * it->second;
  }
  return dot;  // inputs are L2-normalised
}

}  // namespace sttr::baselines
