#include "baselines/lce.h"

#include <cmath>

#include "baselines/common.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace sttr::baselines {

namespace {

/// Sparse matrix as parallel (row, col, value) triplets.
struct SparseMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<size_t> r;
  std::vector<size_t> c;
  std::vector<float> x;

  void Add(size_t row, size_t col, float value) {
    r.push_back(row);
    c.push_back(col);
    x.push_back(value);
  }
};

/// out(rows x k) = S * F where F is (cols x k).
Tensor SpMm(const SparseMatrix& s, const Tensor& f) {
  Tensor out({s.rows, f.cols()});
  for (size_t e = 0; e < s.r.size(); ++e) {
    const float* src = f.row(s.c[e]);
    float* dst = out.row(s.r[e]);
    const float val = s.x[e];
    for (size_t j = 0; j < f.cols(); ++j) dst[j] += val * src[j];
  }
  return out;
}

/// out(cols x k) = S^T * F where F is (rows x k).
Tensor SpMmTrans(const SparseMatrix& s, const Tensor& f) {
  Tensor out({s.cols, f.cols()});
  for (size_t e = 0; e < s.r.size(); ++e) {
    const float* src = f.row(s.r[e]);
    float* dst = out.row(s.c[e]);
    const float val = s.x[e];
    for (size_t j = 0; j < f.cols(); ++j) dst[j] += val * src[j];
  }
  return out;
}

/// Squared Frobenius error ||S - F G^T||^2 restricted to structural zeros
/// approximated by sampling is expensive; we report the error over the
/// non-zeros only (sufficient for a convergence diagnostic).
double SparseResidual(const SparseMatrix& s, const Tensor& f,
                      const Tensor& g) {
  double err = 0;
  for (size_t e = 0; e < s.r.size(); ++e) {
    const float* fr = f.row(s.r[e]);
    const float* gr = g.row(s.c[e]);
    double pred = 0;
    for (size_t j = 0; j < f.cols(); ++j) pred += static_cast<double>(fr[j]) * gr[j];
    const double d = s.x[e] - pred;
    err += d * d;
  }
  return err;
}

/// Elementwise multiplicative update F <- F * num / (den + eps).
void MultiplicativeUpdate(Tensor& f, const Tensor& num, const Tensor& den) {
  constexpr float kEps = 1e-9f;
  for (size_t i = 0; i < f.size(); ++i) {
    f[i] *= num[i] / (den[i] + kEps);
  }
}

}  // namespace

Lce::Lce(size_t rank, size_t iterations, double content_weight, uint64_t seed)
    : rank_(rank),
      iterations_(iterations),
      content_weight_(content_weight),
      seed_(seed) {
  STTR_CHECK_GT(rank, 0u);
}

Status Lce::Fit(const Dataset& dataset, const CrossCitySplit& split) {
  const TrainView view = MakeTrainView(dataset, split);
  if (view.positives.empty()) {
    return Status::InvalidArgument("empty training split");
  }

  // A: binary user-POI matrix; B: POI-word count matrix.
  SparseMatrix a;
  a.rows = dataset.num_users();
  a.cols = dataset.num_pois();
  for (UserId u = 0; u < static_cast<UserId>(dataset.num_users()); ++u) {
    for (PoiId v : view.user_pois[static_cast<size_t>(u)]) {
      a.Add(static_cast<size_t>(u), static_cast<size_t>(v), 1.0f);
    }
  }
  SparseMatrix b;
  b.rows = dataset.num_pois();
  b.cols = dataset.vocabulary().size();
  for (const Poi& p : dataset.pois()) {
    for (WordId w : p.words) {
      b.Add(static_cast<size_t>(p.id), static_cast<size_t>(w), 1.0f);
    }
  }

  Rng rng(seed_);
  u_ = Tensor::RandomUniform({a.rows, rank_}, rng, 0.01f, 1.0f);
  v_ = Tensor::RandomUniform({a.cols, rank_}, rng, 0.01f, 1.0f);
  Tensor h = Tensor::RandomUniform({b.cols, rank_}, rng, 0.01f, 1.0f);

  const float beta = static_cast<float>(content_weight_);
  loss_history_.clear();
  for (size_t it = 0; it < iterations_; ++it) {
    // U <- U * (A V) / (U V^T V)
    MultiplicativeUpdate(u_, SpMm(a, v_), MatMul(u_, MatMulTransA(v_, v_)));
    // V <- V * (A^T U + beta B H) / (V (U^T U + beta H^T H))
    Tensor v_num = SpMmTrans(a, u_);
    v_num.Axpy(beta, SpMm(b, h));
    Tensor gram = MatMulTransA(u_, u_);
    gram.Axpy(beta, MatMulTransA(h, h));
    MultiplicativeUpdate(v_, v_num, MatMul(v_, gram));
    // H <- H * (B^T V) / (H V^T V)
    MultiplicativeUpdate(h, SpMmTrans(b, v_), MatMul(h, MatMulTransA(v_, v_)));

    loss_history_.push_back(SparseResidual(a, u_, v_) +
                            content_weight_ * SparseResidual(b, v_, h));
  }
  fitted_ = true;
  return Status::OK();
}

double Lce::Score(UserId user, PoiId poi) const {
  STTR_CHECK(fitted_) << "Score() before Fit()";
  const float* ur = u_.row(static_cast<size_t>(user));
  const float* vr = v_.row(static_cast<size_t>(poi));
  double s = 0;
  for (size_t j = 0; j < rank_; ++j) s += static_cast<double>(ur[j]) * vr[j];
  return s;
}

}  // namespace sttr::baselines
