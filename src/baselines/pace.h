#ifndef STTR_BASELINES_PACE_H_
#define STTR_BASELINES_PACE_H_

#include <string>

#include "core/st_transrec.h"

namespace sttr::baselines {

/// PACE (Yang et al., "Bridging collaborative filtering and semi-supervised
/// learning"): neural collaborative filtering jointly trained with context
/// prediction over each POI's textual description and geographic
/// neighbourhood. Shares ST-TransRec's skeleton but has neither the MMD
/// transfer layer nor the density-based resampling.
class Pace : public Recommender {
 public:
  /// `base` carries architecture/optimisation settings; the transfer and
  /// resampling switches are overridden to PACE's configuration.
  explicit Pace(StTransRecConfig base = {});

  Status Fit(const Dataset& dataset, const CrossCitySplit& split) override;
  double Score(UserId user, PoiId poi) const override;
  std::string name() const override { return "PACE"; }

  const StTransRec& inner() const { return inner_; }

 private:
  static StTransRecConfig MakeConfig(StTransRecConfig base);
  StTransRec inner_;
};

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_PACE_H_
