#ifndef STTR_BASELINES_CRCF_H_
#define STTR_BASELINES_CRCF_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/common.h"
#include "core/recommender.h"

namespace sttr::baselines {

/// CRCF (Zhang & Wang, "POI recommendation through cross-region
/// collaborative filtering"): combines a user's *content interests*
/// (TF-IDF match between their source-city history and a candidate POI's
/// description) with their *location preference* in the new region. The
/// location preference is learned from the user's own check-ins in that
/// city — which a crossing-city visitor does not have. That is exactly why
/// the paper finds CRCF weak in this scenario ("CRCF depends on the
/// location of users in a new city"): for users without target-city
/// history the location component is uninformative (flat), leaving only
/// the content match.
class Crcf : public Recommender {
 public:
  /// `content_weight` in [0,1] mixes content vs location scores.
  explicit Crcf(double content_weight = 0.7);

  Status Fit(const Dataset& dataset, const CrossCitySplit& split) override;
  double Score(UserId user, PoiId poi) const override;
  std::string name() const override { return "CRCF"; }

 private:
  double content_weight_;
  std::unique_ptr<TfIdfModel> tfidf_;
  std::vector<std::unordered_map<WordId, double>> user_profiles_;
  /// location_score_[u] is set only for users with target-city training
  /// check-ins (locals); flat 0.5 otherwise.
  std::vector<std::unordered_map<PoiId, double>> user_location_score_;
  bool fitted_ = false;
};

}  // namespace sttr::baselines

#endif  // STTR_BASELINES_CRCF_H_
