#ifndef STTR_UTIL_TABLE_H_
#define STTR_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace sttr {

/// Small fixed-column text table used by the benchmark harnesses to print
/// paper-style tables, and to dump the same rows as CSV.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns and a separator under the header.
  std::string ToString() const;

  /// Renders as CSV (no escaping of commas; callers avoid commas in cells).
  std::string ToCsv() const;

  /// Writes the CSV form to `path`.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sttr

#endif  // STTR_UTIL_TABLE_H_
