#ifndef STTR_UTIL_STRING_UTIL_H_
#define STTR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sttr {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on any run of whitespace, dropping empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters become \", \\, \n/\t/... or \u00XX.
std::string JsonEscaped(std::string_view s);

}  // namespace sttr

#endif  // STTR_UTIL_STRING_UTIL_H_
