#include "util/flags.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace sttr {

void FlagParser::Define(const std::string& name,
                        const std::string& description,
                        const std::string& default_help) {
  specs_.push_back(FlagSpec{name, description, default_help});
}

std::string FlagParser::HelpText(const std::string& program,
                                 const std::string& usage,
                                 const std::string& summary) const {
  std::ostringstream os;
  os << "usage: " << program << " "
     << (usage.empty() ? "[--flag=value ...]" : usage) << "\n";
  if (!summary.empty()) os << "\n" << summary << "\n";
  std::vector<FlagSpec> specs = specs_;
  specs.push_back(FlagSpec{"help", "print this help and exit", ""});
  size_t width = 0;
  std::vector<std::string> labels;
  labels.reserve(specs.size());
  for (const FlagSpec& spec : specs) {
    std::string label = "--" + spec.name;
    if (!spec.default_help.empty()) label += "=" + spec.default_help;
    width = std::max(width, label.size());
    labels.push_back(std::move(label));
  }
  os << "\nflags:\n";
  for (size_t i = 0; i < specs.size(); ++i) {
    os << "  " << labels[i]
       << std::string(width - labels[i].size() + 2, ' ')
       << specs[i].description << "\n";
  }
  return os.str();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string v = ToLower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace sttr
