#include "util/svg_chart.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace sttr {

namespace {

/// Categorical palette (colour-blind-friendly Okabe-Ito subset).
const char* const kPalette[] = {"#0072B2", "#D55E00", "#009E73", "#CC79A7",
                                "#E69F00", "#56B4E9", "#F0E442", "#000000"};
constexpr size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

std::string EscapeXml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Chooses a "nice" tick step covering roughly `target` intervals.
double NiceStep(double span, int target) {
  if (span <= 0) return 1.0;
  const double raw = span / target;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  double step = 10.0;
  if (norm <= 1.5) {
    step = 1.0;
  } else if (norm <= 3.0) {
    step = 2.0;
  } else if (norm <= 7.0) {
    step = 5.0;
  }
  return step * mag;
}

std::string FormatTick(double v) {
  // Trim trailing zeros of a %.4g-ish rendering.
  std::string s = StrFormat("%.4g", v);
  return s;
}

}  // namespace

SvgLineChart::SvgLineChart(std::string title, std::string x_label,
                           std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void SvgLineChart::AddSeries(std::string name, std::vector<double> xs,
                             std::vector<double> ys) {
  STTR_CHECK_EQ(xs.size(), ys.size());
  STTR_CHECK(!xs.empty()) << "series '" << name << "' is empty";
  series_.push_back(Series{std::move(name), std::move(xs), std::move(ys)});
}

void SvgLineChart::SetSize(int width, int height) {
  STTR_CHECK_GT(width, 100);
  STTR_CHECK_GT(height, 100);
  width_ = width;
  height_ = height;
}

void SvgLineChart::SetYRange(double y_min, double y_max) {
  STTR_CHECK_LT(y_min, y_max);
  fixed_y_ = true;
  y_min_ = y_min;
  y_max_ = y_max;
}

std::string SvgLineChart::Render() const {
  // Data bounds.
  double x_min = 0, x_max = 1, y_min = 0, y_max = 1;
  bool first = true;
  for (const Series& s : series_) {
    for (size_t i = 0; i < s.xs.size(); ++i) {
      if (first) {
        x_min = x_max = s.xs[i];
        y_min = y_max = s.ys[i];
        first = false;
      }
      x_min = std::min(x_min, s.xs[i]);
      x_max = std::max(x_max, s.xs[i]);
      y_min = std::min(y_min, s.ys[i]);
      y_max = std::max(y_max, s.ys[i]);
    }
  }
  if (fixed_y_) {
    y_min = y_min_;
    y_max = y_max_;
  } else if (y_max - y_min < 1e-12) {
    y_max = y_min + 1.0;  // flat series: open up a unit band
  }
  if (x_max - x_min < 1e-12) x_max = x_min + 1.0;
  // Pad the auto y-range slightly so lines don't sit on the frame.
  if (!fixed_y_) {
    const double pad = 0.05 * (y_max - y_min);
    y_min -= pad;
    y_max += pad;
  }

  const double ml = 64, mr = 16, mt = 36, mb = 48;  // margins
  const double pw = width_ - ml - mr;               // plot width
  const double ph = height_ - mt - mb;              // plot height
  auto px = [&](double x) { return ml + (x - x_min) / (x_max - x_min) * pw; };
  auto py = [&](double y) {
    return mt + ph - (y - y_min) / (y_max - y_min) * ph;
  };

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
      << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << " "
      << height_ << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  out << "<text x=\"" << width_ / 2 << "\" y=\"20\" text-anchor=\"middle\" "
         "font-family=\"sans-serif\" font-size=\"14\" font-weight=\"bold\">"
      << EscapeXml(title_) << "</text>\n";

  // Axes frame.
  out << StrFormat(
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
      "fill=\"none\" stroke=\"#444\"/>\n",
      ml, mt, pw, ph);

  // Ticks + gridlines.
  const double xstep = NiceStep(x_max - x_min, 6);
  for (double x = std::ceil(x_min / xstep) * xstep; x <= x_max + 1e-9;
       x += xstep) {
    out << StrFormat(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"#ddd\"/>\n",
        px(x), mt, px(x), mt + ph);
    out << StrFormat(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
        "font-family=\"sans-serif\" font-size=\"11\">%s</text>\n",
        px(x), mt + ph + 16, FormatTick(x).c_str());
  }
  const double ystep = NiceStep(y_max - y_min, 5);
  for (double y = std::ceil(y_min / ystep) * ystep; y <= y_max + 1e-9;
       y += ystep) {
    out << StrFormat(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"#ddd\"/>\n",
        ml, py(y), ml + pw, py(y));
    out << StrFormat(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" "
        "font-family=\"sans-serif\" font-size=\"11\">%s</text>\n",
        ml - 6, py(y) + 4, FormatTick(y).c_str());
  }

  // Axis labels.
  out << StrFormat(
      "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
      "font-family=\"sans-serif\" font-size=\"12\">%s</text>\n",
      ml + pw / 2, static_cast<double>(height_) - 8,
      EscapeXml(x_label_).c_str());
  out << StrFormat(
      "<text x=\"14\" y=\"%.1f\" text-anchor=\"middle\" "
      "font-family=\"sans-serif\" font-size=\"12\" "
      "transform=\"rotate(-90 14 %.1f)\">%s</text>\n",
      mt + ph / 2, mt + ph / 2, EscapeXml(y_label_).c_str());

  // Series polylines + markers.
  for (size_t si = 0; si < series_.size(); ++si) {
    const Series& s = series_[si];
    const char* color = kPalette[si % kPaletteSize];
    std::string points;
    for (size_t i = 0; i < s.xs.size(); ++i) {
      points += StrFormat("%.1f,%.1f ", px(s.xs[i]), py(s.ys[i]));
    }
    out << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"2\" points=\"" << points << "\"/>\n";
    for (size_t i = 0; i < s.xs.size(); ++i) {
      out << StrFormat(
          "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n",
          px(s.xs[i]), py(s.ys[i]), color);
    }
  }

  // Legend (top-right inside the plot).
  for (size_t si = 0; si < series_.size(); ++si) {
    const double ly = mt + 14 + 16 * static_cast<double>(si);
    out << StrFormat(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"%s\" stroke-width=\"2\"/>\n",
        ml + pw - 110, ly, ml + pw - 92, ly,
        kPalette[si % kPaletteSize]);
    out << StrFormat(
        "<text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" "
        "font-size=\"11\">%s</text>\n",
        ml + pw - 86, ly + 4, EscapeXml(series_[si].name).c_str());
  }

  out << "</svg>\n";
  return out.str();
}

Status SvgLineChart::WriteTo(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  f << Render();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace sttr
