#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sttr {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sttr
