#include "util/socket_fault.h"

namespace sttr {

void FaultInjectionSocket::FailNth(Op op, size_t n, Mode mode) {
  MutexLock lock(mu_);
  const size_t i = static_cast<size_t>(op);
  armed_[i] = true;
  fail_at_[i] = counts_[i] + n;
  nth_mode_[i] = mode;
}

void FaultInjectionSocket::FailAlways(Op op, Mode mode) {
  MutexLock lock(mu_);
  const size_t i = static_cast<size_t>(op);
  always_[i] = true;
  always_mode_[i] = mode;
}

void FaultInjectionSocket::Clear(Op op) {
  MutexLock lock(mu_);
  const size_t i = static_cast<size_t>(op);
  armed_[i] = false;
  always_[i] = false;
}

void FaultInjectionSocket::Reset() {
  MutexLock lock(mu_);
  counts_.fill(0);
  armed_.fill(false);
  fail_at_.fill(0);
  always_.fill(false);
  faults_triggered_ = 0;
}

void FaultInjectionSocket::set_stall(std::chrono::milliseconds stall) {
  MutexLock lock(mu_);
  stall_ = stall;
}

size_t FaultInjectionSocket::op_count(Op op) const {
  MutexLock lock(mu_);
  return counts_[static_cast<size_t>(op)];
}

size_t FaultInjectionSocket::faults_triggered() const {
  MutexLock lock(mu_);
  return faults_triggered_;
}

FaultInjectionSocket::Decision FaultInjectionSocket::Apply(Op op) {
  MutexLock lock(mu_);
  const size_t i = static_cast<size_t>(op);
  const size_t index = counts_[i]++;
  Decision decision;
  if (armed_[i] && index == fail_at_[i]) {
    armed_[i] = false;  // one-shot
    decision.fire = true;
    decision.mode = nth_mode_[i];
  } else if (always_[i]) {
    decision.fire = true;
    decision.mode = always_mode_[i];
  }
  if (decision.fire) {
    ++faults_triggered_;
    decision.stall = stall_;
  }
  return decision;
}

}  // namespace sttr
