#include "util/fault_injection.h"

namespace sttr {

namespace {

Status Injected(const char* op, const std::string& path) {
  return Status::IOError(std::string("injected ") + op + " fault: " + path);
}

}  // namespace

void FaultInjectionEnv::FailNth(Op op, size_t n) {
  const size_t i = static_cast<size_t>(op);
  armed_[i] = true;
  fail_at_[i] = counts_[i] + n;
}

void FaultInjectionEnv::Reset() {
  counts_.fill(0);
  armed_.fill(false);
  fail_at_.fill(0);
  faults_triggered_ = 0;
}

bool FaultInjectionEnv::ShouldFail(Op op) {
  const size_t i = static_cast<size_t>(op);
  const size_t index = counts_[i]++;
  if (armed_[i] && index == fail_at_[i]) {
    armed_[i] = false;  // one-shot
    ++faults_triggered_;
    return true;
  }
  return false;
}

Status FaultInjectionEnv::WriteFile(const std::string& path,
                                    std::string_view data) {
  if (ShouldFail(Op::kWrite)) {
    if (torn_writes_) {
      // Crash mid write(): half the payload reaches the file.
      (void)base_->WriteFile(path, data.substr(0, data.size() / 2));
    }
    return Injected("write", path);
  }
  return base_->WriteFile(path, data);
}

StatusOr<std::string> FaultInjectionEnv::ReadFile(const std::string& path) {
  // A read fault models a checkpoint that passed discovery but cannot be
  // loaded (disk error, NFS hiccup, file rotated away mid-open) — the case
  // the hot-reload failure-visibility soak drives.
  if (ShouldFail(Op::kRead)) return Injected("read", path);
  return base_->ReadFile(path);
}

Status FaultInjectionEnv::Fsync(const std::string& path) {
  if (ShouldFail(Op::kFsync)) return Injected("fsync", path);
  return base_->Fsync(path);
}

Status FaultInjectionEnv::Rename(const std::string& from,
                                 const std::string& to) {
  if (ShouldFail(Op::kRename)) return Injected("rename", from);
  return base_->Rename(from, to);
}

Status FaultInjectionEnv::Remove(const std::string& path) {
  if (ShouldFail(Op::kRemove)) return Injected("remove", path);
  return base_->Remove(path);
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

StatusOr<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  if (ShouldFail(Op::kFsync)) return Injected("directory fsync", path);
  return base_->SyncDir(path);
}

}  // namespace sttr
