#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace sttr {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = stream_.str();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace sttr
