#ifndef STTR_UTIL_THREAD_POOL_H_
#define STTR_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sttr {

/// Fixed-size worker pool. Stands in for the paper's multi-GPU data
/// parallelism (Table 2): each worker computes gradients on its own shard of
/// a batch, exactly as each GPU would. Also backs the batched inference path
/// (ParallelMatMul, parallel evaluation) via GlobalThreadPool().
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void Wait() EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, n), sharded across the pool, and waits.
  /// Work is split into grain-sized chunks (several per worker) so uneven
  /// per-index costs load-balance instead of serialising on the slowest
  /// shard.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs fn(begin, end) over a partition of [0, n) into chunks of at most
  /// `grain` indices, sharded across the pool, and waits. This is the entry
  /// point the blocked tensor kernels use: one std::function per *range*,
  /// not per index, so dispatch overhead is amortised over the chunk.
  void ParallelForChunked(
      size_t n, size_t grain,
      const std::function<void(size_t begin, size_t end)>& fn);

  size_t num_threads() const { return threads_.size(); }

  /// True when the calling thread is a worker of *any* ThreadPool. Parallel
  /// kernels consult this to fall back to their serial form instead of
  /// nesting pools (which would both oversubscribe and risk deadlocking a
  /// pool waiting on itself).
  static bool InWorker();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  CondVar work_available_;
  CondVar all_done_;
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
};

/// Worker count for shared parallel paths: the STTR_NUM_THREADS environment
/// variable when set to a positive integer, else hardware_concurrency()
/// (minimum 1).
size_t DefaultNumThreads();

/// Lazily constructed process-wide pool of DefaultNumThreads() workers,
/// shared by ParallelMatMul and the parallel evaluation protocol. Never
/// destroyed before exit, so handing references around is safe.
ThreadPool& GlobalThreadPool();

}  // namespace sttr

#endif  // STTR_UTIL_THREAD_POOL_H_
