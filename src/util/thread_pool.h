#ifndef STTR_UTIL_THREAD_POOL_H_
#define STTR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sttr {

/// Fixed-size worker pool. Stands in for the paper's multi-GPU data
/// parallelism (Table 2): each worker computes gradients on its own shard of
/// a batch, exactly as each GPU would.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n), sharded across the pool, and waits.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace sttr

#endif  // STTR_UTIL_THREAD_POOL_H_
