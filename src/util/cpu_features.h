#ifndef STTR_UTIL_CPU_FEATURES_H_
#define STTR_UTIL_CPU_FEATURES_H_

// Runtime CPU feature detection for the SIMD kernel dispatch
// (tensor/simd.h). The compile-time STTR_SIMD gate says what the *binary*
// was built for; this says what the *host* can actually execute, so an
// AVX2-compiled binary copied onto an older core (or a VM masking AVX)
// falls back to the scalar kernels instead of dying on SIGILL.

namespace sttr {

/// Host instruction-set capabilities relevant to the vector kernels.
struct CpuFeatures {
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  /// OSXSAVE set and XCR0 reports the OS saves/restores YMM state; without
  /// it AVX instructions fault even on AVX-capable silicon.
  bool os_ymm = false;

  /// The AVX2/FMA kernels in tensor/simd.h are executable on this host.
  bool SimdOk() const { return avx2 && fma && os_ymm; }
};

/// Queries the host via cpuid + xgetbv (x86) — fresh, uncached. On non-x86
/// everything is false.
CpuFeatures DetectCpuFeatures();

/// DetectCpuFeatures(), detected once and cached.
const CpuFeatures& HostCpuFeatures();

/// Pure dispatch policy: use the vector kernels iff the host supports them
/// and the STTR_FORCE_SCALAR escape hatch is off. Split out so tests can
/// exercise the decision table without faking cpuid.
bool SimdAllowed(const CpuFeatures& features, bool force_scalar);

/// SimdAllowed(HostCpuFeatures(), getenv("STTR_FORCE_SCALAR")), evaluated
/// once and cached. This is the runtime half of the kernel dispatch; the
/// compile-time half (was the vector body even built?) stays in
/// tensor/simd.h.
bool HostSimdAllowed();

}  // namespace sttr

#endif  // STTR_UTIL_CPU_FEATURES_H_
