#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace sttr {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Guard against the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Rng::set_state(const std::array<uint64_t, 4>& s) {
  for (size_t i = 0; i < 4; ++i) s_[i] = s[i];
  // Same guard as the constructor: the all-zero state is absorbing.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::Split(uint64_t stream_id) {
  return Rng(Next() ^ (0xA0761D6478BD642FULL + stream_id * 0xE7037ED1A0B428DBULL));
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  STTR_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  STTR_CHECK_LT(lo, hi);
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo)));
}

double Rng::Normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = Uniform();
  double u2 = Uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    STTR_CHECK_GE(w, 0.0);
    total += w;
  }
  STTR_CHECK_GT(total, 0.0) << "Discrete() requires a positive total weight";
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

double Rng::Gamma(double shape) {
  STTR_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    double u = Uniform();
    if (u < 1e-300) u = 1e-300;
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0) continue;
    v = v * v * v;
    double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u < 1e-300) u = 1e-300;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::Dirichlet(double alpha, size_t dim) {
  STTR_CHECK_GT(dim, 0u);
  std::vector<double> out(dim);
  double sum = 0;
  for (auto& x : out) {
    x = Gamma(alpha);
    sum += x;
  }
  if (sum <= 0) {
    // Extremely unlikely underflow; fall back to uniform.
    for (auto& x : out) x = 1.0 / static_cast<double>(dim);
    return out;
  }
  for (auto& x : out) x /= sum;
  return out;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  STTR_CHECK_LE(k, n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    Shuffle(all);
    all.resize(k);
    return all;
  }
  // Floyd's algorithm for sparse sampling.
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = UniformInt(j + 1);
    bool found = false;
    for (size_t x : out) {
      if (x == t) {
        found = true;
        break;
      }
    }
    out.push_back(found ? j : t);
  }
  return out;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  STTR_CHECK_GT(n, 0u);
  double total = 0;
  for (double w : weights) {
    STTR_CHECK_GE(w, 0.0);
    total += w;
  }
  STTR_CHECK_GT(total, 0.0);

  prob_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t s : small) prob_[s] = 1.0;
  for (uint32_t l : large) prob_[l] = 1.0;
}

size_t AliasTable::Sample(Rng& rng) const {
  STTR_CHECK(!empty());
  size_t i = rng.UniformInt(prob_.size());
  return rng.Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace sttr
