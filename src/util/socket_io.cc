#include "util/socket_io.h"

#include <cerrno>

#include <algorithm>
#include <thread>

namespace sttr::net {

namespace {

using Decision = FaultInjectionSocket::Decision;
using Mode = FaultInjectionSocket::Mode;
using Op = FaultInjectionSocket::Op;

/// Applies a stall decision: sleep, then present EAGAIN — the nonblocking
/// caller's poll/deadline machinery takes it from there.
void Stall(const Decision& d) {
  std::this_thread::sleep_for(d.stall);
  errno = EAGAIN;
}

}  // namespace

ssize_t Send(int fd, const void* buf, size_t len, int flags,
             FaultInjectionSocket* fault) {
  if (fault != nullptr) {
    const Decision d = fault->Apply(Op::kSend);
    if (d.fire) {
      switch (d.mode) {
        case Mode::kFail:
        case Mode::kEof:
          errno = EPIPE;
          return -1;
        case Mode::kShort:
          len = std::max<size_t>(1, len / 2);
          break;
        case Mode::kStall:
          Stall(d);
          return -1;
      }
    }
  }
  return ::send(fd, buf, len, flags);
}

ssize_t Recv(int fd, void* buf, size_t len, int flags,
             FaultInjectionSocket* fault) {
  if (fault != nullptr) {
    const Decision d = fault->Apply(Op::kRecv);
    if (d.fire) {
      switch (d.mode) {
        case Mode::kFail:
          errno = ECONNRESET;
          return -1;
        case Mode::kEof:
          return 0;
        case Mode::kShort:
          len = std::max<size_t>(1, len / 2);
          break;
        case Mode::kStall:
          Stall(d);
          return -1;
      }
    }
  }
  return ::recv(fd, buf, len, flags);
}

int Connect(int fd, const sockaddr* addr, socklen_t addr_len,
            FaultInjectionSocket* fault) {
  if (fault != nullptr) {
    const Decision d = fault->Apply(Op::kConnect);
    if (d.fire) {
      switch (d.mode) {
        case Mode::kFail:
        case Mode::kShort:
        case Mode::kEof:
          errno = ECONNREFUSED;
          return -1;
        case Mode::kStall:
          Stall(d);
          return -1;
      }
    }
  }
  return ::connect(fd, addr, addr_len);
}

int Poll(pollfd* fds, nfds_t nfds, int timeout_ms,
         FaultInjectionSocket* fault) {
  if (fault != nullptr) {
    const Decision d = fault->Apply(Op::kPoll);
    if (d.fire) {
      switch (d.mode) {
        case Mode::kFail:
          errno = EINTR;
          return -1;
        case Mode::kShort:
        case Mode::kEof:
          return 0;  // spurious wakeup: nothing ready, revents untouched
        case Mode::kStall:
          std::this_thread::sleep_for(d.stall);
          return 0;  // a timeout tick; the caller re-checks its deadline
      }
    }
  }
  return ::poll(fds, nfds, timeout_ms);
}

}  // namespace sttr::net
