#ifndef STTR_UTIL_SVG_CHART_H_
#define STTR_UTIL_SVG_CHART_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace sttr {

/// Minimal dependency-free SVG line-chart writer, used by the benchmark
/// harness to render the paper's figure-style sweeps (metric vs
/// hyper-parameter) as actual figures next to the printed tables.
///
/// Usage:
///   SvgLineChart chart("Recall vs alpha", "alpha", "Recall@10");
///   chart.AddSeries("ST-TransRec", xs, ys);
///   STTR_CHECK_OK(chart.WriteTo("fig7_recall.svg"));
class SvgLineChart {
 public:
  SvgLineChart(std::string title, std::string x_label, std::string y_label);

  /// Adds one polyline; xs/ys must be the same non-zero length. Series are
  /// coloured from a built-in palette in insertion order.
  void AddSeries(std::string name, std::vector<double> xs,
                 std::vector<double> ys);

  /// Pixel dimensions (default 640x420).
  void SetSize(int width, int height);

  /// Forces the y-axis range instead of auto-fitting the data.
  void SetYRange(double y_min, double y_max);

  /// Renders the SVG document. Valid with zero series (empty axes).
  std::string Render() const;

  /// Renders and writes to `path`.
  Status WriteTo(const std::string& path) const;

  size_t num_series() const { return series_.size(); }

 private:
  struct Series {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  int width_ = 640;
  int height_ = 420;
  bool fixed_y_ = false;
  double y_min_ = 0.0;
  double y_max_ = 1.0;
  std::vector<Series> series_;
};

}  // namespace sttr

#endif  // STTR_UTIL_SVG_CHART_H_
