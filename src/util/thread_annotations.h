#ifndef STTR_UTIL_THREAD_ANNOTATIONS_H_
#define STTR_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety analysis attributes (the Abseil/LevelDB scheme).
///
/// Annotating which mutex guards which member moves the project's
/// concurrency contract — bit-identical results under any worker count,
/// snapshots swapped atomically under load — from "checked by TSan soaks"
/// to "checked on every Clang compile": a field read without its lock, a
/// helper called without the capability it REQUIRES, or an Unlock on the
/// wrong path is a -Werror build break, not a race to reproduce.
///
/// Under Clang these expand to `__attribute__((...))` and are enforced by
/// `-Wthread-safety` (enabled on the sttr_warnings interface); under GCC or
/// MSVC they expand to nothing, so the annotations are free documentation.
///
/// Usage idioms in this codebase:
///   sttr::Mutex mu_;
///   std::deque<int> queue_ GUARDED_BY(mu_);
///   void DrainLocked() REQUIRES(mu_);   // private *Locked() helpers
///   void Stop() EXCLUDES(mu_);          // takes mu_ itself; caller must not

#if defined(__clang__) && (!defined(SWIG))
#define STTR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STTR_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a type to be a lockable capability ("mutex" by convention).
#define CAPABILITY(x) STTR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction (MutexLock).
#define SCOPED_CAPABILITY STTR_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define GUARDED_BY(x) STTR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define PT_GUARDED_BY(x) STTR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while holding the given mutex(es)
/// exclusively; it does not acquire or release them.
#define REQUIRES(...) \
  STTR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared-hold variant of REQUIRES (reader locks).
#define REQUIRES_SHARED(...) \
  STTR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ACQUIRE(...) STTR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  STTR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability the caller holds on entry.
#define RELEASE(...) STTR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  STTR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability only when it returns the given value.
#define TRY_ACQUIRE(...) \
  STTR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function may only be called while NOT holding the given mutex(es) —
/// it acquires them itself; calling with them held self-deadlocks.
#define EXCLUDES(...) STTR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Static lock-ordering declarations; a Clang build rejects any code path
/// acquiring them in the opposite order.
#define ACQUIRED_BEFORE(...) \
  STTR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) STTR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Runtime assertion that the capability is held (no-op body; informs the
/// analysis at a point it cannot prove statically).
#define ASSERT_CAPABILITY(x) STTR_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the mutex guarding its result.
#define RETURN_CAPABILITY(x) STTR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis. Forbidden in src/serve/ (sttr_lint.py rule
/// no-analysis-escape); every use elsewhere must carry a one-line
/// justification comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  STTR_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // STTR_UTIL_THREAD_ANNOTATIONS_H_
