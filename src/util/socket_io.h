#ifndef STTR_UTIL_SOCKET_IO_H_
#define STTR_UTIL_SOCKET_IO_H_

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>

#include "util/socket_fault.h"

namespace sttr::net {

/// The project's socket syscall wrapper — the one place raw
/// ::connect/::send/::recv/::poll/::accept4 may appear (linter rule
/// raw-socket; see tools/sttr_lint.py). Every data-path socket operation
/// in src/ flows through here so the socket fault injector can reach it:
/// pass a FaultInjectionSocket to interpose failures, short reads/writes,
/// stalls and peer-vanished behaviour; pass nullptr (the default) for a
/// plain passthrough with zero overhead beyond one branch.
///
/// Fault semantics (mirroring what the real network does):
///   kFail   connect: ECONNREFUSED   send: EPIPE   recv: ECONNRESET
///           poll: EINTR (a signal landed — exercises the retry path)
///   kShort  send/recv operate on max(1, len/2) bytes (a torn frame);
///           connect treats kShort as kFail; poll reports 0 ready fds (a
///           spurious wakeup the caller must tolerate)
///   kStall  sleeps the injector's stall period, then fails with EAGAIN —
///           what a wedged peer looks like to a nonblocking caller; poll
///           instead returns 0 after the sleep (a timeout tick)
///   kEof    recv returns 0 (clean close); send EPIPE; connect
///           ECONNREFUSED; poll reports 0 ready fds

ssize_t Send(int fd, const void* buf, size_t len, int flags,
             FaultInjectionSocket* fault = nullptr);

ssize_t Recv(int fd, void* buf, size_t len, int flags,
             FaultInjectionSocket* fault = nullptr);

int Connect(int fd, const sockaddr* addr, socklen_t addr_len,
            FaultInjectionSocket* fault = nullptr);

int Poll(pollfd* fds, nfds_t nfds, int timeout_ms,
         FaultInjectionSocket* fault = nullptr);

}  // namespace sttr::net

#endif  // STTR_UTIL_SOCKET_IO_H_
