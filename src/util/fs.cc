#include "util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace sttr {

namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Status Env::WriteFile(const std::string& path, std::string_view data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("cannot open", path);
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = ErrnoError("write failed", path);
      ::close(fd);
      return s;
    }
    written += static_cast<size_t>(n);
  }
  if (::close(fd) != 0) return ErrnoError("close failed", path);
  return Status::OK();
}

StatusOr<std::string> Env::ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("cannot open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = ErrnoError("read failed", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status Env::Fsync(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("cannot open for fsync", path);
  if (::fsync(fd) != 0) {
    const Status s = ErrnoError("fsync failed", path);
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

Status Env::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoError("rename failed", from + " -> " + to);
  }
  return Status::OK();
}

Status Env::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return ErrnoError("unlink failed", path);
  return Status::OK();
}

Status Env::CreateDir(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  // mkdir -p: create each prefix in turn, tolerating existing directories.
  for (size_t pos = 1; pos <= path.size(); ++pos) {
    if (pos != path.size() && path[pos] != '/') continue;
    const std::string prefix = path.substr(0, pos);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoError("mkdir failed", prefix);
    }
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("not a directory: " + path);
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> Env::ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return ErrnoError("cannot open directory", path);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    // Regular files only, as documented: checkpoint discovery must not trip
    // over subdirectories (d_type can be DT_UNKNOWN on some filesystems, so
    // fall back to stat).
    if (entry->d_type == DT_UNKNOWN) {
      struct stat st;
      if (::stat((path + "/" + name).c_str(), &st) != 0 ||
          !S_ISREG(st.st_mode)) {
        continue;
      }
    } else if (entry->d_type != DT_REG) {
      continue;
    }
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

bool Env::FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status Env::SyncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("cannot open directory for fsync", path);
  if (::fsync(fd) != 0) {
    const Status s = ErrnoError("directory fsync failed", path);
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

Env* Env::Default() {
  static Env* env = new Env();
  return env;
}

Status AtomicWriteFile(Env& env, const std::string& path,
                       std::string_view data) {
  // The temp file lives in the target directory so the rename cannot cross
  // filesystems (which would lose atomicity). The pid suffix keeps
  // concurrent writers from clobbering each other's temp files.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  STTR_RETURN_IF_ERROR(env.WriteFile(tmp, data));
  STTR_RETURN_IF_ERROR(env.Fsync(tmp));
  STTR_RETURN_IF_ERROR(env.Rename(tmp, path));
  return env.SyncDir(DirName(path));
}

std::string DirName(const std::string& path) {
  const size_t pos = path.find_last_of('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

std::string BaseName(const std::string& path) {
  const size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

bool IsTempFileName(const std::string& name) {
  return name.find(".tmp.") != std::string::npos;
}

}  // namespace sttr
