#ifndef STTR_UTIL_SOCKET_FAULT_H_
#define STTR_UTIL_SOCKET_FAULT_H_

#include <array>
#include <chrono>
#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sttr {

/// Socket-layer sibling of FaultInjectionEnv: decides, per wrapped socket
/// syscall (util/socket_io.h), whether the Nth operation of a kind should
/// fail, short-read/short-write, stall past a deadline, or behave as if the
/// peer vanished. The sharded embedding store's soak tests drive every
/// partial-failure mode of the gather protocol through this one seam —
/// which is why the project linter (raw-socket) forbids raw
/// ::connect/::send/::recv outside the wrapper: an unwrapped call would be
/// a hole fault injection cannot reach.
///
/// Thread-safe, unlike FaultInjectionEnv: the router fans out gathers from
/// concurrent scoring workers, so arming, counting and triggering are all
/// guarded by one mutex. Decisions are cheap (no IO under the lock).
class FaultInjectionSocket {
 public:
  enum class Op { kConnect = 0, kSend, kRecv, kPoll };
  static constexpr size_t kNumOps = 4;

  /// What the wrapper does instead of (or around) the real syscall.
  enum class Mode {
    kFail,   ///< errno-style failure (ECONNREFUSED / EPIPE / ECONNRESET)
    kShort,  ///< send/recv only half the requested bytes (torn frame)
    kStall,  ///< sleep `stall()`, then EAGAIN — a peer that stopped talking
    kEof,    ///< recv sees a clean close (0); send/connect see a dead peer
  };

  /// Verdict handed to the wrapper.
  struct Decision {
    bool fire = false;
    Mode mode = Mode::kFail;
    std::chrono::milliseconds stall{0};
  };

  FaultInjectionSocket() = default;

  /// Arms the `n`th (0-based, counted from now) operation of kind `op` to
  /// misbehave as `mode`. One one-shot fault per op kind at a time.
  void FailNth(Op op, size_t n, Mode mode = Mode::kFail) EXCLUDES(mu_);

  /// Every operation of kind `op` misbehaves as `mode` until Clear/Reset —
  /// a shard that is down (kFail/kEof) or wedged (kStall).
  void FailAlways(Op op, Mode mode) EXCLUDES(mu_);

  /// Disarms kind `op` (both one-shot and always), keeping counters.
  void Clear(Op op) EXCLUDES(mu_);

  /// Clears all faults and counters.
  void Reset() EXCLUDES(mu_);

  /// How long a kStall decision sleeps before EAGAIN (default 50ms); keep
  /// it comfortably past the deadline under test.
  void set_stall(std::chrono::milliseconds stall) EXCLUDES(mu_);

  /// Operations of kind `op` decided since the last Reset().
  size_t op_count(Op op) const EXCLUDES(mu_);

  /// Injected faults triggered since the last Reset().
  size_t faults_triggered() const EXCLUDES(mu_);

  /// Called by the socket wrapper before the real syscall. Advances the op
  /// counter and reports whether (and how) this call must misbehave.
  Decision Apply(Op op) EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::array<size_t, kNumOps> counts_ GUARDED_BY(mu_){};
  std::array<bool, kNumOps> armed_ GUARDED_BY(mu_){};
  std::array<size_t, kNumOps> fail_at_ GUARDED_BY(mu_){};
  std::array<Mode, kNumOps> nth_mode_ GUARDED_BY(mu_){};
  std::array<bool, kNumOps> always_ GUARDED_BY(mu_){};
  std::array<Mode, kNumOps> always_mode_ GUARDED_BY(mu_){};
  size_t faults_triggered_ GUARDED_BY(mu_) = 0;
  std::chrono::milliseconds stall_ GUARDED_BY(mu_){50};
};

}  // namespace sttr

#endif  // STTR_UTIL_SOCKET_FAULT_H_
