#ifndef STTR_UTIL_LOGGING_H_
#define STTR_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sttr {

/// Severity levels for the project logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One log statement; flushes a single line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sttr

/// Streaming log macros; one line per statement, level-filtered at runtime.
#define STTR_LOG(level)                                             \
  ::sttr::internal::LogMessage(::sttr::LogLevel::k##level, __FILE__, \
                               __LINE__)

#endif  // STTR_UTIL_LOGGING_H_
