#ifndef STTR_UTIL_RNG_H_
#define STTR_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace sttr {

/// Deterministic, seedable pseudo-random generator (xoshiro256**) with the
/// sampling helpers the project needs. All randomness in the repository flows
/// through Rng so every experiment is reproducible from a single seed.
///
/// Not thread-safe; give each worker its own Rng (see Split()).
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Derives an independent generator for a worker/stream; deterministic in
  /// (current state, stream_id).
  Rng Split(uint64_t stream_id);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi). Precondition: lo < hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples an index proportionally to the non-negative `weights`.
  /// Precondition: at least one weight > 0.
  size_t Discrete(const std::vector<double>& weights);

  /// Samples from a symmetric Dirichlet(alpha) of dimension `dim`.
  std::vector<double> Dirichlet(double alpha, size_t dim);

  /// Gamma(shape, 1) via Marsaglia-Tsang.
  double Gamma(double shape);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (reservoir if k << n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Raw xoshiro256** state, for checkpointing. A generator restored with
  /// set_state() continues the exact stream it was captured from.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& s);

 private:
  uint64_t s_[4];
};

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
/// Build is O(n); used for word negative sampling and region/POI resampling.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from non-negative weights. Precondition: sum(weights) > 0.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace sttr

#endif  // STTR_UTIL_RNG_H_
