#ifndef STTR_UTIL_FAULT_INJECTION_H_
#define STTR_UTIL_FAULT_INJECTION_H_

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

#include "util/fs.h"

namespace sttr {

/// Env decorator that fails the Nth operation of a chosen kind with an
/// IOError, simulating crashes and full disks at every point of the
/// atomic-write protocol. Used by the checkpoint fault-injection tests to
/// prove that a failure at any step leaves the previous checkpoint intact.
///
/// Not thread-safe; intended for single-threaded test drivers (the
/// checkpoint writer runs on one thread even under ParallelTrainer).
class FaultInjectionEnv : public Env {
 public:
  enum class Op { kWrite = 0, kFsync, kRename, kRemove, kRead };
  static constexpr size_t kNumOps = 5;

  explicit FaultInjectionEnv(Env* base = Env::Default()) : base_(base) {}

  /// Schedules the `n`th (0-based, counted from now) operation of kind `op`
  /// to fail. One fault per op kind at a time.
  void FailNth(Op op, size_t n);

  /// Clears all scheduled faults and counters.
  void Reset();

  /// When enabled, an injected write fault still writes the first half of
  /// the data before failing — a torn write, the worst case a crash mid
  /// write() can leave behind.
  void set_torn_writes(bool torn) { torn_writes_ = torn; }

  /// Operations of kind `op` attempted since the last Reset().
  size_t op_count(Op op) const { return counts_[static_cast<size_t>(op)]; }

  /// Injected faults triggered since the last Reset().
  size_t faults_triggered() const { return faults_triggered_; }

  Status WriteFile(const std::string& path, std::string_view data) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status Fsync(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  /// Advances the op counter; true when this call must fail.
  bool ShouldFail(Op op);

  Env* base_;
  std::array<size_t, kNumOps> counts_{};
  std::array<bool, kNumOps> armed_{};
  std::array<size_t, kNumOps> fail_at_{};
  size_t faults_triggered_ = 0;
  bool torn_writes_ = false;
};

}  // namespace sttr

#endif  // STTR_UTIL_FAULT_INJECTION_H_
