#include "util/cpu_features.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>
#define STTR_CPUID_AVAILABLE 1
#endif

namespace sttr {

namespace {

#ifdef STTR_CPUID_AVAILABLE

/// XCR0 via xgetbv; callable only after confirming OSXSAVE in cpuid, which
/// guarantees the instruction exists.
uint64_t ReadXcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

#endif  // STTR_CPUID_AVAILABLE

}  // namespace

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#ifdef STTR_CPUID_AVAILABLE
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  f.fma = (ecx & bit_FMA) != 0;
  f.avx = (ecx & bit_AVX) != 0;
  // XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be set: the OS has
  // opted into saving the wide registers across context switches.
  f.os_ymm = osxsave && (ReadXcr0() & 0x6) == 0x6;
  // AVX2 lives in leaf 7 subleaf 0.
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & bit_AVX2) != 0;
  }
#endif
  return f;
}

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = DetectCpuFeatures();
  return features;
}

bool SimdAllowed(const CpuFeatures& features, bool force_scalar) {
  return features.SimdOk() && !force_scalar;
}

bool HostSimdAllowed() {
  static const bool allowed = [] {
    const char* force = std::getenv("STTR_FORCE_SCALAR");
    const bool force_scalar =
        force != nullptr && *force != '\0' && std::strcmp(force, "0") != 0;
    return SimdAllowed(HostCpuFeatures(), force_scalar);
  }();
  return allowed;
}

}  // namespace sttr
