#ifndef STTR_UTIL_FS_H_
#define STTR_UTIL_FS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sttr {

/// Small filesystem abstraction the durability-sensitive code (checkpointing)
/// goes through instead of touching POSIX directly. Every primitive that the
/// atomic-write protocol depends on — write, fsync, rename, remove — is a
/// separate virtual so a fault-injecting implementation can fail each one
/// independently (see util/fault_injection.h).
class Env {
 public:
  virtual ~Env() = default;

  /// Creates/truncates `path` and writes `data` (no fsync).
  virtual Status WriteFile(const std::string& path, std::string_view data);

  /// Whole-file read.
  virtual StatusOr<std::string> ReadFile(const std::string& path);

  /// Flushes `path`'s contents to stable storage (fsync).
  virtual Status Fsync(const std::string& path);

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to);

  /// Deletes a file.
  virtual Status Remove(const std::string& path);

  /// Creates `path` and any missing parents (mkdir -p). OK if it exists.
  virtual Status CreateDir(const std::string& path);

  /// Names (not paths) of regular files in `path`, sorted.
  virtual StatusOr<std::vector<std::string>> ListDir(const std::string& path);

  virtual bool FileExists(const std::string& path);

  /// Flushes directory metadata (the rename itself) to stable storage.
  virtual Status SyncDir(const std::string& path);

  /// Process-wide POSIX implementation.
  static Env* Default();
};

/// Crash-safe file replacement: write `<path>.tmp.<suffix>` → fsync → rename
/// over `path` → fsync the directory. After a crash at any step, `path` holds
/// either its previous contents or the complete new contents, never a torn
/// mix; a leftover `*.tmp.*` file is the only possible residue.
Status AtomicWriteFile(Env& env, const std::string& path,
                       std::string_view data);

/// Directory part of `path` ("." when there is no separator).
std::string DirName(const std::string& path);

/// Final component of `path`.
std::string BaseName(const std::string& path);

/// True when `name` looks like an AtomicWriteFile temp file.
bool IsTempFileName(const std::string& name);

}  // namespace sttr

#endif  // STTR_UTIL_FS_H_
