#ifndef STTR_UTIL_MUTEX_H_
#define STTR_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace sttr {

/// std::mutex wrapped as a Clang thread-safety CAPABILITY, so members can be
/// GUARDED_BY it and helpers can REQUIRES it. This is the only place in the
/// project allowed to hold a raw std::mutex / std::condition_variable
/// (sttr_lint.py rule raw-mutex); everything concurrent builds on this
/// wrapper so the whole tree is visible to `-Wthread-safety`.
///
/// Zero overhead: every method is an inline forward to the std primitive,
/// and off-Clang the annotations vanish entirely.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the lock is held at a point it cannot prove
  /// statically (e.g. inside a callback invoked under the lock).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated as a SCOPED_CAPABILITY so the analysis
/// tracks its scope exactly like std::lock_guard's.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to sttr::Mutex (the LevelDB port idiom: adopt
/// the already-held native mutex for the wait, release it back afterwards so
/// the capability stays with the caller). Predicate re-checks are written as
/// explicit `while (!pred) cv.Wait(mu);` loops at the call sites — unlike a
/// predicate lambda, the loop body is inside the annotated function, so the
/// analysis verifies the guarded reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires it before returning.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Wait() with a deadline; returns false when the deadline passed.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Wait() with a timeout; returns false when it expired.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sttr

#endif  // STTR_UTIL_MUTEX_H_
