#ifndef STTR_UTIL_CHECK_H_
#define STTR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sttr::internal {

/// Aborts the process with a formatted diagnostic. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

/// Stream sink used by the STTR_CHECK macros to collect an optional message.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace sttr::internal

/// Fatal assertion for programmer errors (violated API contracts). Active in
/// all build modes; failures abort with file/line and the failed expression.
/// Usage: STTR_CHECK(i < size()) << "index " << i;
#define STTR_CHECK(cond)                                               \
  while (!(cond))                                                      \
  ::sttr::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define STTR_CHECK_EQ(a, b) STTR_CHECK((a) == (b))
#define STTR_CHECK_NE(a, b) STTR_CHECK((a) != (b))
#define STTR_CHECK_LT(a, b) STTR_CHECK((a) < (b))
#define STTR_CHECK_LE(a, b) STTR_CHECK((a) <= (b))
#define STTR_CHECK_GT(a, b) STTR_CHECK((a) > (b))
#define STTR_CHECK_GE(a, b) STTR_CHECK((a) >= (b))

/// Checks that a Status-returning expression is OK; aborts otherwise.
#define STTR_CHECK_OK(expr)                                       \
  do {                                                            \
    ::sttr::Status _s = (expr);                                   \
    STTR_CHECK(_s.ok()) << _s.ToString();                         \
  } while (0)

#endif  // STTR_UTIL_CHECK_H_
