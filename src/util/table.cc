#include "util/table.h"

#include <algorithm>
#include <fstream>

#include "util/check.h"

namespace sttr {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  STTR_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  STTR_CHECK_EQ(row.size(), header_.size())
      << "row arity mismatch with header";
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(width[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out.append(total - 2, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::ToCsv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line.push_back(',');
      line += row[c];
    }
    line.push_back('\n');
    return line;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

Status TextTable::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  f << ToCsv();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace sttr
