#ifndef STTR_UTIL_FLAGS_H_
#define STTR_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace sttr {

/// Minimal command-line flag parser used by examples and benchmark drivers.
///
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean true).
/// Unrecognised positional arguments are collected in positional().
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on malformed flags.
  Status Parse(int argc, char** argv);

  /// True if the flag appeared on the command line.
  bool Has(const std::string& name) const;

  /// Typed getters with defaults.
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sttr

#endif  // STTR_UTIL_FLAGS_H_
