#ifndef STTR_UTIL_FLAGS_H_
#define STTR_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace sttr {

/// Minimal command-line flag parser used by examples, tools and benchmark
/// drivers.
///
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean true).
/// Unrecognised positional arguments are collected in positional().
///
/// Tools that want a generated `--help` register their flags up front:
///
///   FlagParser flags;
///   flags.Define("port", "TCP port to listen on (0 = ephemeral)", "0");
///   STTR_CHECK_OK(flags.Parse(argc, argv));
///   if (flags.Has("help")) { std::fputs(flags.HelpText(...).c_str(), ...); }
///
/// Define() is optional — undeclared flags still parse (the benches rely on
/// that) — but only defined flags appear in HelpText().
class FlagParser {
 public:
  /// Registers a flag for HelpText(). `default_help` is display-only (shown
  /// as the default); it does not affect the Get*() defaults.
  void Define(const std::string& name, const std::string& description,
              const std::string& default_help = "");

  /// Parses argv; returns InvalidArgument on malformed flags.
  Status Parse(int argc, char** argv);

  /// True if the flag appeared on the command line.
  bool Has(const std::string& name) const;

  /// Typed getters with defaults.
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Generated usage text: `usage` line, `summary` paragraph, then one
  /// aligned row per Define()d flag (in registration order) plus the
  /// implicit --help row.
  std::string HelpText(const std::string& program,
                       const std::string& usage = "",
                       const std::string& summary = "") const;

 private:
  struct FlagSpec {
    std::string name;
    std::string description;
    std::string default_help;
  };

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<FlagSpec> specs_;
};

}  // namespace sttr

#endif  // STTR_UTIL_FLAGS_H_
