#ifndef STTR_UTIL_TIMER_H_
#define STTR_UTIL_TIMER_H_

#include <chrono>

namespace sttr {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sttr

#endif  // STTR_UTIL_TIMER_H_
