#include "util/check.h"

namespace sttr::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "[FATAL] %s:%d: STTR_CHECK(%s) failed", file, line,
               expr);
  if (!extra.empty()) std::fprintf(stderr, ": %s", extra.c_str());
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace sttr::internal
