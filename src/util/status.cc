#include "util/status.h"

namespace sttr {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sttr
