#ifndef STTR_UTIL_STATUS_H_
#define STTR_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace sttr {

/// Error category carried by a Status. Mirrors the RocksDB convention of a
/// small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation. Cheap to copy when OK (no allocation).
///
/// Library code in this project does not throw; any operation that can fail
/// for reasons other than programmer error returns Status (or StatusOr<T>).
///
/// [[nodiscard]] at class level: a discarded Status is an error path that
/// silently never happens, so every by-value return must be consumed (or
/// explicitly voided at the call site).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Callers must check ok()
/// before dereferencing.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value and from error status, mirroring absl::StatusOr.
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status)                            // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Error status; OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status out of the current function.
#define STTR_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::sttr::Status _sttr_status = (expr);       \
    if (!_sttr_status.ok()) return _sttr_status; \
  } while (0)

}  // namespace sttr

#endif  // STTR_UTIL_STATUS_H_
