#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace sttr {

ThreadPool::ThreadPool(size_t num_threads) {
  STTR_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    STTR_CHECK(!shutting_down_) << "Submit() after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = std::min(n, threads_.size());
  const size_t chunk = (n + shards - 1) / shards;
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sttr
