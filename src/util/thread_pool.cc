#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"
#include "util/logging.h"

namespace sttr {

namespace {

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  STTR_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    STTR_CHECK(!shutting_down_) << "Submit() after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  // ~4 chunks per worker balances load without per-index dispatch cost.
  const size_t grain =
      std::max<size_t>(1, n / (4 * std::max<size_t>(1, threads_.size())));
  ParallelForChunked(n, grain, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunked(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(1, grain);
  if (n <= grain || InWorker()) {
    // Single chunk, or already on a pool worker: run inline rather than
    // nesting pools (a worker blocking in Wait() could starve the queue).
    fn(0, n);
    return;
  }
  for (size_t begin = 0; begin < n; begin += grain) {
    const size_t end = std::min(n, begin + grain);
    Submit([begin, end, &fn] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

size_t DefaultNumThreads() {
  if (const char* env = std::getenv("STTR_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
    STTR_LOG(Warning) << "STTR_NUM_THREADS='" << env
                      << "' is not a positive integer; falling back to "
                         "hardware_concurrency()";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool& GlobalThreadPool() {
  // Leaked on purpose: joining workers during static destruction races
  // with other exit-time teardown, and the OS reclaims the threads anyway.
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

}  // namespace sttr
