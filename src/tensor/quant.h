#ifndef STTR_TENSOR_QUANT_H_
#define STTR_TENSOR_QUANT_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace sttr {

/// Per-row quantization scheme of a RowQuantizedMatrix.
enum class QuantScheme : uint8_t {
  /// x ~ scale * q, zero point fixed at 0. Best for zero-centred data
  /// (Gaussian-initialised embeddings); wastes half the range on skewed
  /// rows.
  kSymmetric = 0,
  /// x ~ scale * (q - zero_point): the full int8 range covers exactly
  /// [row_min, row_max].
  kAffine = 1,
};

const char* QuantSchemeName(QuantScheme scheme);

/// A row-major fp32 matrix quantized to int8 with one scale (and, for
/// kAffine, one zero point) per row. Values are clamped to [-127, 127] —
/// never -128 — which is what keeps the AVX2 maddubs dot product
/// (simd::DotI8) saturation-free; see tensor/simd.h.
///
/// Dequantization: x = scale[r] * (q - zero_point[r]), with zero_point == 0
/// everywhere under kSymmetric (the vector is not stored).
struct RowQuantizedMatrix {
  size_t rows = 0;
  size_t cols = 0;
  QuantScheme scheme = QuantScheme::kSymmetric;
  std::vector<int8_t> data;        ///< rows * cols, row-major
  std::vector<float> scales;       ///< per row, > 0
  std::vector<int32_t> zero_points;  ///< per row (empty under kSymmetric)

  const int8_t* row(size_t r) const { return data.data() + r * cols; }
  float scale(size_t r) const { return scales[r]; }
  int32_t zero_point(size_t r) const {
    return scheme == QuantScheme::kAffine ? zero_points[r] : 0;
  }

  /// Resident bytes of the quantized representation (data + per-row
  /// metadata), the number the fp32 4*rows*cols is compared against.
  size_t ByteSize() const;

  /// Dequantizes row `r` into out[0..cols).
  void DequantizeRowInto(size_t r, float* out) const;

  /// Whole-matrix dequantization (tests / inspection; serving never needs
  /// the fp32 table back).
  Tensor Dequantize() const;

  /// Binary write/read, same stream style as Tensor::Serialize.
  Status Serialize(std::ostream& out) const;
  static StatusOr<RowQuantizedMatrix> Deserialize(std::istream& in);
};

/// Quantizes a 2-D fp32 tensor per row. Round-trip error per entry is
/// bounded by scale[r]/2 (round-to-nearest), where scale[r] is max|row|/127
/// (symmetric) or (row_max-row_min)/254 (affine) — except that under
/// kAffine a row's extreme values can lose one extra step to the clamp when
/// the zero-point rounding and the value rounding collide, for a worst case
/// of 1.5 * scale[r]. Degenerate rows (constant, or all zero) encode
/// exactly.
RowQuantizedMatrix QuantizeRows(const Tensor& m, QuantScheme scheme);

/// IEEE 754 binary16 storage conversions, round-to-nearest-even on the way
/// down (overflow to inf, subnormals handled on both sides). Software-only
/// on purpose — no F16C dependency — since they run at checkpoint
/// write/load time, never in the scoring hot path.
uint16_t FloatToHalf(float f);
float HalfToFloat(uint16_t h);

}  // namespace sttr

#endif  // STTR_TENSOR_QUANT_H_
