#ifndef STTR_TENSOR_SIMD_H_
#define STTR_TENSOR_SIMD_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

// Single dispatch point for the hand-vectorised training hot loops — axpy
// (gradient all-reduce), the optimiser row updates (lazy Adam / AdaGrad /
// SGD), the sigmoid / BCE-with-logits forward — and the int8 inference
// kernels of the quantized serving path. STTR_SIMD is defined when the
// target supports AVX2+FMA (any x86 since Haswell under -march=native)
// unless the build opts out with -DSTTR_NO_SIMD (cmake -DSTTR_SIMD=OFF).
//
// Every kernel has a scalar form, compiled unconditionally: it is the whole
// implementation when the gate is off, it handles the sub-vector tail when
// the gate is on, and the tests use it as the reference the vector path is
// checked against. Within one build every kernel is a pure elementwise
// function of its inputs, so results are deterministic across runs and
// thread counts; across builds (SIMD on vs off) values may differ in final
// ulps from FMA contraction and the vector exp/log polynomials.
//
// Dispatch is two-staged: the compile-time gate above decides whether the
// vector bodies exist in the binary at all, and RuntimeEnabled() (cpuid via
// util/cpu_features.h) decides per process whether they are executed — an
// AVX2-built binary on a core without AVX2/FMA, or with OS YMM state saving
// disabled, silently takes the scalar path instead of faulting.
#if defined(__AVX2__) && defined(__FMA__) && !defined(STTR_NO_SIMD)
#define STTR_SIMD 1
#include <immintrin.h>
#endif

namespace sttr::simd {

/// True when this build contains the AVX2/FMA kernel bodies (compile-time
/// half of the dispatch; says nothing about the host CPU).
constexpr bool Enabled() {
#ifdef STTR_SIMD
  return true;
#else
  return false;
#endif
}

/// True when the vector kernels are compiled in AND the host CPU can run
/// them (cpuid-detected AVX2+FMA with OS YMM support, not overridden by
/// STTR_FORCE_SCALAR). Detected once and cached.
inline bool RuntimeEnabled() {
#ifdef STTR_SIMD
  static const bool enabled = HostSimdAllowed();
  return enabled;
#else
  return false;
#endif
}

// ---- Scalar reference kernels ----------------------------------------------

/// y[i] += alpha * x[i].
inline void AxpyScalar(float* y, const float* x, float alpha, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// Numerically stable logistic sigmoid of one element.
inline float SigmoidOne(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

/// log(sigmoid(x)) = -softplus(-x), computed stably.
inline float LogSigmoidOne(float x) {
  return std::min(x, 0.0f) - std::log1p(std::exp(-std::fabs(x)));
}

/// One stable BCE-with-logits term: -[y log s + (1-y) log(1-s)].
inline double BceTermScalar(float x, float y) {
  return -static_cast<double>(y) * LogSigmoidOne(x) -
         static_cast<double>(1.0f - y) * LogSigmoidOne(-x);
}

inline void SigmoidManyScalar(float* out, const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = SigmoidOne(x[i]);
}

inline double BceWithLogitsSumScalar(const float* x, const float* y,
                                     size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += BceTermScalar(x[i], y[i]);
  return acc;
}

/// One Adam row update with precomputed bias corrections bc1/bc2.
inline void AdamRowScalar(float* w, float* m, float* v, const float* g,
                          size_t n, float lr, float beta1, float beta2,
                          float bc1, float bc2, float eps) {
  for (size_t j = 0; j < n; ++j) {
    m[j] = beta1 * m[j] + (1.0f - beta1) * g[j];
    v[j] = beta2 * v[j] + (1.0f - beta2) * g[j] * g[j];
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

inline void AdaGradRowScalar(float* w, float* acc, const float* g, size_t n,
                             float lr, float eps) {
  for (size_t j = 0; j < n; ++j) {
    acc[j] += g[j] * g[j];
    w[j] -= lr * g[j] / (std::sqrt(acc[j]) + eps);
  }
}

inline void SgdRowScalar(float* w, const float* g, size_t n, float lr) {
  for (size_t j = 0; j < n; ++j) w[j] -= lr * g[j];
}

// ---- Scalar int8 reference kernels ------------------------------------------
// Inputs must lie in [-127, 127] (the quantizer clamps there; see
// tensor/quant.h). Excluding -128 keeps |a[i]*b[i]| + |a[i+1]*b[i+1]| <=
// 2*127*127 = 32258 < 32767, so the AVX2 maddubs pair-sum below can never
// saturate and vector == scalar exactly.

/// sum_i a[i] * b[i] in int32. Exact for n < ~133k at the +/-127 input
/// bound (n * 127^2 < 2^31); embedding widths are orders of magnitude
/// smaller.
inline int32_t DotI8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

/// sum_i v[i] in int32 (per-column weight sums for the affine zero-point
/// correction). Quantize-time only, so no vector form.
inline int32_t SumI8Scalar(const int8_t* v, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) acc += static_cast<int32_t>(v[i]);
  return acc;
}

#ifdef STTR_SIMD

namespace internal {

/// exp(x) on 8 lanes, Cephes-style polynomial (|rel err| ~1e-7 over the
/// clamped range [-88.4, 88.4], which covers every finite-sigmoid input).
inline __m256 Exp256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  x = _mm256_min_ps(x, _mm256_set1_ps(88.3762626647950f));
  x = _mm256_max_ps(x, _mm256_set1_ps(-88.3762626647949f));
  // Range reduction: x = fx*log(2) + r with fx integral, |r| <= log(2)/2.
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, one));
  // Scale by 2^fx through the exponent bits.
  const __m256i emm0 = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvttps_epi32(fx), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(emm0));
}

/// log(x) on 8 lanes for strictly positive finite inputs (Cephes polynomial
/// after mantissa/exponent split). Callers here only pass x in (1, 2].
inline __m256 Log256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  __m256i imm0 = _mm256_srli_epi32(_mm256_castps_si256(x), 23);
  imm0 = _mm256_sub_epi32(imm0, _mm256_set1_epi32(0x7f));
  __m256 e = _mm256_add_ps(_mm256_cvtepi32_ps(imm0), one);
  // Mantissa in [0.5, 1).
  x = _mm256_and_ps(x, _mm256_castsi256_ps(_mm256_set1_epi32(
                           static_cast<int>(~0x7f800000u))));
  x = _mm256_or_ps(x, half);
  // If mantissa < sqrt(1/2): e -= 1 and mantissa doubles (x = 2x - 1 form).
  const __m256 mask =
      _mm256_cmp_ps(x, _mm256_set1_ps(0.707106781186547524f), _CMP_LT_OQ);
  const __m256 tmp = _mm256_and_ps(x, mask);
  x = _mm256_sub_ps(x, one);
  e = _mm256_sub_ps(e, _mm256_and_ps(one, mask));
  x = _mm256_add_ps(x, tmp);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(7.0376836292e-2f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.1514610310e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.1676998740e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.2420140846e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.4249322787e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.6668057665e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(2.0000714765e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-2.4999993993e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(3.3333331174e-1f));
  y = _mm256_mul_ps(_mm256_mul_ps(y, x), z);
  y = _mm256_fmadd_ps(e, _mm256_set1_ps(-2.12194440e-4f), y);
  y = _mm256_fnmadd_ps(half, z, y);
  x = _mm256_add_ps(x, y);
  return _mm256_fmadd_ps(e, _mm256_set1_ps(0.693359375f), x);
}

inline __m256 Abs256(__m256 x) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), x);
}

}  // namespace internal

#endif  // STTR_SIMD

// ---- Dispatching kernels ----------------------------------------------------

/// y[i] += alpha * x[i]; the all-reduce / SGD primitive.
inline void Axpy(float* y, const float* x, float alpha, size_t n) {
#ifdef STTR_SIMD
  if (!RuntimeEnabled()) return AxpyScalar(y, x, alpha, n);
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  AxpyScalar(y + i, x + i, alpha, n - i);
#else
  AxpyScalar(y, x, alpha, n);
#endif
}

/// out[i] = sigmoid(x[i]) (stable for any finite input); in-place allowed.
inline void SigmoidMany(float* out, const float* x, size_t n) {
#ifdef STTR_SIMD
  if (!RuntimeEnabled()) return SigmoidManyScalar(out, x, n);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 z = internal::Exp256(_mm256_sub_ps(zero, internal::Abs256(v)));
    const __m256 denom = _mm256_add_ps(one, z);
    const __m256 pos = _mm256_div_ps(one, denom);
    const __m256 neg = _mm256_div_ps(z, denom);
    const __m256 ge = _mm256_cmp_ps(v, zero, _CMP_GE_OQ);
    _mm256_storeu_ps(out + i, _mm256_blendv_ps(neg, pos, ge));
  }
  SigmoidManyScalar(out + i, x + i, n - i);
#else
  SigmoidManyScalar(out, x, n);
#endif
}

/// Sum over i of the stable BCE-with-logits term for (logit x[i], label
/// y[i]). Vector lanes are reduced into the double accumulator in index
/// order per 8-wide block, so the result is deterministic per build.
inline double BceWithLogitsSum(const float* x, const float* y, size_t n) {
#ifdef STTR_SIMD
  if (!RuntimeEnabled()) return BceWithLogitsSumScalar(x, y, n);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  double acc = 0.0;
  alignas(32) float buf[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 yv = _mm256_loadu_ps(y + i);
    // t = log1p(exp(-|x|)); term = t - y*min(x,0) - (1-y)*min(-x,0).
    const __m256 t = internal::Log256(_mm256_add_ps(
        one, internal::Exp256(_mm256_sub_ps(zero, internal::Abs256(v)))));
    __m256 term =
        _mm256_sub_ps(t, _mm256_mul_ps(yv, _mm256_min_ps(v, zero)));
    term = _mm256_sub_ps(
        term, _mm256_mul_ps(_mm256_sub_ps(one, yv),
                            _mm256_min_ps(_mm256_sub_ps(zero, v), zero)));
    _mm256_store_ps(buf, term);
    for (int lane = 0; lane < 8; ++lane) acc += buf[lane];
  }
  for (; i < n; ++i) acc += BceTermScalar(x[i], y[i]);
  return acc;
#else
  return BceWithLogitsSumScalar(x, y, n);
#endif
}

/// Lazy-Adam inner loop over one row (or a whole dense tensor): updates
/// first/second moments m/v and the weights w from gradient g. bc1/bc2 are
/// the step's bias corrections 1-beta^t.
inline void AdamRow(float* w, float* m, float* v, const float* g, size_t n,
                    float lr, float beta1, float beta2, float bc1, float bc2,
                    float eps) {
#ifdef STTR_SIMD
  if (!RuntimeEnabled()) {
    return AdamRowScalar(w, m, v, g, n, lr, beta1, beta2, bc1, bc2, eps);
  }
  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 vomb1 = _mm256_set1_ps(1.0f - beta1);
  const __m256 vomb2 = _mm256_set1_ps(1.0f - beta2);
  const __m256 vbc1 = _mm256_set1_ps(bc1);
  const __m256 vbc2 = _mm256_set1_ps(bc2);
  const __m256 veps = _mm256_set1_ps(eps);
  const __m256 vlr = _mm256_set1_ps(lr);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 gv = _mm256_loadu_ps(g + j);
    const __m256 mv =
        _mm256_fmadd_ps(vb1, _mm256_loadu_ps(m + j), _mm256_mul_ps(vomb1, gv));
    const __m256 vv = _mm256_fmadd_ps(
        vb2, _mm256_loadu_ps(v + j), _mm256_mul_ps(vomb2, _mm256_mul_ps(gv, gv)));
    _mm256_storeu_ps(m + j, mv);
    _mm256_storeu_ps(v + j, vv);
    const __m256 upd = _mm256_div_ps(
        _mm256_mul_ps(vlr, _mm256_div_ps(mv, vbc1)),
        _mm256_add_ps(_mm256_sqrt_ps(_mm256_div_ps(vv, vbc2)), veps));
    _mm256_storeu_ps(w + j, _mm256_sub_ps(_mm256_loadu_ps(w + j), upd));
  }
  AdamRowScalar(w + j, m + j, v + j, g + j, n - j, lr, beta1, beta2, bc1, bc2,
                eps);
#else
  AdamRowScalar(w, m, v, g, n, lr, beta1, beta2, bc1, bc2, eps);
#endif
}

/// AdaGrad inner loop over one row (or a whole dense tensor).
inline void AdaGradRow(float* w, float* acc, const float* g, size_t n,
                       float lr, float eps) {
#ifdef STTR_SIMD
  if (!RuntimeEnabled()) return AdaGradRowScalar(w, acc, g, n, lr, eps);
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 veps = _mm256_set1_ps(eps);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 gv = _mm256_loadu_ps(g + j);
    const __m256 av = _mm256_fmadd_ps(gv, gv, _mm256_loadu_ps(acc + j));
    _mm256_storeu_ps(acc + j, av);
    const __m256 upd = _mm256_div_ps(
        _mm256_mul_ps(vlr, gv), _mm256_add_ps(_mm256_sqrt_ps(av), veps));
    _mm256_storeu_ps(w + j, _mm256_sub_ps(_mm256_loadu_ps(w + j), upd));
  }
  AdaGradRowScalar(w + j, acc + j, g + j, n - j, lr, eps);
#else
  AdaGradRowScalar(w, acc, g, n, lr, eps);
#endif
}

/// Momentum-free SGD: w -= lr * g.
inline void SgdRow(float* w, const float* g, size_t n, float lr) {
  Axpy(w, g, -lr, n);
}

// ---- Int8 inference kernels -------------------------------------------------

/// sum_i a[i] * b[i] in int32; inputs in [-127, 127] (see DotI8Scalar).
/// AVX2 path: |a| (u8) x sign(b, a) (s8) through maddubs pair-sums into
/// int16 — saturation-free at the +/-127 bound — then madd into 8 int32
/// accumulator lanes reduced in lane order, so vector == scalar exactly.
inline int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
#ifdef STTR_SIMD
  if (!RuntimeEnabled()) return DotI8Scalar(a, b, n);
  const __m256i ones16 = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // maddubs wants (unsigned, signed): move a's sign onto b.
    const __m256i abs_a = _mm256_abs_epi8(va);
    const __m256i sgn_b = _mm256_sign_epi8(vb, va);
    const __m256i pair16 = _mm256_maddubs_epi16(abs_a, sgn_b);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pair16, ones16));
  }
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int32_t total = 0;
  for (int lane = 0; lane < 8; ++lane) total += lanes[lane];
  return total + DotI8Scalar(a + i, b + i, n - i);
#else
  return DotI8Scalar(a, b, n);
#endif
}

/// Row-major int8 GEMM with the right-hand side pre-transposed:
/// c[i*m + j] = dot(a_row_i, b_row_j) where `a` is n rows of k and `b` is
/// m rows of k (the logical B's columns stored contiguously). This is the
/// quantized MLP's layer-0 shape: every output needs one length-k int8 dot,
/// and B (the weight) is small enough to stay cache-resident across rows.
inline void GemmI8RowMajor(const int8_t* a, const int8_t* b, int32_t* c,
                           size_t n, size_t m, size_t k) {
  for (size_t i = 0; i < n; ++i) {
    const int8_t* arow = a + i * k;
    int32_t* crow = c + i * m;
    for (size_t j = 0; j < m; ++j) crow[j] = DotI8(arow, b + j * k, k);
  }
}

}  // namespace sttr::simd

#endif  // STTR_TENSOR_SIMD_H_
