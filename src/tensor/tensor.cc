#include "tensor/tensor.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "tensor/simd.h"

namespace sttr {

size_t ShapeSize(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string ShapeToString(const std::vector<size_t>& shape) {
  std::string out;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += "x";
    out += std::to_string(shape[i]);
  }
  return out.empty() ? "scalar0" : out;
}

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(ShapeSize(shape_), 0.0f) {}

Tensor::Tensor(std::vector<size_t> shape, float fill)
    : shape_(std::move(shape)), data_(ShapeSize(shape_), fill) {}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  STTR_CHECK_EQ(ShapeSize(shape_), data_.size())
      << "shape " << ShapeToString(shape_) << " vs data size " << data_.size();
}

Tensor Tensor::RandomUniform(std::vector<size_t> shape, Rng& rng, float lo,
                             float hi) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t.data_[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::RandomNormal(std::vector<size_t> shape, Rng& rng, float mean,
                            float stddev) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t.data_[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::GlorotUniform(size_t fan_in, size_t fan_out, Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_in, fan_out}, rng, -limit, limit);
}

Tensor Tensor::Reshaped(std::vector<size_t> new_shape) const {
  STTR_CHECK_EQ(ShapeSize(new_shape), size());
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::Fill(float v) {
  for (auto& x : data_) x = v;
}

double Tensor::Sum() const {
  double s = 0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::Mean() const {
  STTR_CHECK(!empty());
  return Sum() / static_cast<double>(size());
}

double Tensor::MaxAbs() const {
  double m = 0;
  for (float x : data_) m = std::max(m, static_cast<double>(std::fabs(x)));
  return m;
}

double Tensor::SquaredL2Norm() const {
  double s = 0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return s;
}

void Tensor::AddInPlace(const Tensor& other) {
  STTR_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  STTR_CHECK(SameShape(other));
  simd::Axpy(data_.data(), other.data_.data(), alpha, data_.size());
}

void Tensor::ScaleInPlace(float alpha) {
  for (auto& x : data_) x *= alpha;
}

bool Tensor::AllClose(const Tensor& other, double rtol, double atol) const {
  if (!SameShape(other)) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double a = data_[i];
    const double b = other.data_[i];
    if (std::fabs(a - b) > atol + rtol * std::fabs(b)) return false;
  }
  return true;
}

std::string Tensor::ToString(size_t max_entries) const {
  std::ostringstream out;
  out << "Tensor[" << ShapeToString(shape_) << "]{";
  for (size_t i = 0; i < size() && i < max_entries; ++i) {
    if (i > 0) out << ", ";
    out << data_[i];
  }
  if (size() > max_entries) out << ", ...";
  out << "}";
  return out.str();
}

Status Tensor::Serialize(std::ostream& out) const {
  const uint64_t nd = shape_.size();
  out.write(reinterpret_cast<const char*>(&nd), sizeof(nd));
  for (size_t d : shape_) {
    const uint64_t v = d;
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(data_.size() * sizeof(float)));
  if (!out) return Status::IOError("tensor serialisation failed");
  return Status::OK();
}

StatusOr<Tensor> Tensor::Deserialize(std::istream& in) {
  uint64_t nd = 0;
  in.read(reinterpret_cast<char*>(&nd), sizeof(nd));
  if (!in) return Status::IOError("tensor header read failed");
  if (nd > 8) return Status::IOError("implausible tensor rank");
  std::vector<size_t> shape(nd);
  for (auto& d : shape) {
    uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in) return Status::IOError("tensor shape read failed");
    d = v;
  }
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!in) return Status::IOError("tensor payload read failed");
  return t;
}

}  // namespace sttr
