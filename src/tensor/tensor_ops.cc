#include "tensor/tensor_ops.h"

#include <cmath>

namespace sttr {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  STTR_CHECK_EQ(a.ndim(), 2u);
  STTR_CHECK_EQ(b.ndim(), 2u);
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  STTR_CHECK_EQ(k, b.rows()) << "MatMul inner dims";
  Tensor c({n, m});
  // i-k-j loop order keeps the inner loop contiguous in both B and C.
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.row(kk);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  STTR_CHECK_EQ(a.ndim(), 2u);
  STTR_CHECK_EQ(b.ndim(), 2u);
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  STTR_CHECK_EQ(n, b.rows()) << "MatMulTransA outer dims";
  Tensor c({k, m});
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* crow = c.row(kk);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  STTR_CHECK_EQ(a.ndim(), 2u);
  STTR_CHECK_EQ(b.ndim(), 2u);
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  STTR_CHECK_EQ(k, b.cols()) << "MatMulTransB inner dims";
  Tensor c({n, m});
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (size_t j = 0; j < m; ++j) {
      const float* brow = b.row(j);
      double s = 0;
      for (size_t kk = 0; kk < k; ++kk) s += static_cast<double>(arow[kk]) * brow[kk];
      crow[j] = static_cast<float>(s);
    }
  }
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  STTR_CHECK(a.SameShape(b));
  Tensor out = a;
  out.AddInPlace(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  STTR_CHECK(a.SameShape(b));
  Tensor out = a;
  out.Axpy(-1.0f, b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  STTR_CHECK(a.SameShape(b));
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor out = a;
  out.ScaleInPlace(alpha);
  return out;
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  STTR_CHECK_EQ(x.ndim(), 2u);
  const size_t n = x.rows(), m = x.cols();
  STTR_CHECK_EQ(bias.size(), m) << "bias size must match columns";
  Tensor out = x;
  for (size_t i = 0; i < n; ++i) {
    float* row = out.row(i);
    for (size_t j = 0; j < m; ++j) row[j] += bias[j];
  }
  return out;
}

Tensor ColSum(const Tensor& x) {
  STTR_CHECK_EQ(x.ndim(), 2u);
  const size_t n = x.rows(), m = x.cols();
  Tensor out({m});
  for (size_t i = 0; i < n; ++i) {
    const float* row = x.row(i);
    for (size_t j = 0; j < m; ++j) out[j] += row[j];
  }
  return out;
}

Tensor RowwiseDot(const Tensor& a, const Tensor& b) {
  STTR_CHECK(a.SameShape(b));
  STTR_CHECK_EQ(a.ndim(), 2u);
  const size_t n = a.rows(), d = a.cols();
  Tensor out({n});
  for (size_t i = 0; i < n; ++i) {
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    double s = 0;
    for (size_t j = 0; j < d; ++j) s += static_cast<double>(ra[j]) * rb[j];
    out[i] = static_cast<float>(s);
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  STTR_CHECK_EQ(a.ndim(), 2u);
  STTR_CHECK_EQ(b.ndim(), 2u);
  STTR_CHECK_EQ(a.rows(), b.rows());
  const size_t n = a.rows(), p = a.cols(), q = b.cols();
  Tensor out({n, p + q});
  for (size_t i = 0; i < n; ++i) {
    float* dst = out.row(i);
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    for (size_t j = 0; j < p; ++j) dst[j] = ra[j];
    for (size_t j = 0; j < q; ++j) dst[p + j] = rb[j];
  }
  return out;
}

Tensor SliceCols(const Tensor& x, size_t begin, size_t end) {
  STTR_CHECK_EQ(x.ndim(), 2u);
  STTR_CHECK_LE(begin, end);
  STTR_CHECK_LE(end, x.cols());
  const size_t n = x.rows(), m = end - begin;
  Tensor out({n, m});
  for (size_t i = 0; i < n; ++i) {
    const float* src = x.row(i) + begin;
    float* dst = out.row(i);
    for (size_t j = 0; j < m; ++j) dst[j] = src[j];
  }
  return out;
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices) {
  STTR_CHECK_EQ(table.ndim(), 2u);
  const size_t d = table.cols();
  Tensor out({indices.size(), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    STTR_CHECK_GE(r, 0);
    STTR_CHECK_LT(static_cast<size_t>(r), table.rows());
    const float* src = table.row(static_cast<size_t>(r));
    float* dst = out.row(i);
    for (size_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  return out;
}

void ScatterRowsAdd(Tensor& dest, const std::vector<int64_t>& indices,
                    const Tensor& src) {
  STTR_CHECK_EQ(dest.ndim(), 2u);
  STTR_CHECK_EQ(src.ndim(), 2u);
  STTR_CHECK_EQ(src.rows(), indices.size());
  STTR_CHECK_EQ(src.cols(), dest.cols());
  const size_t d = dest.cols();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    STTR_CHECK_GE(r, 0);
    STTR_CHECK_LT(static_cast<size_t>(r), dest.rows());
    float* dst = dest.row(static_cast<size_t>(r));
    const float* s = src.row(i);
    for (size_t j = 0; j < d; ++j) dst[j] += s[j];
  }
}

Tensor Relu(const Tensor& x) {
  Tensor out = x;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0) out[i] = 0;
  }
  return out;
}

float SigmoidScalar(float x) {
  if (x >= 0) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

float LogSigmoid(float x) {
  // log sigmoid(x) = -softplus(-x) = min(x,0) - log1p(exp(-|x|)).
  return std::min(x, 0.0f) - std::log1p(std::exp(-std::fabs(x)));
}

Tensor Sigmoid(const Tensor& x) {
  Tensor out = x;
  for (size_t i = 0; i < out.size(); ++i) out[i] = SigmoidScalar(out[i]);
  return out;
}

Tensor TanhT(const Tensor& x) {
  Tensor out = x;
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  return out;
}

}  // namespace sttr
