#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/simd.h"
#include "util/thread_pool.h"

namespace sttr {

namespace {

// GEMM tile sizes. The micro-kernel computes a kRowTile x kColTile block of
// C in local accumulators (register-resident after unrolling), so every B
// element loaded is reused kRowTile times and C is written exactly once
// instead of once per inner-dimension step. 8x32 measured fastest here:
// narrower column tiles trip GCC's vectoriser cost model with runtime
// strides and fall back to 128-bit vectors (see bench/micro_matmul).
constexpr size_t kRowTile = 8;
constexpr size_t kColTile = 32;

// Row unroll of the transposed products below (their inner loops hardcode
// four-way register blocking, independent of the main GEMM tile).
constexpr size_t kQuadRows = 4;

// Below this many multiply-adds the pool dispatch costs more than it saves.
constexpr size_t kParallelFlopGrain = size_t{1} << 20;

/// C[0..RT)[0..CT) = A(RT rows, k) * B(k, CT cols). Accumulates over the
/// inner dimension in increasing order per element — the same per-element
/// chain as the classic i-k-j loop, so blocking does not perturb results.
template <size_t RT, size_t CT>
inline void GemmMicro(const float* a, size_t lda, const float* b, size_t ldb,
                      float* c, size_t ldc, size_t k) {
  float acc[RT][CT] = {};
  for (size_t kk = 0; kk < k; ++kk) {
    const float* br = b + kk * ldb;
    for (size_t r = 0; r < RT; ++r) {
      const float av = a[r * lda + kk];
      for (size_t j = 0; j < CT; ++j) acc[r][j] += av * br[j];
    }
  }
  for (size_t r = 0; r < RT; ++r) {
    for (size_t j = 0; j < CT; ++j) c[r * ldc + j] = acc[r][j];
  }
}

/// Ragged right/bottom edge of the tiling: RT rows, jw < kColTile columns.
template <size_t RT>
inline void GemmMicroEdge(const float* a, size_t lda, const float* b,
                          size_t ldb, float* c, size_t ldc, size_t k,
                          size_t jw) {
  float acc[RT][kColTile] = {};
  for (size_t kk = 0; kk < k; ++kk) {
    const float* br = b + kk * ldb;
    for (size_t r = 0; r < RT; ++r) {
      const float av = a[r * lda + kk];
      for (size_t j = 0; j < jw; ++j) acc[r][j] += av * br[j];
    }
  }
  for (size_t r = 0; r < RT; ++r) {
    for (size_t j = 0; j < jw; ++j) c[r * ldc + j] = acc[r][j];
  }
}

/// Blocked GEMM over C rows [i0, i1): the unit of work the parallel path
/// shards. Column tiles are the outer loop so the strided B panel a tile
/// touches stays cache-resident across the row sweep.
void GemmRowRange(const float* a, const float* b, float* c, size_t i0,
                  size_t i1, size_t k, size_t m) {
  for (size_t j0 = 0; j0 < m; j0 += kColTile) {
    const size_t jw = std::min(kColTile, m - j0);
    size_t i = i0;
    if (jw == kColTile) {
      for (; i + kRowTile <= i1; i += kRowTile) {
        GemmMicro<kRowTile, kColTile>(a + i * k, k, b + j0, m, c + i * m + j0,
                                      m, k);
      }
      for (; i < i1; ++i) {
        GemmMicro<1, kColTile>(a + i * k, k, b + j0, m, c + i * m + j0, m, k);
      }
    } else {
      for (; i + kRowTile <= i1; i += kRowTile) {
        GemmMicroEdge<kRowTile>(a + i * k, k, b + j0, m, c + i * m + j0, m, k,
                                jw);
      }
      for (; i < i1; ++i) {
        GemmMicroEdge<1>(a + i * k, k, b + j0, m, c + i * m + j0, m, k, jw);
      }
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  STTR_CHECK_EQ(a.ndim(), 2u);
  STTR_CHECK_EQ(b.ndim(), 2u);
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  STTR_CHECK_EQ(k, b.rows()) << "MatMul inner dims";
  Tensor c({n, m});
  GemmRowRange(a.data(), b.data(), c.data(), 0, n, k, m);
  return c;
}

Tensor ParallelMatMul(const Tensor& a, const Tensor& b) {
  STTR_CHECK_EQ(a.ndim(), 2u);
  STTR_CHECK_EQ(b.ndim(), 2u);
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  STTR_CHECK_EQ(k, b.rows()) << "ParallelMatMul inner dims";
  Tensor c({n, m});
  ThreadPool& pool = GlobalThreadPool();
  if (n * k * m < kParallelFlopGrain || pool.num_threads() <= 1 ||
      ThreadPool::InWorker()) {
    GemmRowRange(a.data(), b.data(), c.data(), 0, n, k, m);
    return c;
  }
  // Shard C rows in kRowTile multiples so every row goes through the same
  // micro-kernel path it would take serially (bit-identical outputs).
  size_t grain = std::max<size_t>(
      kRowTile, (n / (4 * pool.num_threads())) & ~(kRowTile - 1));
  pool.ParallelForChunked(n, grain, [&](size_t begin, size_t end) {
    GemmRowRange(a.data(), b.data(), c.data(), begin, end, k, m);
  });
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  STTR_CHECK_EQ(a.ndim(), 2u);
  STTR_CHECK_EQ(b.ndim(), 2u);
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  STTR_CHECK_EQ(n, b.rows()) << "MatMulTransA outer dims";
  Tensor c({k, m});
  float* cd = c.data();
  // Rank-kQuadRows updates: processing kQuadRows rows of A/B per sweep cuts
  // the load/store traffic on C (the largest array touched) by kQuadRows.
  // Each C element still receives its i-contributions in increasing order.
  size_t i = 0;
  for (; i + kQuadRows <= n; i += kQuadRows) {
    const float* ar[kQuadRows];
    const float* br[kQuadRows];
    for (size_t r = 0; r < kQuadRows; ++r) {
      ar[r] = a.row(i + r);
      br[r] = b.row(i + r);
    }
    for (size_t kk = 0; kk < k; ++kk) {
      float* crow = cd + kk * m;
      const float av0 = ar[0][kk], av1 = ar[1][kk], av2 = ar[2][kk],
                  av3 = ar[3][kk];
      for (size_t j = 0; j < m; ++j) {
        float cj = crow[j];
        cj += av0 * br[0][j];
        cj += av1 * br[1][j];
        cj += av2 * br[2][j];
        cj += av3 * br[3][j];
        crow[j] = cj;
      }
    }
  }
  for (; i < n; ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      float* crow = cd + kk * m;
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  STTR_CHECK_EQ(a.ndim(), 2u);
  STTR_CHECK_EQ(b.ndim(), 2u);
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  STTR_CHECK_EQ(k, b.cols()) << "MatMulTransB inner dims";
  Tensor c({n, m});
  // Row-on-row dot products; a kQuadRows x kQuadRows register tile reuses
  // every A and B row load kQuadRows times. Double accumulators as before.
  size_t i = 0;
  for (; i + kQuadRows <= n; i += kQuadRows) {
    size_t j = 0;
    for (; j + kQuadRows <= m; j += kQuadRows) {
      double acc[kQuadRows][kQuadRows] = {};
      for (size_t kk = 0; kk < k; ++kk) {
        float avs[kQuadRows], bvs[kQuadRows];
        for (size_t r = 0; r < kQuadRows; ++r) avs[r] = a.row(i + r)[kk];
        for (size_t s = 0; s < kQuadRows; ++s) bvs[s] = b.row(j + s)[kk];
        for (size_t r = 0; r < kQuadRows; ++r) {
          for (size_t s = 0; s < kQuadRows; ++s) {
            acc[r][s] += static_cast<double>(avs[r]) * bvs[s];
          }
        }
      }
      for (size_t r = 0; r < kQuadRows; ++r) {
        for (size_t s = 0; s < kQuadRows; ++s) {
          c.row(i + r)[j + s] = static_cast<float>(acc[r][s]);
        }
      }
    }
    for (; j < m; ++j) {
      const float* brow = b.row(j);
      for (size_t r = 0; r < kQuadRows; ++r) {
        const float* arow = a.row(i + r);
        double s = 0;
        for (size_t kk = 0; kk < k; ++kk) {
          s += static_cast<double>(arow[kk]) * brow[kk];
        }
        c.row(i + r)[j] = static_cast<float>(s);
      }
    }
  }
  for (; i < n; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (size_t j = 0; j < m; ++j) {
      const float* brow = b.row(j);
      double s = 0;
      for (size_t kk = 0; kk < k; ++kk) {
        s += static_cast<double>(arow[kk]) * brow[kk];
      }
      crow[j] = static_cast<float>(s);
    }
  }
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  STTR_CHECK(a.SameShape(b));
  Tensor out = a;
  out.AddInPlace(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  STTR_CHECK(a.SameShape(b));
  Tensor out = a;
  out.Axpy(-1.0f, b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  STTR_CHECK(a.SameShape(b));
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor out = a;
  out.ScaleInPlace(alpha);
  return out;
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  STTR_CHECK_EQ(x.ndim(), 2u);
  const size_t n = x.rows(), m = x.cols();
  STTR_CHECK_EQ(bias.size(), m) << "bias size must match columns";
  Tensor out = x;
  for (size_t i = 0; i < n; ++i) {
    float* row = out.row(i);
    for (size_t j = 0; j < m; ++j) row[j] += bias[j];
  }
  return out;
}

Tensor ColSum(const Tensor& x) {
  STTR_CHECK_EQ(x.ndim(), 2u);
  const size_t n = x.rows(), m = x.cols();
  Tensor out({m});
  for (size_t i = 0; i < n; ++i) {
    const float* row = x.row(i);
    for (size_t j = 0; j < m; ++j) out[j] += row[j];
  }
  return out;
}

Tensor RowwiseDot(const Tensor& a, const Tensor& b) {
  STTR_CHECK(a.SameShape(b));
  STTR_CHECK_EQ(a.ndim(), 2u);
  const size_t n = a.rows(), d = a.cols();
  Tensor out({n});
  for (size_t i = 0; i < n; ++i) {
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    double s = 0;
    for (size_t j = 0; j < d; ++j) s += static_cast<double>(ra[j]) * rb[j];
    out[i] = static_cast<float>(s);
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  STTR_CHECK_EQ(a.ndim(), 2u);
  STTR_CHECK_EQ(b.ndim(), 2u);
  STTR_CHECK_EQ(a.rows(), b.rows());
  const size_t n = a.rows(), p = a.cols(), q = b.cols();
  Tensor out({n, p + q});
  for (size_t i = 0; i < n; ++i) {
    float* dst = out.row(i);
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    for (size_t j = 0; j < p; ++j) dst[j] = ra[j];
    for (size_t j = 0; j < q; ++j) dst[p + j] = rb[j];
  }
  return out;
}

Tensor SliceCols(const Tensor& x, size_t begin, size_t end) {
  STTR_CHECK_EQ(x.ndim(), 2u);
  STTR_CHECK_LE(begin, end);
  STTR_CHECK_LE(end, x.cols());
  const size_t n = x.rows(), m = end - begin;
  Tensor out({n, m});
  for (size_t i = 0; i < n; ++i) {
    const float* src = x.row(i) + begin;
    float* dst = out.row(i);
    for (size_t j = 0; j < m; ++j) dst[j] = src[j];
  }
  return out;
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices) {
  STTR_CHECK_EQ(table.ndim(), 2u);
  const size_t d = table.cols();
  Tensor out({indices.size(), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    STTR_CHECK_GE(r, 0);
    STTR_CHECK_LT(static_cast<size_t>(r), table.rows());
    const float* src = table.row(static_cast<size_t>(r));
    float* dst = out.row(i);
    for (size_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  return out;
}

void ScatterRowsAdd(Tensor& dest, const std::vector<int64_t>& indices,
                    const Tensor& src) {
  STTR_CHECK_EQ(dest.ndim(), 2u);
  STTR_CHECK_EQ(src.ndim(), 2u);
  STTR_CHECK_EQ(src.rows(), indices.size());
  STTR_CHECK_EQ(src.cols(), dest.cols());
  const size_t d = dest.cols();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    STTR_CHECK_GE(r, 0);
    STTR_CHECK_LT(static_cast<size_t>(r), dest.rows());
    float* dst = dest.row(static_cast<size_t>(r));
    const float* s = src.row(i);
    for (size_t j = 0; j < d; ++j) dst[j] += s[j];
  }
}

Tensor Relu(const Tensor& x) {
  Tensor out = x;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0) out[i] = 0;
  }
  return out;
}

float SigmoidScalar(float x) { return simd::SigmoidOne(x); }

float LogSigmoid(float x) { return simd::LogSigmoidOne(x); }

Tensor Sigmoid(const Tensor& x) {
  Tensor out = x;
  simd::SigmoidMany(out.data(), out.data(), out.size());
  return out;
}

Tensor TanhT(const Tensor& x) {
  Tensor out = x;
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  return out;
}

}  // namespace sttr
