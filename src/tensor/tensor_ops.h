#ifndef STTR_TENSOR_TENSOR_OPS_H_
#define STTR_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sttr {

// Dense numeric kernels over 2-D tensors. These are the primitives the
// autodiff layer composes; shapes are validated with STTR_CHECK.

/// C = A(n,k) * B(k,m). Cache-blocked serial kernel: C is computed in
/// register-resident row/column tiles so each B element loaded from cache is
/// reused across a block of C rows.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A(n,k) * B(k,m), sharding blocks of C rows across GlobalThreadPool()
/// when n*k*m exceeds a grain threshold (and the caller is not already a
/// pool worker); falls back to the serial blocked kernel otherwise. Row
/// shards run the identical micro-kernel on disjoint outputs, so the result
/// is bit-identical to MatMul().
Tensor ParallelMatMul(const Tensor& a, const Tensor& b);

/// C = A^T(n,k)^T * B(n,m) = (k,m). Used for dW in linear backward.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);

/// C = A(n,k) * B(m,k)^T = (n,m). Used for dX in linear backward.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// out = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);

/// out = a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// out = a ⊙ b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// out = a * alpha.
Tensor Scale(const Tensor& a, float alpha);

/// out(i,j) = x(i,j) + bias(j); x is (n,m), bias is (m) or (1,m).
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);

/// Column sums of a 2-D tensor -> shape (m). Reduces over rows.
Tensor ColSum(const Tensor& x);

/// Row-wise dot product of two (n,d) tensors -> (n).
Tensor RowwiseDot(const Tensor& a, const Tensor& b);

/// Concatenates two 2-D tensors with equal row counts along columns.
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Extracts columns [begin, end) of a 2-D tensor.
Tensor SliceCols(const Tensor& x, size_t begin, size_t end);

/// Gathers rows of `table` (V,d) at `indices` -> (indices.size(), d).
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices);

/// dest.row(indices[i]) += src.row(i) for all i. dest (V,d), src (n,d).
void ScatterRowsAdd(Tensor& dest, const std::vector<int64_t>& indices,
                    const Tensor& src);

/// Elementwise ReLU / its mask-based derivative helper.
Tensor Relu(const Tensor& x);

/// Numerically stable logistic sigmoid.
Tensor Sigmoid(const Tensor& x);

/// Elementwise tanh.
Tensor TanhT(const Tensor& x);

/// Single-element stable sigmoid.
float SigmoidScalar(float x);

/// log(sigmoid(x)) computed stably (= -softplus(-x)).
float LogSigmoid(float x);

}  // namespace sttr

#endif  // STTR_TENSOR_TENSOR_OPS_H_
