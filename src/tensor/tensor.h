#ifndef STTR_TENSOR_TENSOR_H_
#define STTR_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"
#include "util/status.h"

namespace sttr {

/// Dense, contiguous, row-major float32 N-dimensional array.
///
/// Tensor is a plain value type: copying copies the buffer. All shape and
/// index contracts are enforced with STTR_CHECK (programmer errors). The
/// numeric kernels used by the autodiff engine live in tensor_ops.h.
class Tensor {
 public:
  /// Empty 0-d tensor (size 0).
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<size_t> shape);

  /// Constant-filled tensor.
  Tensor(std::vector<size_t> shape, float fill);

  /// Takes ownership of `data`; data.size() must equal the shape product.
  Tensor(std::vector<size_t> shape, std::vector<float> data);

  // -- Factories -------------------------------------------------------------

  static Tensor Zeros(std::vector<size_t> shape) { return Tensor(std::move(shape)); }
  static Tensor Ones(std::vector<size_t> shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor Full(std::vector<size_t> shape, float v) { return Tensor(std::move(shape), v); }

  /// Scalar (shape {1}).
  static Tensor Scalar(float v) { return Tensor({1}, std::vector<float>{v}); }

  /// Entries iid Uniform[lo, hi).
  static Tensor RandomUniform(std::vector<size_t> shape, Rng& rng,
                              float lo = 0.0f, float hi = 1.0f);

  /// Entries iid Normal(mean, stddev).
  static Tensor RandomNormal(std::vector<size_t> shape, Rng& rng,
                             float mean = 0.0f, float stddev = 1.0f);

  /// Glorot/Xavier uniform initialisation for a (fan_in, fan_out) matrix.
  static Tensor GlorotUniform(size_t fan_in, size_t fan_out, Rng& rng);

  // -- Shape -----------------------------------------------------------------

  const std::vector<size_t>& shape() const { return shape_; }
  size_t ndim() const { return shape_.size(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Extent of dimension `i`.
  size_t dim(size_t i) const {
    STTR_CHECK_LT(i, shape_.size());
    return shape_[i];
  }

  /// Rows/cols of a 2-D tensor.
  size_t rows() const {
    STTR_CHECK_EQ(ndim(), 2u);
    return shape_[0];
  }
  size_t cols() const {
    STTR_CHECK_EQ(ndim(), 2u);
    return shape_[1];
  }

  /// Returns a tensor sharing no storage with this one but holding the same
  /// data under a new shape (sizes must match).
  Tensor Reshaped(std::vector<size_t> new_shape) const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  // -- Element access ----------------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](size_t i) {
    STTR_CHECK_LT(i, data_.size());
    return data_[i];
  }
  float operator[](size_t i) const {
    STTR_CHECK_LT(i, data_.size());
    return data_[i];
  }

  /// 2-D element access.
  float& at(size_t r, size_t c) {
    STTR_CHECK_EQ(ndim(), 2u);
    STTR_CHECK_LT(r, shape_[0]);
    STTR_CHECK_LT(c, shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float at(size_t r, size_t c) const {
    return const_cast<Tensor*>(this)->at(r, c);
  }

  /// Pointer to the start of row `r` of a 2-D tensor.
  float* row(size_t r) {
    STTR_CHECK_EQ(ndim(), 2u);
    STTR_CHECK_LT(r, shape_[0]);
    return data_.data() + r * shape_[1];
  }
  const float* row(size_t r) const { return const_cast<Tensor*>(this)->row(r); }

  // -- Whole-tensor helpers -----------------------------------------------------

  /// Sets every entry to `v`.
  void Fill(float v);

  /// Sum of all entries (double accumulator).
  double Sum() const;

  /// Arithmetic mean of all entries. Precondition: non-empty.
  double Mean() const;

  /// Largest absolute entry (0 for empty tensors).
  double MaxAbs() const;

  /// Squared L2 norm.
  double SquaredL2Norm() const;

  /// this += other (same shape).
  void AddInPlace(const Tensor& other);

  /// this += alpha * other (same shape).
  void Axpy(float alpha, const Tensor& other);

  /// this *= alpha.
  void ScaleInPlace(float alpha);

  /// True when every |a-b| <= atol + rtol*|b|.
  bool AllClose(const Tensor& other, double rtol = 1e-5,
                double atol = 1e-7) const;

  /// Debug rendering, e.g. "Tensor[2x3]{1, 2, 3, ...}" (truncated).
  std::string ToString(size_t max_entries = 12) const;

  // -- Serialisation ------------------------------------------------------------

  /// Binary write: ndim, dims, raw floats. Stream errors -> IOError.
  Status Serialize(std::ostream& out) const;

  /// Binary read matching Serialize().
  static StatusOr<Tensor> Deserialize(std::istream& in);

 private:
  std::vector<size_t> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape.
size_t ShapeSize(const std::vector<size_t>& shape);

/// "2x3x4" rendering of a shape.
std::string ShapeToString(const std::vector<size_t>& shape);

}  // namespace sttr

#endif  // STTR_TENSOR_TENSOR_H_
