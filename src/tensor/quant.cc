#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

namespace sttr {

namespace {

/// round-to-nearest, clamped into the maddubs-safe int8 range.
int8_t ClampToI8(float v) {
  const long r = std::lround(v);
  return static_cast<int8_t>(std::clamp<long>(r, -127, 127));
}

template <typename T>
bool WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

}  // namespace

const char* QuantSchemeName(QuantScheme scheme) {
  switch (scheme) {
    case QuantScheme::kSymmetric:
      return "symmetric";
    case QuantScheme::kAffine:
      return "affine";
  }
  return "unknown";
}

size_t RowQuantizedMatrix::ByteSize() const {
  return data.size() * sizeof(int8_t) + scales.size() * sizeof(float) +
         zero_points.size() * sizeof(int32_t);
}

void RowQuantizedMatrix::DequantizeRowInto(size_t r, float* out) const {
  const int8_t* q = row(r);
  const float s = scales[r];
  const int32_t z = zero_point(r);
  for (size_t c = 0; c < cols; ++c) {
    out[c] = s * static_cast<float>(static_cast<int32_t>(q[c]) - z);
  }
}

Tensor RowQuantizedMatrix::Dequantize() const {
  Tensor out({rows, cols});
  for (size_t r = 0; r < rows; ++r) DequantizeRowInto(r, out.row(r));
  return out;
}

RowQuantizedMatrix QuantizeRows(const Tensor& m, QuantScheme scheme) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  RowQuantizedMatrix out;
  out.rows = rows;
  out.cols = cols;
  out.scheme = scheme;
  out.data.resize(rows * cols);
  out.scales.resize(rows);
  if (scheme == QuantScheme::kAffine) out.zero_points.resize(rows);

  for (size_t r = 0; r < rows; ++r) {
    const float* src = m.row(r);
    int8_t* dst = out.data.data() + r * cols;
    if (scheme == QuantScheme::kSymmetric) {
      float amax = 0.0f;
      for (size_t c = 0; c < cols; ++c) amax = std::max(amax, std::fabs(src[c]));
      const float s = amax > 0.0f ? amax / 127.0f : 1.0f;
      out.scales[r] = s;
      for (size_t c = 0; c < cols; ++c) dst[c] = ClampToI8(src[c] / s);
    } else {
      float mn = src[0], mx = src[0];
      for (size_t c = 1; c < cols; ++c) {
        mn = std::min(mn, src[c]);
        mx = std::max(mx, src[c]);
      }
      float s;
      int32_t z;
      if (mx - mn > 0.0f) {
        s = (mx - mn) / 254.0f;
        z = static_cast<int32_t>(std::lround(-127.0 - mn / s));
      } else if (mn != 0.0f) {
        // Constant non-zero row: land it exactly on +/-127.
        s = std::fabs(mn) / 127.0f;
        z = 0;
      } else {
        s = 1.0f;
        z = 0;
      }
      out.scales[r] = s;
      out.zero_points[r] = z;
      for (size_t c = 0; c < cols; ++c) {
        dst[c] = ClampToI8(src[c] / s + static_cast<float>(z));
      }
    }
  }
  return out;
}

Status RowQuantizedMatrix::Serialize(std::ostream& out) const {
  const uint64_t r = rows, c = cols;
  const uint8_t sch = static_cast<uint8_t>(scheme);
  if (!WritePod(out, r) || !WritePod(out, c) || !WritePod(out, sch)) {
    return Status::IOError("quantized matrix header write failed");
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  out.write(reinterpret_cast<const char*>(scales.data()),
            static_cast<std::streamsize>(scales.size() * sizeof(float)));
  out.write(reinterpret_cast<const char*>(zero_points.data()),
            static_cast<std::streamsize>(zero_points.size() * sizeof(int32_t)));
  if (!out) return Status::IOError("quantized matrix payload write failed");
  return Status::OK();
}

StatusOr<RowQuantizedMatrix> RowQuantizedMatrix::Deserialize(std::istream& in) {
  uint64_t r = 0, c = 0;
  uint8_t sch = 0;
  if (!ReadPod(in, &r) || !ReadPod(in, &c) || !ReadPod(in, &sch)) {
    return Status::IOError("quantized matrix header read failed");
  }
  if (sch > static_cast<uint8_t>(QuantScheme::kAffine)) {
    return Status::IOError("quantized matrix: unknown scheme " +
                           std::to_string(sch));
  }
  // Reject implausible dims before allocating r*c (bit-rot in the header
  // must not become a bad_alloc).
  if (r > (uint64_t{1} << 32) || c > (uint64_t{1} << 24)) {
    return Status::IOError("quantized matrix: implausible shape");
  }
  RowQuantizedMatrix out;
  out.rows = static_cast<size_t>(r);
  out.cols = static_cast<size_t>(c);
  out.scheme = static_cast<QuantScheme>(sch);
  out.data.resize(out.rows * out.cols);
  out.scales.resize(out.rows);
  if (out.scheme == QuantScheme::kAffine) out.zero_points.resize(out.rows);
  in.read(reinterpret_cast<char*>(out.data.data()),
          static_cast<std::streamsize>(out.data.size()));
  in.read(reinterpret_cast<char*>(out.scales.data()),
          static_cast<std::streamsize>(out.scales.size() * sizeof(float)));
  in.read(
      reinterpret_cast<char*>(out.zero_points.data()),
      static_cast<std::streamsize>(out.zero_points.size() * sizeof(int32_t)));
  if (!in) return Status::IOError("quantized matrix payload read failed");
  for (float s : out.scales) {
    if (!(s > 0.0f) || !std::isfinite(s)) {
      return Status::IOError("quantized matrix: non-positive scale");
    }
  }
  return out;
}

uint16_t FloatToHalf(float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t exp = (bits >> 23) & 0xFFu;
  uint32_t mant = bits & 0x7FFFFFu;
  if (exp == 255u) {  // inf / nan (nan keeps a non-zero payload)
    return static_cast<uint16_t>(sign | 0x7C00u | (mant != 0 ? 0x200u : 0));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 31) return static_cast<uint16_t>(sign | 0x7C00u);  // overflow
  if (e <= 0) {
    if (e < -10) return static_cast<uint16_t>(sign);  // underflows to zero
    mant |= 0x800000u;  // make the implicit bit explicit
    const int shift = 14 - e;  // 14..24
    uint32_t half_mant = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half =
      sign | (static_cast<uint32_t>(e) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  // Round to nearest even; a carry out of the mantissa bumps the exponent,
  // which is exactly the right answer (up to and including rounding to inf).
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<uint16_t>(half);
}

float HalfToFloat(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  uint32_t exp = (static_cast<uint32_t>(h) >> 10) & 0x1Fu;
  uint32_t mant = static_cast<uint32_t>(h) & 0x3FFu;
  uint32_t bits;
  if (exp == 0u) {
    if (mant == 0u) {
      bits = sign;  // +/- 0
    } else {
      // Subnormal half: normalise into a regular float.
      uint32_t e = 127 - 15 + 1;
      while ((mant & 0x400u) == 0u) {
        mant <<= 1;
        --e;
      }
      mant &= 0x3FFu;
      bits = sign | (e << 23) | (mant << 13);
    }
  } else if (exp == 31u) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / nan
  } else {
    bits = sign | ((exp - 15u + 127u) << 23) | (mant << 13);
  }
  float f = 0.0f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace sttr
