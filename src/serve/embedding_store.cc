#include "serve/embedding_store.h"

#include <cstring>

namespace sttr::serve {

InProcessEmbeddingStore::InProcessEmbeddingStore(
    std::shared_ptr<const StTransRec> model)
    : model_(std::move(model)),
      user_table_(&model_->UserEmbeddingTable()),
      poi_table_(&model_->PoiEmbeddingTable()),
      dim_(user_table_->cols()) {}

size_t InProcessEmbeddingStore::num_rows(EmbeddingTable table) const {
  return table == EmbeddingTable::kUser ? user_table_->rows()
                                        : poi_table_->rows();
}

Status InProcessEmbeddingStore::Gather(
    EmbeddingTable table, std::span<const int64_t> ids, float* out,
    std::chrono::steady_clock::time_point /*deadline*/) {
  const Tensor* src =
      table == EmbeddingTable::kUser ? user_table_ : poi_table_;
  const size_t rows = src->rows();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    if (id < 0 || static_cast<size_t>(id) >= rows) {
      return Status::OutOfRange("gather id out of range");
    }
    std::memcpy(out + i * dim_, src->row(static_cast<size_t>(id)),
                dim_ * sizeof(float));
  }
  return Status::OK();
}

}  // namespace sttr::serve
