#ifndef STTR_SERVE_EMBEDDING_STORE_H_
#define STTR_SERVE_EMBEDDING_STORE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>

#include "core/st_transrec.h"
#include "util/status.h"

namespace sttr::serve {

/// Which embedding table a gather addresses. The wire protocol
/// (shard_protocol.h) carries this as one byte.
enum class EmbeddingTable : uint8_t { kUser = 0, kPoi = 1 };

/// Sparse embedding lookup split out of the scoring path — the DeepRecSys /
/// DLRM decomposition: embedding tables too big for one node live behind
/// this interface while the (tiny) MLP tower stays with the request.
///
/// Two backends:
///   - InProcessEmbeddingStore: direct views over the snapshot's tables.
///     Bit-identical to the pre-store direct table access by construction —
///     the oracle every remote behaviour is tested against.
///   - ShardedEmbeddingStore (sharded_store.h): hash-sharded gather RPCs to
///     N shard-server processes, with deadlines, bounded retry and per-shard
///     health tracking. Returns either exactly the oracle's bytes or a
///     non-OK Status — never silently different rows.
///
/// Gather is the whole API on purpose: batched row lookup is the only
/// operation serving needs, and the narrower the seam, the easier it is to
/// prove the remote path equivalent.
class EmbeddingStore {
 public:
  virtual ~EmbeddingStore() = default;

  /// Embedding dimension (columns of every row this store serves).
  virtual size_t dim() const = 0;

  /// Rows in `table` across all shards.
  virtual size_t num_rows(EmbeddingTable table) const = 0;

  /// Gathers rows `ids[i]` of `table` into `out + i * dim()`, in request
  /// order. Returns non-OK when the rows could not all be fetched by
  /// `deadline` (remote backend: shard down or stalled, after bounded
  /// retries) — the caller owns the degradation policy; `out` contents are
  /// unspecified on failure. Thread-safe; never blocks past `deadline`.
  virtual Status Gather(EmbeddingTable table, std::span<const int64_t> ids,
                        float* out,
                        std::chrono::steady_clock::time_point deadline) = 0;

  /// Backend shard count (0 for in-process) and how many of those shards
  /// are currently tripped unhealthy — the /healthz degraded signal.
  virtual size_t num_shards() const { return 0; }
  virtual size_t shards_down() const { return 0; }
};

/// Direct-access backend over a resident fp32 model: Gather memcpys rows
/// straight out of the model's tables, so store-backed scoring is
/// bit-identical to the historical snapshot->scorer->ScorePairs path. Holds
/// a shared_ptr keepalive, mirroring how requests pin their snapshot.
class InProcessEmbeddingStore final : public EmbeddingStore {
 public:
  explicit InProcessEmbeddingStore(std::shared_ptr<const StTransRec> model);

  size_t dim() const override { return dim_; }
  size_t num_rows(EmbeddingTable table) const override;
  Status Gather(EmbeddingTable table, std::span<const int64_t> ids,
                float* out,
                std::chrono::steady_clock::time_point deadline) override;

 private:
  std::shared_ptr<const StTransRec> model_;
  const Tensor* user_table_;
  const Tensor* poi_table_;
  size_t dim_;
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_EMBEDDING_STORE_H_
