#include "serve/sharded_store.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "util/logging.h"
#include "util/socket_io.h"
#include "util/string_util.h"

namespace sttr::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining budget in whole milliseconds, saturated to a sane range so a
/// caller passing time_point::max() cannot overflow the u32 wire field.
uint32_t RemainingMs(Clock::time_point deadline) {
  const auto now = Clock::now();
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  return static_cast<uint32_t>(std::min<long long>(ms, 1 << 30));
}

}  // namespace

struct ShardedEmbeddingStore::ShardState {
  int port = 0;
  size_t index = 0;

  Mutex mu;
  std::vector<int> idle_fds GUARDED_BY(mu);
  size_t consecutive_failures GUARDED_BY(mu) = 0;
  bool tripped GUARDED_BY(mu) = false;
  Clock::time_point open_until GUARDED_BY(mu){};
  bool probe_in_flight GUARDED_BY(mu) = false;
};

struct ShardedEmbeddingStore::Pending {
  enum class State { kUnsent, kSending, kReceiving, kDone, kFailed };

  ShardState* shard = nullptr;
  std::vector<int64_t> ids;       // this shard's subset, send order
  std::vector<size_t> positions;  // index of each id in the caller's batch
  uint64_t request_id = 0;
  int fd = -1;
  bool is_probe = false;
  bool counted = false;  // fd acquired ⇒ outcome must be recorded once
  State state = State::kUnsent;
  bool transient = false;
  Status error = Status::OK();
  std::string out_buf;
  size_t out_off = 0;
  std::string in_buf;
};

ShardedEmbeddingStore::ShardedEmbeddingStore(ShardedStoreOptions options,
                                             size_t dim, size_t num_users,
                                             size_t num_pois)
    : options_(std::move(options)),
      dim_(dim),
      num_users_(num_users),
      num_pois_(num_pois),
      rng_(options_.jitter_seed) {
  shards_.reserve(options_.shard_ports.size());
  for (size_t i = 0; i < options_.shard_ports.size(); ++i) {
    auto shard = std::make_unique<ShardState>();
    shard->port = options_.shard_ports[i];
    shard->index = i;
    shards_.push_back(std::move(shard));
  }
}

ShardedEmbeddingStore::~ShardedEmbeddingStore() { CloseAllConnections(); }

void ShardedEmbeddingStore::CloseAllConnections() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (const int fd : shard->idle_fds) ::close(fd);
    shard->idle_fds.clear();
  }
}

size_t ShardedEmbeddingStore::shards_down() const {
  size_t down = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    if (shard->tripped) ++down;
  }
  return down;
}

bool ShardedEmbeddingStore::AdmitShard(ShardState& shard, bool* is_probe) {
  MutexLock lock(shard.mu);
  *is_probe = false;
  if (!shard.tripped) return true;
  if (Clock::now() < shard.open_until) return false;  // open: fail fast
  if (shard.probe_in_flight) return false;  // half-open slot already taken
  shard.probe_in_flight = true;
  *is_probe = true;
  return true;
}

void ShardedEmbeddingStore::RecordShardSuccess(ShardState& shard) {
  {
    MutexLock lock(shard.mu);
    shard.consecutive_failures = 0;
    shard.tripped = false;
    shard.probe_in_flight = false;
  }
  if (options_.stats != nullptr) {
    options_.stats->shards_down.store(shards_down(),
                                      std::memory_order_relaxed);
  }
}

void ShardedEmbeddingStore::RecordShardFailure(ShardState& shard) {
  {
    MutexLock lock(shard.mu);
    ++shard.consecutive_failures;
    shard.probe_in_flight = false;
    if (shard.consecutive_failures >= options_.trip_threshold) {
      shard.tripped = true;
      shard.open_until = Clock::now() + options_.open_duration;
    }
  }
  if (options_.stats != nullptr) {
    options_.stats->shard_errors.fetch_add(1, std::memory_order_relaxed);
    options_.stats->shards_down.store(shards_down(),
                                      std::memory_order_relaxed);
  }
}

int ShardedEmbeddingStore::AcquireConnection(ShardState& shard,
                                             Clock::time_point deadline) {
  {
    MutexLock lock(shard.mu);
    if (!shard.idle_fds.empty()) {
      const int fd = shard.idle_fds.back();
      shard.idle_fds.pop_back();
      return fd;
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(shard.port));
  const int rc = net::Connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr), options_.fault);
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc < 0) {
    // Nonblocking connect in flight: wait for writability, bounded by both
    // the request deadline and the configured connect timeout.
    const Clock::time_point limit =
        std::min(deadline, Clock::now() + options_.connect_timeout);
    for (;;) {
      const auto now = Clock::now();
      if (now >= limit) {
        ::close(fd);
        errno = ETIMEDOUT;
        return -1;
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int ms = static_cast<int>(std::max<long long>(
          1, std::chrono::duration_cast<std::chrono::milliseconds>(limit - now)
                 .count()));
      const int pr = net::Poll(&pfd, 1, ms, options_.fault);
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) {
        ::close(fd);
        errno = ETIMEDOUT;
        return -1;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        ::close(fd);
        errno = so_error;
        return -1;
      }
      break;
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void ShardedEmbeddingStore::ReleaseConnection(ShardState& shard, int fd) {
  MutexLock lock(shard.mu);
  if (shard.idle_fds.size() < options_.max_pooled_connections) {
    shard.idle_fds.push_back(fd);
  } else {
    ::close(fd);
  }
}

std::chrono::milliseconds ShardedEmbeddingStore::JitteredBackoff(
    size_t attempt) {
  auto backoff = options_.backoff_base;
  for (size_t i = 0; i < attempt && backoff < options_.backoff_max; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.backoff_max);
  double factor;
  {
    MutexLock lock(rng_mu_);
    factor = 0.5 + 0.5 * rng_.Uniform();
  }
  return std::chrono::milliseconds(static_cast<int64_t>(
      std::max(1.0, static_cast<double>(backoff.count()) * factor)));
}

void ShardedEmbeddingStore::RunRound(std::vector<Pending>& pending,
                                     EmbeddingTable table, float* out,
                                     Clock::time_point deadline) {
  // A sub-gather failure closes the connection — half-written requests and
  // half-read responses leave the stream unusable for the next exchange.
  const auto fail = [&](Pending& p, bool transient, Status error) {
    if (p.fd >= 0) {
      ::close(p.fd);
      p.fd = -1;
    }
    p.state = Pending::State::kFailed;
    p.transient = transient;
    p.error = std::move(error);
    if (p.counted) {
      p.counted = false;
      RecordShardFailure(*p.shard);
    }
  };

  // Arm every sub-gather: circuit check, connection, request frame.
  for (Pending& p : pending) {
    if (p.state != Pending::State::kUnsent) continue;
    if (!AdmitShard(*p.shard, &p.is_probe)) {
      p.state = Pending::State::kFailed;
      p.transient = true;
      p.error = Status::IOError(
          StrFormat("shard %zu circuit open", p.shard->index));
      continue;
    }
    p.counted = true;  // admitted: exactly one Record* must follow
    p.fd = AcquireConnection(*p.shard, deadline);
    if (p.fd < 0) {
      fail(p, /*transient=*/true,
           Status::IOError(StrFormat("shard %zu connect: %s", p.shard->index,
                                     std::strerror(errno))));
      continue;
    }
    GatherRequest req;
    req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    req.table = table;
    req.deadline_ms = RemainingMs(deadline);
    req.ids = p.ids;
    p.request_id = req.request_id;
    p.out_buf.clear();
    p.out_off = 0;
    p.in_buf.clear();
    AppendGatherRequest(req, &p.out_buf);
    p.state = Pending::State::kSending;
  }

  // One poll() loop drives every in-flight sub-gather until it completes,
  // fails, or the deadline lands — a stalled shard can burn its own slot
  // but never the caller's budget.
  char chunk[64 * 1024];
  std::vector<pollfd> pfds;
  std::vector<Pending*> pfd_owner;
  for (;;) {
    pfds.clear();
    pfd_owner.clear();
    for (Pending& p : pending) {
      if (p.state == Pending::State::kSending) {
        pfds.push_back({p.fd, POLLOUT, 0});
        pfd_owner.push_back(&p);
      } else if (p.state == Pending::State::kReceiving) {
        pfds.push_back({p.fd, POLLIN, 0});
        pfd_owner.push_back(&p);
      }
    }
    if (pfds.empty()) return;  // all done or failed

    const auto now = Clock::now();
    if (now >= deadline) {
      for (Pending* p : pfd_owner) {
        fail(*p, /*transient=*/false,
             Status::IOError(
                 StrFormat("shard %zu deadline exceeded", p->shard->index)));
      }
      return;
    }
    const int timeout_ms = static_cast<int>(std::min<long long>(
        std::max<long long>(
            1, std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                     now)
                   .count()),
        60 * 1000));
    const int pr = net::Poll(pfds.data(), pfds.size(), timeout_ms,
                             options_.fault);
    if (pr < 0) {
      if (errno == EINTR) continue;
      for (Pending* p : pfd_owner) {
        fail(*p, /*transient=*/true,
             Status::IOError(std::string("poll: ") + std::strerror(errno)));
      }
      return;
    }
    if (pr == 0) continue;  // timeout tick: loop re-checks the deadline

    for (size_t i = 0; i < pfds.size(); ++i) {
      Pending& p = *pfd_owner[i];
      const short revents = pfds[i].revents;
      if (revents == 0) continue;
      if (p.state == Pending::State::kSending) {
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
          fail(p, /*transient=*/true,
               Status::IOError(
                   StrFormat("shard %zu hangup during send", p.shard->index)));
          continue;
        }
        const ssize_t n =
            net::Send(p.fd, p.out_buf.data() + p.out_off,
                      p.out_buf.size() - p.out_off, MSG_NOSIGNAL,
                      options_.fault);
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
            continue;  // includes injected stalls: deadline still governs
          }
          fail(p, /*transient=*/true,
               Status::IOError(StrFormat("shard %zu send: %s", p.shard->index,
                                         std::strerror(errno))));
          continue;
        }
        p.out_off += static_cast<size_t>(n);
        if (p.out_off == p.out_buf.size()) {
          p.state = Pending::State::kReceiving;
        }
        continue;
      }
      // kReceiving.
      const ssize_t n = net::Recv(p.fd, chunk, sizeof(chunk), 0,
                                  options_.fault);
      if (n == 0) {
        fail(p, /*transient=*/true,
             Status::IOError(StrFormat("shard %zu closed mid-response",
                                       p.shard->index)));
        continue;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        fail(p, /*transient=*/true,
             Status::IOError(StrFormat("shard %zu recv: %s", p.shard->index,
                                       std::strerror(errno))));
        continue;
      }
      p.in_buf.append(chunk, static_cast<size_t>(n));
      GatherResponse resp;
      size_t consumed = 0;
      const FrameParse parse = ParseGatherResponse(p.in_buf, &resp, &consumed);
      if (parse == FrameParse::kNeedMore) continue;
      if (parse == FrameParse::kBad) {
        fail(p, /*transient=*/true,
             Status::IOError(
                 StrFormat("shard %zu torn frame", p.shard->index)));
        continue;
      }
      if (resp.request_id != p.request_id || consumed != p.in_buf.size()) {
        // Stale bytes from an earlier exchange on a reused connection: the
        // stream is desynchronised, drop it and retry fresh.
        fail(p, /*transient=*/true,
             Status::IOError(
                 StrFormat("shard %zu stream desync", p.shard->index)));
        continue;
      }
      if (resp.status == GatherStatus::kShuttingDown) {
        fail(p, /*transient=*/true,
             Status::IOError(
                 StrFormat("shard %zu shutting down", p.shard->index)));
        continue;
      }
      if (resp.status != GatherStatus::kOk) {
        // The shard rejected the request itself (bad table / unowned id):
        // a router bug, not a fault to retry through.
        fail(p, /*transient=*/false,
             Status::Internal(StrFormat("shard %zu rejected gather, status %d",
                                        p.shard->index,
                                        static_cast<int>(resp.status))));
        continue;
      }
      if (resp.dim != dim_ || resp.count != p.ids.size()) {
        fail(p, /*transient=*/false,
             Status::Internal(
                 StrFormat("shard %zu shape mismatch", p.shard->index)));
        continue;
      }
      for (size_t j = 0; j < p.positions.size(); ++j) {
        std::memcpy(out + p.positions[j] * dim_, resp.rows.data() + j * dim_,
                    dim_ * sizeof(float));
      }
      p.state = Pending::State::kDone;
      p.counted = false;
      RecordShardSuccess(*p.shard);
      ReleaseConnection(*p.shard, p.fd);
      p.fd = -1;
    }
  }
}

Status ShardedEmbeddingStore::Gather(EmbeddingTable table,
                                     std::span<const int64_t> ids, float* out,
                                     Clock::time_point deadline) {
  if (options_.stats != nullptr) {
    options_.stats->shard_gathers.fetch_add(1, std::memory_order_relaxed);
  }
  if (shards_.empty()) {
    return Status::FailedPrecondition("sharded store has no shards");
  }
  if (ids.empty()) return Status::OK();
  const size_t rows = num_rows(table);
  for (const int64_t id : ids) {
    if (id < 0 || static_cast<size_t>(id) >= rows) {
      return Status::OutOfRange("gather id out of range");
    }
  }

  // Partition the batch by owning shard, remembering each id's slot in the
  // caller's output so reassembly restores request order.
  const size_t n_shards = shards_.size();
  std::vector<Pending> pending;
  {
    std::vector<size_t> bucket_of(n_shards, SIZE_MAX);
    for (size_t i = 0; i < ids.size(); ++i) {
      const size_t s = ShardOfId(ids[i], n_shards);
      if (bucket_of[s] == SIZE_MAX) {
        bucket_of[s] = pending.size();
        pending.emplace_back();
        pending.back().shard = shards_[s].get();
      }
      Pending& p = pending[bucket_of[s]];
      p.ids.push_back(ids[i]);
      p.positions.push_back(i);
    }
  }

  size_t attempt = 0;
  for (;;) {
    RunRound(pending, table, out, deadline);
    std::vector<Pending> failed;
    Status first_error = Status::OK();
    bool all_transient = true;
    for (Pending& p : pending) {
      if (p.state != Pending::State::kFailed) continue;
      if (first_error.ok()) first_error = p.error;
      all_transient = all_transient && p.transient;
      p.state = Pending::State::kUnsent;
      p.is_probe = false;
      failed.push_back(std::move(p));
    }
    if (failed.empty()) return Status::OK();
    if (!all_transient || attempt >= options_.max_retries) {
      return first_error;
    }
    const auto backoff = JitteredBackoff(attempt);
    if (Clock::now() + backoff >= deadline) {
      return Status::IOError("gather deadline exhausted before retry: " +
                             first_error.message());
    }
    std::this_thread::sleep_for(backoff);
    ++attempt;
    if (options_.stats != nullptr) {
      options_.stats->shard_retries.fetch_add(failed.size(),
                                              std::memory_order_relaxed);
    }
    pending = std::move(failed);
  }
}

}  // namespace sttr::serve
