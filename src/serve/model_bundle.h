#ifndef STTR_SERVE_MODEL_BUNDLE_H_
#define STTR_SERVE_MODEL_BUNDLE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/quantized_model.h"
#include "core/st_transrec.h"
#include "data/dataset.h"
#include "data/split.h"
#include "serve/stats.h"
#include "util/fs.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sttr {
struct DeltaCheckpoint;
}

namespace sttr::serve {

class ResultCache;

/// Numeric precision a snapshot serves at.
enum class Precision : uint8_t {
  kFp32 = 1,  ///< full StTransRec loaded from a v1 training checkpoint
  kInt8 = 2,  ///< QuantizedModel loaded from a v2 serving artifact
};

const char* PrecisionName(Precision p);

/// Which artifacts a bundle is willing to serve.
enum class PrecisionMode {
  kFp32,  ///< v1 training checkpoints only (pre-quantization behaviour)
  kInt8,  ///< v2 quantized artifacts only
  /// Whichever is newest by epoch, quantized preferred on ties — landing a
  /// quantized artifact next to the fp32 checkpoint of the same epoch hot-
  /// swaps the serving path to int8, and a newer fp32 checkpoint swaps it
  /// back.
  kAuto,
};

/// One immutable serving snapshot: a fully loaded model plus the provenance
/// of the checkpoint it came from. Requests capture a shared_ptr to the
/// snapshot at admission and score against it for their whole lifetime, so
/// a hot reload can never hand one request parameters from two models.
struct ModelSnapshot {
  /// What requests score with; never null in a published snapshot. Points
  /// at `model` for fp32 snapshots, at a QuantizedModel for int8 ones.
  std::shared_ptr<const PoiScorer> scorer;
  /// The full fp32 model; null when the snapshot is quantized. Kept for
  /// callers that need more than scoring (embedding inspection).
  std::shared_ptr<const StTransRec> model;
  Precision precision = Precision::kFp32;
  /// Approximate resident bytes of the scorer's parameters (the number
  /// /statz reports as model bytes).
  size_t resident_bytes = 0;
  std::string checkpoint_path;
  size_t epoch = 0;      ///< completed training epochs in the checkpoint
  uint64_t version = 0;  ///< reload counter, 1 for the initial load
  /// CRC32 of the base checkpoint's "model" section (fp32 snapshots only).
  /// A streaming delta names this value and is refused against any other
  /// base, even one with the same epoch number.
  uint32_t model_crc = 0;
  /// Streaming-delta provenance: the highest delta sequence patched into
  /// this snapshot (0 = pristine base) and the file it came from.
  uint64_t delta_seq = 0;
  std::string delta_path;
};

struct ModelBundleConfig {
  /// Directory the trainer writes checkpoints into.
  std::string checkpoint_dir;
  /// Must match the training config: checkpoints carry a config fingerprint
  /// and a snapshot that doesn't match is rejected, never served.
  StTransRecConfig model;
  /// Watcher poll period for newer checkpoints.
  std::chrono::milliseconds poll_interval{200};
  /// Filesystem; null means Env::Default().
  Env* env = nullptr;
  /// Which checkpoint flavors to serve (see PrecisionMode).
  PrecisionMode precision = PrecisionMode::kFp32;
  /// Directory quantized (v2) artifacts are picked up from; empty means
  /// "<checkpoint_dir>/quant" (where tools/sttr_quantize writes by default).
  std::string quant_checkpoint_dir;
  /// Optional failure-visibility sink: reload attempts that found a newer
  /// checkpoint but could not load it bump model_reload_failures and record
  /// the error string (surfaced at /statz); a later successful reload
  /// clears the error.
  ServeStats* stats = nullptr;
  /// Directory streaming delta checkpoints (core/delta.h) are consumed
  /// from; empty disables delta hot-patching. Deltas only patch fp32
  /// snapshots (the int8 path republishes full quantized artifacts).
  std::string delta_dir;
};

/// Translates a delta into the minimal result-cache invalidation: user rows
/// invalidate those users' entries, POI rows invalidate their cities'
/// entries, word rows invalidate nothing (cached /recommend scores never
/// read the word table; it only feeds training and the uncached cold-start
/// path), and a dense-param refresh falls back to a wholesale flush. This
/// is the row-level hook delta listeners hang the cache on.
void InvalidateForDelta(const Dataset& dataset, const DeltaCheckpoint& delta,
                        ResultCache& cache);

/// Loads the newest valid checkpoint into an immutable, atomically swappable
/// model snapshot, and (optionally) watches the checkpoint directory in the
/// background, hot-reloading whenever the trainer lands a newer one.
/// Corrupt or torn files are skipped by FindLatestValidCheckpoint, and a
/// checkpoint that vanishes mid-load (rotation racing the watcher) surfaces
/// as a Status and is retried on the next poll — the previous snapshot keeps
/// serving throughout. In-flight requests are never dropped: they hold
/// their snapshot's shared_ptr, and the old model is destroyed only when the
/// last request using it completes.
class ModelBundle {
 public:
  /// The dataset and split must outlive the bundle (snapshots Prepare()
  /// against them).
  ModelBundle(const Dataset& dataset, const CrossCitySplit& split,
              ModelBundleConfig config);
  ~ModelBundle();

  ModelBundle(const ModelBundle&) = delete;
  ModelBundle& operator=(const ModelBundle&) = delete;

  /// Blocking initial load of the newest valid checkpoint. Must succeed
  /// before snapshot() is usable.
  Status LoadInitial() EXCLUDES(mu_);

  /// Current snapshot (never null after a successful LoadInitial()).
  std::shared_ptr<const ModelSnapshot> snapshot() const EXCLUDES(mu_);

  /// Checks for a checkpoint newer than the current snapshot and swaps it
  /// in. Returns true when a swap happened, false when already current.
  StatusOr<bool> ReloadIfNewer() EXCLUDES(mu_);

  /// Registered callbacks run after every swap (initial load included),
  /// on the thread that performed it, with mu_ deliberately dropped — a
  /// listener may call back into snapshot()/the result cache. This is the
  /// hook the result cache's InvalidateAll() hangs off.
  void AddReloadListener(std::function<void(const ModelSnapshot&)> listener)
      EXCLUDES(mu_);

  /// Checks delta_dir for a delta newer than the one already live and
  /// hot-patches it: the delta's rows are applied IN PLACE to the standby
  /// model instance (cost proportional to changed rows, not table size) and
  /// the patched instance is published as a new snapshot. Returns true on a
  /// swap; false when there is nothing new, the delta targets a different
  /// base (epoch/CRC mismatch — the trainer hasn't caught up with a full
  /// reload yet), or the standby is still referenced by in-flight requests
  /// (retried next poll). Two model instances alternate as active/standby,
  /// and because deltas are cumulative against their base, patching the
  /// standby — whatever delta it last carried — with only the newest delta
  /// reproduces the trainer's exact state.
  StatusOr<bool> ApplyDeltaIfNewer() EXCLUDES(mu_, delta_mu_);

  /// Like reload listeners, but for delta swaps only: run after every
  /// ApplyDeltaIfNewer() swap with the new snapshot and the delta that
  /// produced it. Row-level cache invalidation (InvalidateForDelta) hangs
  /// off this instead of the wholesale-flush reload hook.
  void AddDeltaListener(
      std::function<void(const ModelSnapshot&, const DeltaCheckpoint&)>
          listener) EXCLUDES(mu_);

  /// Background polling via ReloadIfNewer() every poll_interval. Start and
  /// Stop are safe to call concurrently: exactly one stopper ever joins the
  /// watcher, a Start racing an in-progress Stop is a no-op (never a second
  /// watcher), and a StopWatcher that loses the race blocks until the
  /// winner's shutdown completes — so by the time any StopWatcher returns,
  /// no watcher thread remains. (As with any object, destruction must still
  /// be externally ordered after all other calls *begin*; the destructor
  /// merely waits out a stop already in flight.)
  void StartWatcher() EXCLUDES(watcher_mu_);
  void StopWatcher() EXCLUDES(watcher_mu_);

  /// Successful swaps so far (1 after LoadInitial()).
  uint64_t reload_count() const;

 private:
  /// Newest checkpoint path eligible under config_.precision.
  StatusOr<std::string> SelectCheckpoint() const;
  std::string QuantDir() const;
  StatusOr<std::shared_ptr<ModelSnapshot>> LoadSnapshot(
      const std::string& path) const;
  /// Fp32 half of LoadSnapshot, reused to stock the delta standby
  /// instances: Prepare + fingerprint check + parameter load from a v1
  /// checkpoint. `model_crc` (optional) receives the "model" section CRC.
  StatusOr<std::shared_ptr<StTransRec>> LoadFp32Base(const std::string& path,
                                                     uint32_t* model_crc) const;
  void Swap(std::shared_ptr<ModelSnapshot> next) EXCLUDES(mu_);
  /// Swap for delta patches: publishes `next` under mu_ and hands back the
  /// delta listeners (not the reload listeners — a delta must not trigger
  /// the wholesale cache flush those perform). The caller invokes them only
  /// after dropping every lock: a listener is foreign code (row-level cache
  /// invalidation takes the cache's own locks) and must never run under
  /// delta_mu_ or mu_.
  std::vector<std::function<void(const ModelSnapshot&, const DeltaCheckpoint&)>>
  SwapDelta(std::shared_ptr<ModelSnapshot> next) EXCLUDES(mu_);
  /// Failure-visibility accounting (no-op without config_.stats).
  void RecordReloadFailure(const Status& error) const;
  Env& env() const;
  void WatcherLoop() EXCLUDES(watcher_mu_);

  const Dataset& dataset_;
  const CrossCitySplit& split_;
  ModelBundleConfig config_;

  mutable Mutex mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_ GUARDED_BY(mu_);
  std::vector<std::function<void(const ModelSnapshot&)>> listeners_
      GUARDED_BY(mu_);
  std::vector<std::function<void(const ModelSnapshot&, const DeltaCheckpoint&)>>
      delta_listeners_ GUARDED_BY(mu_);
  std::atomic<uint64_t> reloads_{0};

  /// Delta double-buffer state: two fp32 instances loaded from the current
  /// base; the one inside snapshot_ is active, the other is the standby the
  /// next delta patches in place. Serialized by delta_mu_ (lock order:
  /// delta_mu_ before mu_; nothing takes them in reverse).
  Mutex delta_mu_;
  std::shared_ptr<StTransRec> delta_instances_[2] GUARDED_BY(delta_mu_);
  size_t delta_standby_ GUARDED_BY(delta_mu_) = 0;
  std::string delta_base_path_ GUARDED_BY(delta_mu_);
  uint64_t applied_delta_seq_ GUARDED_BY(delta_mu_) = 0;
  std::string applied_delta_path_ GUARDED_BY(delta_mu_);

  Mutex watcher_mu_;
  CondVar watcher_cv_;       ///< wakes the watcher's poll sleep for shutdown
  CondVar watcher_stopped_;  ///< signalled once a stop has fully completed
  bool watcher_stop_ GUARDED_BY(watcher_mu_) = false;
  /// Lifecycle state (see StartWatcher/StopWatcher): running_ spans spawn
  /// through the end of the stopper's join; stopping_ marks the one caller
  /// allowed to join. Tracked explicitly because the handle below becomes
  /// non-joinable mid-stop.
  bool watcher_running_ GUARDED_BY(watcher_mu_) = false;
  bool watcher_stopping_ GUARDED_BY(watcher_mu_) = false;
  /// Joined via a local moved out under watcher_mu_ (StopWatcher), so two
  /// concurrent StopWatcher calls can never double-join.
  std::thread watcher_ GUARDED_BY(watcher_mu_);
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_MODEL_BUNDLE_H_
