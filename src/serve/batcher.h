#ifndef STTR_SERVE_BATCHER_H_
#define STTR_SERVE_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "data/types.h"
#include "eval/protocol.h"
#include "serve/stats.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sttr::serve {

struct BatcherConfig {
  /// Flush when the pending (user, poi) pair count reaches this. 1 degrades
  /// to per-request scoring (the loadgen's baseline mode).
  size_t max_batch_pairs = 512;
  /// Don't wait for more traffic once this many pairs are pending. The
  /// default of 1 is continuous batching: the dispatcher flushes whatever
  /// queued while the previous flush was scoring, so batches grow with load
  /// and a lone request is never delayed.
  size_t min_batch_pairs = 1;
  /// With min_batch_pairs > 1: flush no later than this after the *oldest*
  /// pending request arrived, bounding the latency cost of waiting for
  /// co-batchable traffic.
  std::chrono::microseconds max_wait{300};
};

/// Dynamic micro-batching queue: concurrent recommendation requests enqueue
/// their (user, candidates) work and block on a future; a dispatcher thread
/// coalesces everything pending into one ScorePairs call — one MLP forward
/// over the union batch instead of one per request — and distributes the
/// scores back. Because ScorePairs computes every row independently
/// (bit-identical to per-pair Score), batching is invisible in the results;
/// it only changes throughput.
///
/// Dispatch is caller-runs when idle: a Submit that finds the queue empty
/// and no flush in flight scores its own request on the submitting thread,
/// skipping the dispatcher hand-off entirely — so an unloaded server pays
/// no batching overhead. Under load the hand-off path takes over and
/// flushes coalesce. (Only with min_batch_pairs == 1; a larger minimum
/// always queues, since lone requests must wait for co-batchable traffic.)
///
/// A coalesced ScorePairs call runs on the dispatcher thread, from where
/// the model's kernels fan out over the shared GlobalThreadPool exactly as
/// offline batched inference does. At most one flush runs at a time, so
/// scoring working sets never contend with each other for cache.
class ScoreBatcher {
 public:
  /// `stats` (optional) receives batch-occupancy counters.
  explicit ScoreBatcher(BatcherConfig config, ServeStats* stats = nullptr);
  ~ScoreBatcher();

  ScoreBatcher(const ScoreBatcher&) = delete;
  ScoreBatcher& operator=(const ScoreBatcher&) = delete;

  void Start() EXCLUDES(mu_);
  /// Drains pending requests (they still get scored), then joins. Safe to
  /// call concurrently: one caller performs the shutdown, the others block
  /// until it completes — so by the time any Stop() returns, the dispatcher
  /// is joined and the batcher is restartable. In particular the destructor
  /// waits out an explicit Stop already in flight rather than destroying
  /// state the stopper still uses. (As with any object, destruction must
  /// still be externally ordered after all other calls *begin*.)
  void Stop() EXCLUDES(mu_);

  /// Enqueues one request against `model` (kept alive via the shared_ptr
  /// until its flush completes, so a hot reload never pulls a snapshot out
  /// from under a queued request). The future yields scores in `pois` order.
  std::future<std::vector<double>> Submit(
      std::shared_ptr<const PoiScorer> model, UserId user,
      std::vector<PoiId> pois) EXCLUDES(mu_);

  /// ScorePairs flushes issued so far.
  uint64_t num_batches() const EXCLUDES(mu_);

 private:
  struct Request {
    std::shared_ptr<const PoiScorer> model;
    UserId user;
    std::vector<PoiId> pois;
    std::promise<std::vector<double>> promise;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void DispatchLoop() EXCLUDES(mu_);
  /// Pops queued requests up to the pair budget (always at least one, so an
  /// oversized request still flushes as its own batch).
  std::vector<Request> TakeBatchLocked() REQUIRES(mu_);
  /// Scores `batch` (grouped by model snapshot) and fulfils its promises.
  /// Runs with mu_ dropped — scoring must not block Submit admission.
  void Flush(std::vector<Request> batch) EXCLUDES(mu_);

  BatcherConfig config_;
  ServeStats* stats_;

  mutable Mutex mu_;
  CondVar work_ready_;
  /// Signalled (under mu_) once a stop has fully completed; latecomer
  /// Stop() callers wait on this, never on work_ready_, so a NotifyOne
  /// aimed at the dispatcher can't be swallowed by a waiting stopper.
  CondVar stop_done_;
  std::deque<Request> queue_ GUARDED_BY(mu_);
  size_t pending_pairs_ GUARDED_BY(mu_) = 0;
  uint64_t batches_ GUARDED_BY(mu_) = 0;
  /// running_ spans Start() through the end of the stopping caller's join
  /// (the joiner clears it last); stopping_ marks the one Stop() allowed
  /// to join. Start() during a stop is a no-op because running_ is still
  /// true, so a second dispatcher can never be spawned mid-shutdown.
  bool running_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// True while any thread (dispatcher or a caller-runs Submit) is inside
  /// Flush; keeps scoring serialized.
  bool flush_in_flight_ GUARDED_BY(mu_) = false;
  /// Flush-only scratch for the coalesced (user, poi) columns, reused so a
  /// steady stream of flushes stops allocating once the capacity high-water
  /// is reached. Not GUARDED_BY(mu_): Flush runs with mu_ dropped, but at
  /// most one Flush is ever in flight (flush_in_flight_ is set under mu_
  /// before entry and cleared under mu_ after return, so successive flushes
  /// are ordered by the mutex — TSan sees the hand-off).
  std::vector<UserId> flush_users_;
  std::vector<PoiId> flush_pois_;
  /// Joined via a local moved out under mu_, so concurrent Stop() calls
  /// can never double-join.
  std::thread dispatcher_ GUARDED_BY(mu_);
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_BATCHER_H_
