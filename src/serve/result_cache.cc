#include "serve/result_cache.h"

#include <algorithm>

#include "util/check.h"

namespace sttr::serve {

namespace {

/// SplitMix64 finaliser: cheap, well-mixed 64-bit hash step.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Cap on each row-invalidation floor map. Far above any realistic delta
/// stream (deltas touch tens to thousands of rows); past it InvalidateRows
/// degrades to a wholesale flush rather than growing without bound.
constexpr size_t kMaxFloorEntries = 1u << 20;

}  // namespace

size_t ResultCache::KeyHash::operator()(const ResultCacheKey& k) const {
  uint64_t h = Mix(static_cast<uint64_t>(k.user));
  h = Mix(h ^ static_cast<uint64_t>(static_cast<int64_t>(k.city)));
  h = Mix(h ^ k.cell);
  h = Mix(h ^ k.k);
  h = Mix(h ^ k.precision);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache(ResultCacheConfig config)
    : config_(std::move(config)) {
  STTR_CHECK_GT(config_.num_shards, 0u);
  per_shard_capacity_ =
      std::max<size_t>(1, config_.capacity / config_.num_shards);
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardOf(const ResultCacheKey& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::chrono::steady_clock::time_point ResultCache::Now() const {
  return config_.clock ? config_.clock() : std::chrono::steady_clock::now();
}

std::optional<ResultCache::Value> ResultCache::Get(const ResultCacheKey& key) {
  Value value;
  if (!GetInto(key, &value)) return std::nullopt;
  return value;
}

bool ResultCache::GetInto(const ResultCacheKey& key, Value* out) {
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  Shard& shard = ShardOf(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  const Entry& entry = *it->second;
  const bool expired = config_.ttl.count() > 0 && Now() >= entry.expires_at;
  if (entry.generation != gen || expired || RowStale(entry)) {
    // Stale generation or past TTL: evict lazily, count as a miss.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.evictions;
    ++shard.misses;
    return false;
  }
  // Refresh LRU position: splice the hit entry to the front.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  // assign() reuses `out`'s capacity: no allocation once warmed.
  out->assign(it->second->value.begin(), it->second->value.end());
  return true;
}

void ResultCache::Put(const ResultCacheKey& key, Value value) {
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  Shard& shard = ShardOf(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  Entry entry;
  entry.key = key;
  entry.value = std::move(value);
  entry.generation = gen;
  entry.seq = put_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (config_.ttl.count() > 0) entry.expires_at = Now() + config_.ttl;
  shard.lru.push_front(std::move(entry));
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::InvalidateAll() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::InvalidateRows(std::span<const UserId> users,
                                 std::span<const CityId> cities) {
  if (users.empty() && cities.empty()) return;
  // Every entry stamped at or below this floor predates the patch; entries
  // Put() afterwards were scored against the patched rows and survive.
  const uint64_t floor = put_seq_.load(std::memory_order_acquire);
  {
    MutexLock lock(floor_mu_);
    if (user_floor_.size() + users.size() > kMaxFloorEntries ||
        city_floor_.size() + cities.size() > kMaxFloorEntries) {
      // The wholesale flush kills every resident entry, so the floors have
      // nothing left to outdate and the maps can restart empty.
      user_floor_.clear();
      city_floor_.clear();
      InvalidateAll();
    } else {
      for (UserId u : users) {
        uint64_t& f = user_floor_[u];
        f = std::max(f, floor);
      }
      for (CityId c : cities) {
        uint64_t& f = city_floor_[c];
        f = std::max(f, floor);
      }
    }
  }
  uint64_t cur = max_floor_.load(std::memory_order_relaxed);
  while (cur < floor && !max_floor_.compare_exchange_weak(
                            cur, floor, std::memory_order_release,
                            std::memory_order_relaxed)) {
  }
  row_invalidations_.fetch_add(1, std::memory_order_relaxed);
}

bool ResultCache::RowStale(const Entry& entry) {
  // Fast path: newer than every row invalidation so far → cannot be stale.
  if (entry.seq > max_floor_.load(std::memory_order_acquire)) return false;
  MutexLock lock(floor_mu_);
  auto uit = user_floor_.find(entry.key.user);
  if (uit != user_floor_.end() && entry.seq <= uit->second) return true;
  auto cit = city_floor_.find(entry.key.city);
  return cit != city_floor_.end() && entry.seq <= cit->second;
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.row_invalidations = row_invalidations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace sttr::serve
