#ifndef STTR_SERVE_ALLOC_HOOK_H_
#define STTR_SERVE_ALLOC_HOOK_H_

#include <cstdint>

namespace sttr::serve {

/// Counting allocator hook: alloc_hook.cc replaces the global operator
/// new/delete family with thin malloc/free forwards that bump a thread-local
/// counter. Linking sttr_serve swaps the hook in for the whole binary — the
/// serving tests and benches use it to *assert* the zero-allocation property
/// of the request hot path instead of claiming it.
///
/// Cost when linked: one thread-local increment per allocation (no locks, no
/// contention); the allocations themselves still come from malloc. Binaries
/// that don't link sttr_serve are untouched.

/// Allocations (operator new calls) performed by the calling thread since it
/// started. Monotonic; deltas around a code region count its allocations.
uint64_t ThreadAllocCount();

/// Frees (operator delete calls with a non-null pointer) performed by the
/// calling thread.
uint64_t ThreadFreeCount();

/// True when the replacement operators are actually linked into this binary
/// (always true for sttr_serve users; false only if a future build gates the
/// hook out). Tests consult this instead of silently passing.
bool AllocHookActive();

/// RAII allocation meter: counts operator new calls on this thread between
/// construction and Count()/destruction.
class ScopedAllocCount {
 public:
  ScopedAllocCount() : start_(ThreadAllocCount()) {}
  uint64_t Count() const { return ThreadAllocCount() - start_; }

 private:
  uint64_t start_;
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_ALLOC_HOOK_H_
