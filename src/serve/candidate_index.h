#ifndef STTR_SERVE_CANDIDATE_INDEX_H_
#define STTR_SERVE_CANDIDATE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "geo/grid.h"
#include "geo/region_segmentation.h"

namespace sttr::serve {

struct CandidateIndexConfig {
  /// Grid resolution per city (reuses the training-side GridIndex).
  size_t grid_rows = 16;
  size_t grid_cols = 16;
  /// When true, cells are clustered into the paper's "uniformly accessible
  /// regions" (Algorithm 1 over the training check-ins) and candidate
  /// expansion pulls in whole regions: a query near downtown sees the whole
  /// downtown at once instead of a slowly growing square.
  bool use_regions = true;
  /// User-overlap merge threshold delta of Eq. 5 for the region clustering.
  double region_delta = 0.10;
  /// Seed of the (deterministic) region clustering.
  uint64_t seed = 123;
  /// Default lower bound on returned candidates; Candidates() expands rings
  /// until it is met or the city is exhausted.
  size_t min_candidates = 200;
};

/// Maps a query location to the nearby-cell POI candidate list the MLP
/// actually scores, so online requests score hundreds of POIs instead of a
/// whole city. Immutable after construction and safe for concurrent reads.
///
/// Candidate generation expands grid rings (Chebyshev distance 0, 1, 2, ...)
/// around the query cell, unioning in each touched cell's whole region, and
/// stops at the first ring boundary where at least `min_candidates` POIs
/// have been collected. Results are sorted by POI id, so a candidate set is
/// a deterministic function of (city, cell) alone — which is what makes
/// per-cell result caching sound.
class CandidateIndex {
 public:
  /// Builds per-city grids, cell -> POI buckets and (optionally) region
  /// assignments. `split` scopes the region clustering's user-visit counts
  /// to training check-ins; null uses all check-ins. The dataset must
  /// outlive the index.
  CandidateIndex(const Dataset& dataset, const CrossCitySplit* split,
                 CandidateIndexConfig config);

  /// Candidate POIs for a query at `loc` in `city`, sorted by id.
  /// `min_candidates` == 0 uses the config default. Never empty for a city
  /// that has POIs.
  std::vector<PoiId> Candidates(CityId city, const GeoPoint& loc,
                                size_t min_candidates = 0) const;

  /// Reusable per-thread working set for CandidatesInto. The visited-cell /
  /// visited-region bitmaps reach the city's size once and stay there.
  struct Scratch {
    std::vector<char> cell_taken;
    std::vector<char> region_taken;
  };

  /// Candidates() into caller-owned storage: `*out` is cleared and filled
  /// with the same sorted list Candidates() returns. With a warmed
  /// `scratch`/`out` pair this performs zero heap allocations — the serving
  /// workers' cache-miss path uses it.
  void CandidatesInto(CityId city, const GeoPoint& loc, size_t min_candidates,
                      Scratch* scratch, std::vector<PoiId>* out) const;

  /// Grid cell of `loc` in `city` (the result-cache key component).
  size_t CellOf(CityId city, const GeoPoint& loc) const;

  size_t NumCells(CityId city) const;
  size_t NumRegions(CityId city) const;

  const CandidateIndexConfig& config() const { return config_; }

 private:
  struct CityIndex {
    std::unique_ptr<GridIndex> grid;
    /// POI ids per cell, each bucket sorted ascending.
    std::vector<std::vector<PoiId>> cell_pois;
    /// Dense region id per cell (identity when use_regions is false).
    std::vector<int> cell_to_region;
    std::vector<std::vector<size_t>> region_cells;
  };

  const CityIndex& City(CityId city) const;

  CandidateIndexConfig config_;
  std::vector<CityIndex> cities_;
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_CANDIDATE_INDEX_H_
