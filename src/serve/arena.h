#ifndef STTR_SERVE_ARENA_H_
#define STTR_SERVE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace sttr::serve {

/// Bump allocator backing one connection's per-request scratch memory
/// (parsed header slots, the JSON response body, the serialized response
/// bytes). Allocation is a pointer increment; Reset() reclaims everything at
/// once at the next request's start.
///
/// The steady-state contract the serving hot path relies on: growth is a
/// warmup phenomenon. While a request overflows the current block, older
/// blocks are retired (their allocations stay live) and the demand is
/// tracked; Reset() then coalesces to a single block covering the high-water
/// mark, so every later request of the same shape is satisfied from block 0
/// with zero heap allocations. `num_grows()` going flat is the asserted
/// zero-alloc property.
///
/// Not thread-safe by itself; a connection's arena is touched by exactly one
/// thread at a time (the event loop, or the worker the request was handed
/// to), with hand-offs ordered through the loop's queue mutexes.
class Arena {
 public:
  explicit Arena(size_t initial_bytes = 4096)
      : initial_bytes_(initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized memory aligned to `align` (a power of
  /// two). Valid until Reset().
  char* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    size_t off = (used_ + (align - 1)) & ~(align - 1);
    if (block_ == nullptr || off + bytes > capacity_) {
      Grow(bytes);
      off = 0;  // fresh block, already max-aligned
    }
    used_ = off + bytes;
    if (retired_bytes_ + used_ > high_water_) {
      high_water_ = retired_bytes_ + used_;
    }
    return block_.get() + off;
  }

  /// Reclaims every allocation. After a request that overflowed into
  /// retired blocks, coalesces to one block covering the high-water mark so
  /// the next request of the same shape never grows again.
  void Reset() {
    if (capacity_ < high_water_) {
      block_.reset(new char[high_water_]);
      capacity_ = high_water_;
      ++num_grows_;
    }
    retired_.clear();
    retired_bytes_ = 0;
    used_ = 0;
  }

  /// Bytes live in the current block (excludes retired blocks).
  size_t used() const { return used_; }
  /// Largest total demand ever seen between two Resets.
  size_t high_water() const { return high_water_; }
  /// Heap allocations performed so far; constant once warmed.
  uint64_t num_grows() const { return num_grows_; }

 private:
  void Grow(size_t needed) {
    // Retire the current block — its allocations are still live until
    // Reset — and open a block big enough that one request performs O(log)
    // grows at worst, none once warmed.
    size_t next = capacity_ == 0 ? initial_bytes_ : capacity_ * 2;
    while (next < needed) next *= 2;
    if (block_ != nullptr) {
      retired_bytes_ += capacity_;
      retired_.push_back(std::move(block_));
    }
    block_.reset(new char[next]);
    capacity_ = next;
    used_ = 0;
    ++num_grows_;
  }

  size_t initial_bytes_;
  std::unique_ptr<char[]> block_;
  size_t capacity_ = 0;
  size_t used_ = 0;
  /// Sum of retired block capacities (allocations live until Reset).
  size_t retired_bytes_ = 0;
  size_t high_water_ = 0;
  uint64_t num_grows_ = 0;
  std::vector<std::unique_ptr<char[]>> retired_;
};

/// Append-only byte sink on an Arena: the response-assembly buffer. Grows by
/// arena allocation + copy, which after warmup never reaches the heap. The
/// contents live until the arena is Reset — i.e. exactly one request.
class ArenaBuf {
 public:
  /// `arena` must outlive the buffer. Rebind per request via Clear().
  explicit ArenaBuf(Arena* arena) : arena_(arena) {}

  void Clear() {
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  void Append(std::string_view s) {
    if (s.empty()) return;
    EnsureRoom(s.size());
    std::memcpy(data_ + size_, s.data(), s.size());
    size_ += s.size();
  }
  void Append(char c) {
    EnsureRoom(1);
    data_[size_++] = c;
  }
  /// Unsigned/signed decimal append without touching the heap.
  void AppendUint(uint64_t v) {
    char tmp[20];
    size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    EnsureRoom(n);
    while (n > 0) data_[size_++] = tmp[--n];
  }
  void AppendInt(int64_t v) {
    if (v < 0) {
      Append('-');
      // Negate in unsigned space so INT64_MIN doesn't overflow.
      AppendUint(~static_cast<uint64_t>(v) + 1);
    } else {
      AppendUint(static_cast<uint64_t>(v));
    }
  }

  std::string_view view() const { return {data_, size_}; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void EnsureRoom(size_t more) {
    if (size_ + more <= capacity_) return;
    size_t next = capacity_ == 0 ? 256 : capacity_ * 2;
    while (next < size_ + more) next *= 2;
    char* grown = arena_->Allocate(next, 1);
    if (size_ > 0) std::memcpy(grown, data_, size_);
    data_ = grown;
    capacity_ = next;
  }

  Arena* arena_;
  char* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_ARENA_H_
