#include "serve/candidate_index.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"
#include "util/rng.h"

namespace sttr::serve {

CandidateIndex::CandidateIndex(const Dataset& dataset,
                               const CrossCitySplit* split,
                               CandidateIndexConfig config)
    : config_(std::move(config)) {
  STTR_CHECK_GT(config_.grid_rows, 0u);
  STTR_CHECK_GT(config_.grid_cols, 0u);
  cities_.resize(dataset.num_cities());
  for (CityId c = 0; c < static_cast<CityId>(dataset.num_cities()); ++c) {
    CityIndex& index = cities_[static_cast<size_t>(c)];
    index.grid = std::make_unique<GridIndex>(dataset.city(c).box,
                                             config_.grid_rows,
                                             config_.grid_cols);
    index.cell_pois.resize(index.grid->NumCells());
    for (PoiId v : dataset.PoisInCity(c)) {
      index.cell_pois[index.grid->CellOf(dataset.poi(v).location)]
          .push_back(v);
    }
    for (auto& bucket : index.cell_pois) {
      std::sort(bucket.begin(), bucket.end());
    }

    if (config_.use_regions) {
      RegionSegmenter segmenter(*index.grid, config_.region_delta);
      const auto add_visit = [&](const CheckinRecord& rec) {
        if (rec.city != c) return;
        segmenter.AddVisit(index.grid->CellOf(dataset.poi(rec.poi).location),
                           rec.user);
      };
      if (split != nullptr) {
        for (size_t i : split->train) add_visit(dataset.checkins()[i]);
      } else {
        for (const CheckinRecord& rec : dataset.checkins()) add_visit(rec);
      }
      Rng rng(config_.seed ^ static_cast<uint64_t>(c));
      RegionAssignment assignment = segmenter.Segment(rng);
      index.cell_to_region = std::move(assignment.cell_to_region);
      index.region_cells = std::move(assignment.region_cells);
    } else {
      index.cell_to_region.resize(index.grid->NumCells());
      index.region_cells.resize(index.grid->NumCells());
      for (size_t cell = 0; cell < index.grid->NumCells(); ++cell) {
        index.cell_to_region[cell] = static_cast<int>(cell);
        index.region_cells[cell] = {cell};
      }
    }
  }
}

const CandidateIndex::CityIndex& CandidateIndex::City(CityId city) const {
  STTR_CHECK_GE(city, 0);
  STTR_CHECK_LT(static_cast<size_t>(city), cities_.size());
  return cities_[static_cast<size_t>(city)];
}

size_t CandidateIndex::CellOf(CityId city, const GeoPoint& loc) const {
  return City(city).grid->CellOf(loc);
}

size_t CandidateIndex::NumCells(CityId city) const {
  return City(city).grid->NumCells();
}

size_t CandidateIndex::NumRegions(CityId city) const {
  return City(city).region_cells.size();
}

std::vector<PoiId> CandidateIndex::Candidates(CityId city, const GeoPoint& loc,
                                              size_t min_candidates) const {
  Scratch scratch;
  std::vector<PoiId> out;
  CandidatesInto(city, loc, min_candidates, &scratch, &out);
  return out;
}

void CandidateIndex::CandidatesInto(CityId city, const GeoPoint& loc,
                                    size_t min_candidates, Scratch* scratch,
                                    std::vector<PoiId>* out_ptr) const {
  const CityIndex& index = City(city);
  const GridIndex& grid = *index.grid;
  const size_t target =
      min_candidates == 0 ? config_.min_candidates : min_candidates;

  const size_t origin = grid.CellOf(loc);
  const long row0 = static_cast<long>(grid.RowOf(origin));
  const long col0 = static_cast<long>(grid.ColOf(origin));
  const long max_radius =
      std::max(std::max(row0, static_cast<long>(grid.rows()) - 1 - row0),
               std::max(col0, static_cast<long>(grid.cols()) - 1 - col0));

  // assign() reuses the scratch capacity: allocation-free once warmed.
  std::vector<char>& cell_taken = scratch->cell_taken;
  std::vector<char>& region_taken = scratch->region_taken;
  cell_taken.assign(grid.NumCells(), 0);
  region_taken.assign(index.region_cells.size(), 0);
  std::vector<PoiId>& out = *out_ptr;
  out.clear();

  const auto take_cell = [&](size_t cell) {
    // Pull in the cell's whole region, so a region straddling the ring
    // boundary contributes all of its POIs at once.
    const int region = index.cell_to_region[cell];
    if (region_taken[static_cast<size_t>(region)]) return;
    region_taken[static_cast<size_t>(region)] = 1;
    for (size_t member : index.region_cells[static_cast<size_t>(region)]) {
      if (cell_taken[member]) continue;
      cell_taken[member] = 1;
      const auto& bucket = index.cell_pois[member];
      out.insert(out.end(), bucket.begin(), bucket.end());
    }
  };

  for (long radius = 0; radius <= max_radius; ++radius) {
    // Cells at Chebyshev distance exactly `radius` from the origin.
    const long rlo = row0 - radius, rhi = row0 + radius;
    const long clo = col0 - radius, chi = col0 + radius;
    for (long r = rlo; r <= rhi; ++r) {
      if (r < 0 || r >= static_cast<long>(grid.rows())) continue;
      for (long col = clo; col <= chi; ++col) {
        if (col < 0 || col >= static_cast<long>(grid.cols())) continue;
        if (std::max(std::labs(r - row0), std::labs(col - col0)) != radius) {
          continue;
        }
        take_cell(static_cast<size_t>(r) * grid.cols() +
                  static_cast<size_t>(col));
      }
    }
    // Stop only at ring boundaries: the candidate set is then a function of
    // (city, origin cell) alone, independent of cell iteration order.
    if (out.size() >= target) break;
  }

  std::sort(out.begin(), out.end());
}

}  // namespace sttr::serve
