// Global operator new/delete replacement that counts per-thread allocations
// (see alloc_hook.h). The replacement is legal C++ ([replacement.functions]):
// these definitions take precedence over the library's at link time for the
// whole binary. Sanitizer builds still work — ASan/TSan intercept the malloc
// and free these forwards call.
//
// The counters are plain thread-local uint64_t (zero-initialized, no guard
// variable, no dynamic init), so the operators are safe to call before main
// and from any thread with no synchronization.

#include "serve/alloc_hook.h"

#include <cstdlib>
#include <new>

namespace sttr::serve {
namespace {

thread_local uint64_t t_allocs = 0;
thread_local uint64_t t_frees = 0;

void* CountedAlloc(size_t size) {
  ++t_allocs;
  // malloc(0) may return null; operator new must return a unique pointer.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocAligned(size_t size, size_t align) {
  ++t_allocs;
  // aligned_alloc requires size to be a multiple of the alignment.
  const size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void CountedFree(void* p) noexcept {
  if (p == nullptr) return;
  ++t_frees;
  std::free(p);
}

}  // namespace

uint64_t ThreadAllocCount() { return t_allocs; }
uint64_t ThreadFreeCount() { return t_frees; }
bool AllocHookActive() { return true; }

}  // namespace sttr::serve

// -- Replacement operators (whole-binary scope). ------------------------------

void* operator new(std::size_t size) { return sttr::serve::CountedAlloc(size); }
void* operator new[](std::size_t size) {
  return sttr::serve::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++sttr::serve::t_allocs;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++sttr::serve::t_allocs;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return sttr::serve::CountedAllocAligned(size,
                                          static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return sttr::serve::CountedAllocAligned(size,
                                          static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { sttr::serve::CountedFree(p); }
void operator delete[](void* p) noexcept { sttr::serve::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept {
  sttr::serve::CountedFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  sttr::serve::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  sttr::serve::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  sttr::serve::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  sttr::serve::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  sttr::serve::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  sttr::serve::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  sttr::serve::CountedFree(p);
}
