#include "serve/shard_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/st_transrec.h"
#include "util/logging.h"
#include "util/socket_io.h"

namespace sttr::serve {

namespace {

/// Writes all of `data` on a blocking socket. Returns false on error — or
/// when an injected send fault fired, in which case the connection is torn
/// down mid-frame exactly as a crashing shard would leave it.
bool SendAll(int fd, std::string_view data, FaultInjectionSocket* fault) {
  size_t off = 0;
  while (off < data.size()) {
    const uint64_t before = fault ? fault->faults_triggered() : 0;
    const ssize_t n =
        net::Send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL, fault);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
    if (fault && fault->faults_triggered() != before) return false;
  }
  return true;
}

}  // namespace

ShardSlice BuildShardSlice(const StTransRec& model, size_t shard_index,
                           size_t num_shards) {
  STTR_CHECK_GT(num_shards, 0u);
  STTR_CHECK_LT(shard_index, num_shards);
  const Tensor& users = model.UserEmbeddingTable();
  const Tensor& pois = model.PoiEmbeddingTable();
  ShardSlice slice;
  slice.shard_index = shard_index;
  slice.num_shards = num_shards;
  slice.dim = users.cols();
  slice.total_users = users.rows();
  slice.total_pois = pois.rows();
  const auto extract = [&](const Tensor& table, std::vector<float>* out) {
    const size_t local_rows =
        ShardRowCount(table.rows(), shard_index, num_shards);
    out->resize(local_rows * slice.dim);
    for (size_t local = 0; local < local_rows; ++local) {
      const size_t global = local * num_shards + shard_index;
      std::memcpy(out->data() + local * slice.dim, table.row(global),
                  slice.dim * sizeof(float));
    }
  };
  extract(users, &slice.user_rows);
  extract(pois, &slice.poi_rows);
  return slice;
}

ShardServer::ShardServer(ShardServerConfig config, ShardSlice slice)
    : config_(config), slice_(std::move(slice)) {}

ShardServer::~ShardServer() { Shutdown(); }

Status ShardServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, static_cast<int>(config_.backlog)) < 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  {
    MutexLock lock(mu_);
    started_ = true;
  }
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  STTR_LOG(Debug) << "shard " << slice_.shard_index << "/" << slice_.num_shards
                  << " serving on 127.0.0.1:" << port_;
  return Status::OK();
}

void ShardServer::Shutdown() {
  if (stopping_.exchange(true)) {
    // A second caller still has to wait for the first teardown to finish.
    if (acceptor_.joinable()) acceptor_.join();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_ = -1;
  {
    MutexLock lock(mu_);
    // Wake blocked workers fast: recv on a shutdown fd returns immediately.
    // Workers own the close.
    for (const int fd : in_flight_) ::shutdown(fd, SHUT_RDWR);
    queue_cv_.NotifyAll();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  MutexLock lock(mu_);
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
}

void ShardServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (shutdown) or fatal accept error
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{};
    const auto tick = config_.recv_tick;
    tv.tv_sec = static_cast<time_t>(tick.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((tick.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    MutexLock lock(mu_);
    pending_.push_back(fd);
    queue_cv_.NotifyOne();
  }
}

void ShardServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(mu_);
      while (pending_.empty() && !stopping_.load(std::memory_order_relaxed)) {
        queue_cv_.Wait(mu_);
      }
      if (pending_.empty()) return;  // stopping, queue drained
      fd = pending_.front();
      pending_.pop_front();
      in_flight_.push_back(fd);
    }
    ServeConnection(fd);
    MutexLock lock(mu_);
    in_flight_.erase(std::find(in_flight_.begin(), in_flight_.end(), fd));
    ::close(fd);
  }
}

void ShardServer::ServeConnection(int fd) {
  std::string buffer;
  std::string response;
  char chunk[16 * 1024];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const ssize_t n =
        net::Recv(fd, chunk, sizeof(chunk), 0, config_.fault);
    if (n == 0) return;  // client closed
    if (n < 0) {
      // SO_RCVTIMEO tick (or injected stall): re-check stopping_ and wait on.
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    // Drain every complete frame in the buffer before the next recv.
    for (;;) {
      GatherRequest req;
      size_t consumed = 0;
      const FrameParse parse = ParseGatherRequest(buffer, &req, &consumed);
      if (parse == FrameParse::kNeedMore) break;
      if (parse == FrameParse::kBad) return;  // garbage stream: drop it
      buffer.erase(0, consumed);
      response.clear();
      if (stopping_.load(std::memory_order_relaxed)) {
        AppendGatherResponse(req.request_id, GatherStatus::kShuttingDown, 0,
                             {}, &response);
      } else {
        HandleGather(req, &response);
      }
      if (!SendAll(fd, response, config_.fault)) return;
    }
  }
}

void ShardServer::HandleGather(const GatherRequest& req,
                               std::string* out) const {
  const bool user = req.table == EmbeddingTable::kUser;
  const std::vector<float>& src = user ? slice_.user_rows : slice_.poi_rows;
  const size_t total = user ? slice_.total_users : slice_.total_pois;
  const size_t dim = slice_.dim;
  std::vector<float> rows(req.ids.size() * dim);
  for (size_t i = 0; i < req.ids.size(); ++i) {
    const int64_t id = req.ids[i];
    if (id < 0 || static_cast<size_t>(id) >= total ||
        ShardOfId(id, slice_.num_shards) != slice_.shard_index) {
      out->clear();
      AppendGatherResponse(req.request_id, GatherStatus::kOutOfRange, 0, {},
                           out);
      return;
    }
    const size_t local = ShardLocalIndex(id, slice_.num_shards);
    std::memcpy(rows.data() + i * dim, src.data() + local * dim,
                dim * sizeof(float));
  }
  AppendGatherResponse(req.request_id, GatherStatus::kOk,
                       static_cast<uint32_t>(dim), rows, out);
  gathers_served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sttr::serve
