#ifndef STTR_SERVE_SHARD_SERVER_H_
#define STTR_SERVE_SHARD_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "serve/shard_protocol.h"
#include "util/mutex.h"
#include "util/socket_fault.h"
#include "util/status.h"

namespace sttr {
class StTransRec;
}  // namespace sttr

namespace sttr::serve {

/// The rows one shard owns under modulo placement, densely packed:
/// global id `g` (with g % num_shards == shard_index) lives at local row
/// `g / num_shards`. Quotient indexing keeps the slice a flat array — the
/// shard's gather loop is a bounds check and a memcpy per row.
struct ShardSlice {
  size_t shard_index = 0;
  size_t num_shards = 1;
  size_t dim = 0;
  size_t total_users = 0;  // full-table row counts, for bounds checks
  size_t total_pois = 0;
  std::vector<float> user_rows;  // ShardRowCount(total_users, ...) * dim
  std::vector<float> poi_rows;
};

/// Extracts shard `shard_index` of `num_shards` from a fitted model's
/// embedding tables. The concatenation of all slices is a permutation of the
/// full tables, so sharded gathers reassemble bit-identical rows.
ShardSlice BuildShardSlice(const StTransRec& model, size_t shard_index,
                           size_t num_shards);

struct ShardServerConfig {
  /// 0 picks an ephemeral port; read it back via port() after Start().
  int port = 0;
  size_t num_workers = 2;
  size_t backlog = 64;
  /// Per-recv idle tick: workers wake this often to observe shutdown.
  std::chrono::milliseconds recv_tick{50};
  /// Optional server-side fault injection (torn/stalled responses).
  FaultInjectionSocket* fault = nullptr;
};

/// One embedding shard behind the gather protocol: blocking accept loop
/// feeding a small worker pool, one connection per worker at a time (the
/// router holds few long-lived connections per shard, so event-loop
/// machinery would buy nothing here). Runs in-process for tests and chaos
/// soaks (Start/Shutdown at will — "kill a shard" is one method call) and
/// inside tools/sttr_shard_server.cpp as the real multi-process backend.
class ShardServer {
 public:
  ShardServer(ShardServerConfig config, ShardSlice slice);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds, listens, and spawns acceptor + workers. Not restartable after
  /// Shutdown() — chaos tests construct a fresh instance on the same port.
  Status Start();

  /// Stops accepting, closes every connection (mid-frame included — clients
  /// see a torn stream, exactly like a killed process), joins all threads.
  /// Idempotent.
  void Shutdown();

  int port() const { return port_; }
  const ShardSlice& slice() const { return slice_; }
  uint64_t gathers_served() const {
    return gathers_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection until EOF, error, or shutdown.
  void ServeConnection(int fd);
  /// Builds the response frame for one decoded request.
  void HandleGather(const GatherRequest& req, std::string* out) const;

  const ShardServerConfig config_;
  const ShardSlice slice_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  mutable std::atomic<uint64_t> gathers_served_{0};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar queue_cv_;
  std::deque<int> pending_ GUARDED_BY(mu_);      // accepted, not yet served
  std::vector<int> in_flight_ GUARDED_BY(mu_);   // being served by a worker
  bool started_ GUARDED_BY(mu_) = false;
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_SHARD_SERVER_H_
