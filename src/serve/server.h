#ifndef STTR_SERVE_SERVER_H_
#define STTR_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "serve/batcher.h"
#include "serve/candidate_index.h"
#include "serve/conn.h"
#include "serve/embedding_store.h"
#include "serve/event_loop.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/stats.h"
#include "stream/cold_start.h"
#include "stream/ingest_service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sttr::serve {

/// How the server drives its sockets.
enum class ServeMode {
  /// Epoll event loops own nonblocking sockets and parse incrementally;
  /// complete requests are handed to a scoring worker pool over a bounded
  /// ring and responses are written back via write readiness. The
  /// steady-state request path performs zero heap allocations. Scales to
  /// thousands of mostly-idle keep-alive connections.
  kEventLoop,
  /// The original thread-per-connection blocking implementation: a worker
  /// blocks on recv/send for one connection at a time, so concurrency is
  /// capped at num_workers. Kept as the byte-exact reference the event-loop
  /// mode is equivalence-tested against, and as the benchmark baseline.
  kBlocking,
};

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Socket strategy; see ServeMode. Event loop is the default.
  ServeMode mode = ServeMode::kEventLoop;
  /// kBlocking: handler threads == max concurrently served connections.
  /// kEventLoop: scoring worker threads draining the request ring.
  size_t num_workers = 8;
  /// kEventLoop: epoll I/O threads. One loop comfortably drives thousands
  /// of keep-alive connections; scoring parallelism lives in num_workers.
  size_t num_io_threads = 1;
  /// kBlocking: accepted connections beyond the workers queue up to this
  /// depth; past it they are answered 503 and closed.
  size_t max_pending_connections = 64;
  /// kEventLoop: open sockets across all loops; connections beyond the cap
  /// are answered 503 and closed.
  size_t max_connections = 4096;
  /// kEventLoop: bounded loop->worker request ring. When full, requests are
  /// answered 503 "server overloaded" immediately (admission control)
  /// instead of queueing unboundedly.
  size_t max_queued_requests = 1024;
  /// Per-read socket timeout; an idle keep-alive connection is closed when
  /// it fires (a stranded partial request gets a 408 first).
  std::chrono::milliseconds request_timeout{5000};
  /// Request line + headers larger than this are rejected 431.
  size_t max_request_bytes = 16 * 1024;
  /// Default K when /recommend omits ?k=.
  size_t default_k = 10;
  /// Largest accepted ?k= (bounds per-request work).
  size_t max_k = 100;
  /// Default city when /recommend omits ?city= (the split's target city).
  CityId default_city = 0;
  /// Requests may bypass the cache with ?nocache=1 (the loadgen's cold
  /// mode); this disables the cache entirely.
  bool enable_cache = true;
  /// Per-request embedding-store gather budget (only used when a store is
  /// configured). A stalled shard can consume at most this much of a
  /// request's time before the request degrades.
  std::chrono::milliseconds store_deadline{50};
};

/// Minimal HTTP/1.1 JSON server over POSIX sockets gluing the serving
/// pieces together:
///
///   GET /recommend?user=U&lat=..&lon=..[&city=C][&k=K][&nocache=1]
///       -> {"user":U, "city":C, "cell":id, "k":K, "cached":bool,
///           "model_epoch":E, "model_version":V,
///           "results":[{"poi":id, "score":s}, ...]}
///   GET /healthz -> serving readiness + current snapshot provenance
///   GET /statz   -> ServeStats::ToJson()
///   POST /checkin?user=U&poi=P[&city=C][&t=T]  (GET accepted too)
///       -> {"accepted": true, "seq": N} | 400 | 503 when the ingest log is
///       full; 404 when no ingest service is configured. Feeds the
///       streaming trainer (stream/ingest_service.h).
///
/// With a ColdStartScorer configured, /recommend detects a user with no
/// history in the request city and scores through the word bridge instead
/// of the interaction tower (see stream/cold_start.h); such responses carry
/// "cold_start": true, bypass the result cache, and honour an optional
/// &hour=H time-of-day parameter.
///
/// One request's path: snapshot capture -> cache probe (keyed by the query
/// location's grid cell) -> candidate generation -> micro-batched scoring ->
/// TopKByScore -> cache fill. Keep-alive and pipelining are supported;
/// shutdown is graceful (stop accepting, finish in-flight requests, join
/// every thread). The two ServeModes produce byte-identical responses.
///
/// Event-loop mode hot path (zero allocations once warmed): the loop parses
/// from the connection's sticky buffer, validates parameters as views, and
/// enqueues a POD task; a worker probes the cache into per-worker scratch,
/// assembles JSON in the connection's arena, and posts a completion; the
/// loop serializes headers into the same arena and writes. Allocation
/// counters (ServeStats::hot_allocs et al., fed by the counting operator-new
/// hook) assert the property instead of claiming it.
class RecommendServer {
 public:
  /// All dependencies must outlive the server. `cache` may be null iff
  /// config.enable_cache is false. `batcher` may be null: requests then
  /// score inline on their worker thread (per-request mode, the loadgen's
  /// micro-batching baseline), bit-identical to the batched path.
  ///
  /// `store` (optional) routes embedding lookups through an EmbeddingStore
  /// instead of the snapshot's own tables: rows are gathered under
  /// config.store_deadline and scored with the snapshot's MLP tower,
  /// bit-identical to direct scoring when the store is healthy. When a
  /// gather fails (shards down/stalled), the request is served *degraded* —
  /// cached results if valid, else a candidate-popularity ranking — with
  /// "degraded": true in the response, never silently different scores.
  /// Store-backed responses additionally carry "degraded": false, so a
  /// store-less server's bytes are unchanged. The store only applies to
  /// fp32 snapshots of the model version serving when Start() ran; after a
  /// hot reload the server scores in-process again (correct, not degraded).
  ///
  /// `ingest` (optional) enables POST /checkin, feeding the streaming
  /// trainer; without it the route answers 404. `cold_start` (optional)
  /// enables word-bridge scoring for target-city-cold users on /recommend.
  RecommendServer(ServerConfig config, const Dataset& dataset,
                  ModelBundle* bundle, CandidateIndex* index,
                  ScoreBatcher* batcher, ResultCache* cache,
                  ServeStats* stats, EmbeddingStore* store = nullptr,
                  stream::IngestService* ingest = nullptr,
                  const stream::ColdStartScorer* cold_start = nullptr);
  ~RecommendServer();

  RecommendServer(const RecommendServer&) = delete;
  RecommendServer& operator=(const RecommendServer&) = delete;

  /// Binds, listens and spawns the accept + I/O + worker threads.
  Status Start();

  /// Graceful shutdown: closes the listener, finishes in-flight requests,
  /// joins all threads. Idempotent.
  void Shutdown();

  /// Bound port (after Start()).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  // ---- Event-loop mode ------------------------------------------------

  /// Validated /recommend parameters, plain data so a queued task copies
  /// them out of the connection's input buffer before the views die.
  struct RequestParams {
    int64_t user = -1;
    double lat = 0.0;
    double lon = 0.0;
    int64_t city = 0;
    int64_t k = 0;
    bool use_cache = false;
    /// /checkin: target POI. Unused by /recommend.
    int64_t poi = -1;
    /// Hour-of-day clock value: /checkin's &t= (event time) and
    /// /recommend's &hour= (cold-start bucket). Negative = not given.
    double t = -1.0;
  };

  /// One queued request, POD so the ring never allocates. `conn` stays
  /// valid for the task's whole life: the loop never recycles a
  /// kProcessing connection, and (fd, generation) guards the completion.
  struct Task {
    enum class Kind : uint8_t { kRecommend, kHealthz, kStatz, kCheckin };
    EventLoop* loop = nullptr;
    Conn* conn = nullptr;
    int fd = -1;
    uint64_t generation = 0;
    Kind kind = Kind::kRecommend;
    RequestParams params;
  };

  /// Per-scoring-worker reusable buffers; every member's capacity is
  /// sticky, so a warmed worker serves cache hits without allocating.
  struct WorkerScratch {
    CandidateIndex::Scratch cand;
    std::vector<PoiId> candidates;
    ResultCache::Value cached;
    std::vector<UserId> users;
  };

  /// Loop-thread request router: answers errors synchronously (zero-alloc,
  /// pre-serialized bodies), enqueues real work for the scoring workers.
  EventLoop::Dispatch OnRequest(EventLoop* loop, Conn& conn,
                                const ParsedRequest& req);
  /// Parses and validates ?query params with the blocking path's exact
  /// semantics and error precedence. False: *status/*error describe the 400.
  bool ParseRecommendParams(std::string_view query, RequestParams* out,
                            int* status, std::string_view* error) const;
  /// /checkin analogue of ParseRecommendParams; id range checks live in
  /// IngestService::Submit, so parsing only rejects malformed values.
  bool ParseCheckinParams(std::string_view query, RequestParams* out,
                          int* status, std::string_view* error) const;
  bool EnqueueTask(const Task& task) EXCLUDES(task_mu_);
  void ScoringWorkerLoop() EXCLUDES(task_mu_);
  /// Fill conn.body/http_status; called from a scoring worker (event-loop
  /// mode). Byte-identical to the blocking HandleRecommend/Healthz/Statz.
  void ProcessRecommend(const RequestParams& params, WorkerScratch& scratch,
                        Conn& conn);
  void ProcessHealthz(Conn& conn);
  void ProcessStatz(Conn& conn);
  void ProcessCheckin(const RequestParams& params, Conn& conn);
  /// Refreshes the /statz snapshot gauges (resident bytes, precision) from
  /// the bundle's current snapshot. Const: only touches atomics.
  void RefreshSnapshotGauges() const;
  void RecordLatency(std::chrono::steady_clock::time_point start);

  // ---- Blocking mode (legacy reference implementation) ----------------

  void WorkerLoop() EXCLUDES(queue_mu_);
  /// Serves one connection (possibly many keep-alive requests).
  void HandleConnection(int fd);
  /// Parses and answers a single request; false ends the connection.
  bool HandleOneRequest(int fd, std::string& buffer);
  std::string HandleRecommend(const std::string& query, int* http_status);
  std::string HandleCheckin(const std::string& query, int* http_status);
  std::string HandleStatz() const;

  /// Submits a parsed check-in and builds the response body — the single
  /// implementation both modes share, so their bytes cannot drift.
  std::string CheckinBody(const RequestParams& params, int* http_status);

  // ---- Shared ---------------------------------------------------------

  void AcceptLoop() EXCLUDES(queue_mu_);

  /// True when this request's snapshot can score through the configured
  /// store: fp32 model present and still the version the store was built
  /// against.
  bool StoreUsable(const ModelSnapshot& snapshot) const;
  /// Store-backed scoring: gathers the user and candidate rows under
  /// config.store_deadline, assembles the MLP input exactly as ScorePairs
  /// does, and scores with the snapshot's tower. False: the store could not
  /// serve the rows in time — the caller degrades.
  bool ScoreViaStore(const StTransRec& model, UserId user,
                     std::span<const PoiId> pois,
                     std::vector<double>* scores) const;
  /// Degraded ranking: global check-in popularity of each candidate.
  void PopularityScores(std::span<const PoiId> pois,
                        std::vector<double>* scores) const;
  /// /healthz body + status shared by both modes: 503 with a reason while
  /// no model is loadable or the store has shards down, 200 otherwise.
  std::string HealthzBody(int* http_status) const;

  ServerConfig config_;
  const Dataset& dataset_;
  ModelBundle* bundle_;
  CandidateIndex* index_;
  ScoreBatcher* batcher_;
  ResultCache* cache_;
  ServeStats* stats_;
  EmbeddingStore* store_;
  stream::IngestService* ingest_;
  const stream::ColdStartScorer* cold_start_;
  /// Model version the store's rows correspond to, captured at Start().
  uint64_t store_version_ = 0;
  /// Per-POI global check-in counts, built once when a store is configured
  /// (the degraded fallback ranking).
  std::vector<double> poi_popularity_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutting_down_{false};
  std::chrono::steady_clock::time_point started_at_;

  // Blocking mode: pending accepted sockets -> handler threads.
  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<int> pending_ GUARDED_BY(queue_mu_);

  // Event-loop mode: bounded request ring -> scoring workers.
  Mutex task_mu_;
  CondVar task_cv_;
  std::vector<Task> ring_ GUARDED_BY(task_mu_);
  size_t ring_head_ GUARDED_BY(task_mu_) = 0;
  size_t ring_count_ GUARDED_BY(task_mu_) = 0;
  bool workers_stop_ GUARDED_BY(task_mu_) = false;

  std::vector<std::unique_ptr<EventLoop>> loops_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_SERVER_H_
