#ifndef STTR_SERVE_SERVER_H_
#define STTR_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "serve/batcher.h"
#include "serve/candidate_index.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/stats.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sttr::serve {

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Handler threads == max concurrently served connections.
  size_t num_workers = 8;
  /// Accepted connections beyond the workers queue up to this depth; past
  /// it they are answered 503 and closed.
  size_t max_pending_connections = 64;
  /// Per-read socket timeout; an idle keep-alive connection is closed when
  /// it fires.
  std::chrono::milliseconds request_timeout{5000};
  /// Request line + headers larger than this are rejected 431.
  size_t max_request_bytes = 16 * 1024;
  /// Default K when /recommend omits ?k=.
  size_t default_k = 10;
  /// Largest accepted ?k= (bounds per-request work).
  size_t max_k = 100;
  /// Default city when /recommend omits ?city= (the split's target city).
  CityId default_city = 0;
  /// Requests may bypass the cache with ?nocache=1 (the loadgen's cold
  /// mode); this disables the cache entirely.
  bool enable_cache = true;
};

/// Minimal HTTP/1.1 JSON server over POSIX sockets gluing the serving
/// pieces together:
///
///   GET /recommend?user=U&lat=..&lon=..[&city=C][&k=K][&nocache=1]
///       -> {"user":U, "city":C, "cell":id, "k":K, "cached":bool,
///           "model_epoch":E, "model_version":V,
///           "results":[{"poi":id, "score":s}, ...]}
///   GET /healthz -> serving readiness + current snapshot provenance
///   GET /statz   -> ServeStats::ToJson()
///
/// One request's path: snapshot capture -> cache probe (keyed by the query
/// location's grid cell) -> candidate generation -> micro-batched scoring ->
/// TopKByScore -> cache fill. Keep-alive is supported; shutdown is graceful
/// (stop accepting, drain queued connections, join every worker).
class RecommendServer {
 public:
  /// All dependencies must outlive the server. `cache` may be null iff
  /// config.enable_cache is false. `batcher` may be null: requests then
  /// score inline on their handler thread (per-request mode, the loadgen's
  /// micro-batching baseline), bit-identical to the batched path.
  RecommendServer(ServerConfig config, const Dataset& dataset,
                  ModelBundle* bundle, CandidateIndex* index,
                  ScoreBatcher* batcher, ResultCache* cache,
                  ServeStats* stats);
  ~RecommendServer();

  RecommendServer(const RecommendServer&) = delete;
  RecommendServer& operator=(const RecommendServer&) = delete;

  /// Binds, listens and spawns the accept + worker threads.
  Status Start();

  /// Graceful shutdown: closes the listener, serves already-accepted
  /// connections to completion, joins all threads. Idempotent.
  void Shutdown();

  /// Bound port (after Start()).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop() EXCLUDES(queue_mu_);
  void WorkerLoop() EXCLUDES(queue_mu_);
  /// Serves one connection (possibly many keep-alive requests).
  void HandleConnection(int fd);
  /// Parses and answers a single request; false ends the connection.
  bool HandleOneRequest(int fd, std::string& buffer);

  std::string HandleRecommend(const std::string& query, int* http_status);
  std::string HandleHealthz() const;
  std::string HandleStatz() const;

  ServerConfig config_;
  const Dataset& dataset_;
  ModelBundle* bundle_;
  CandidateIndex* index_;
  ScoreBatcher* batcher_;
  ResultCache* cache_;
  ServeStats* stats_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutting_down_{false};
  std::chrono::steady_clock::time_point started_at_;

  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<int> pending_ GUARDED_BY(queue_mu_);

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_SERVER_H_
