#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace sttr::serve {

ScoreBatcher::ScoreBatcher(BatcherConfig config, ServeStats* stats)
    : config_(config), stats_(stats) {
  STTR_CHECK_GT(config_.max_batch_pairs, 0u);
}

ScoreBatcher::~ScoreBatcher() { Stop(); }

void ScoreBatcher::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

void ScoreBatcher::Stop() {
  // Move the handle out under the lock so exactly one caller joins: two
  // concurrent Stop() calls (say, an explicit Stop racing the destructor's)
  // used to both reach dispatcher_.join(), which is undefined behaviour on
  // the second join. Latecomers block on stop_done_ until the winner has
  // fully finished — if they returned as soon as they saw stopping_, a
  // latecoming destructor could destroy mu_/the condvars while the winner
  // was still joining, trading the double-join UB for use-after-destruction
  // UB. stop_done_ is a dedicated condvar so the winner's wakeup can never
  // be swallowed by a work_ready_ NotifyOne meant for the dispatcher.
  std::thread to_join;
  {
    MutexLock lock(mu_);
    while (stopping_) stop_done_.Wait(mu_);
    if (!running_) return;
    stopping_ = true;
    to_join = std::move(dispatcher_);
    work_ready_.NotifyAll();
  }
  to_join.join();
  // Notify under the lock: a woken latecomer still has to reacquire mu_,
  // so it cannot observe the stop as complete (and let the destructor run)
  // until our MutexLock has released the mutex — the winner's last touch
  // of the object.
  MutexLock lock(mu_);
  running_ = false;
  stopping_ = false;
  stop_done_.NotifyAll();
}

std::future<std::vector<double>> ScoreBatcher::Submit(
    std::shared_ptr<const PoiScorer> model, UserId user,
    std::vector<PoiId> pois) {
  Request req;
  req.model = std::move(model);
  req.user = user;
  req.pois = std::move(pois);
  req.enqueued_at = std::chrono::steady_clock::now();
  std::future<std::vector<double>> future = req.promise.get_future();
  mu_.Lock();
  STTR_CHECK(running_ && !stopping_) << "Submit() on a stopped ScoreBatcher";

  // Caller-runs fast path: nothing queued and nobody scoring, so handing
  // off to the dispatcher would only add a wake-up and two context
  // switches. Score right here instead. Skipped when min_batch_pairs asks
  // lone requests to wait for co-batchable traffic.
  if (config_.min_batch_pairs <= 1 && queue_.empty() && !flush_in_flight_) {
    flush_in_flight_ = true;
    ++batches_;
    mu_.Unlock();
    std::vector<Request> one;
    one.push_back(std::move(req));
    Flush(std::move(one));
    mu_.Lock();
    flush_in_flight_ = false;
    mu_.Unlock();
    // The dispatcher blocks on flush_in_flight_; wake it for requests that
    // arrived while we were scoring, or for a Stop() that fired meanwhile.
    work_ready_.NotifyOne();
    return future;
  }

  pending_pairs_ += req.pois.size();
  queue_.push_back(std::move(req));
  mu_.Unlock();
  work_ready_.NotifyOne();
  return future;
}

uint64_t ScoreBatcher::num_batches() const {
  MutexLock lock(mu_);
  return batches_;
}

void ScoreBatcher::DispatchLoop() {
  mu_.Lock();
  for (;;) {
    while (!((!queue_.empty() || stopping_) && !flush_in_flight_)) {
      work_ready_.Wait(mu_);
    }
    if (queue_.empty() && stopping_) {
      mu_.Unlock();
      return;
    }

    // Below the minimum batch, wait for co-batchable traffic until either
    // the pair budget fills or the oldest request's deadline expires
    // (Stop() flushes immediately). At the default min_batch_pairs of 1
    // this never waits: the queue already holds everything that arrived
    // while the previous flush was scoring.
    const auto deadline = queue_.front().enqueued_at + config_.max_wait;
    while (!stopping_ && pending_pairs_ < config_.min_batch_pairs &&
           pending_pairs_ < config_.max_batch_pairs &&
           std::chrono::steady_clock::now() < deadline) {
      work_ready_.WaitUntil(mu_, deadline);
    }

    std::vector<Request> batch = TakeBatchLocked();
    ++batches_;
    flush_in_flight_ = true;

    mu_.Unlock();
    Flush(std::move(batch));
    mu_.Lock();
    flush_in_flight_ = false;
  }
}

std::vector<ScoreBatcher::Request> ScoreBatcher::TakeBatchLocked() {
  std::vector<Request> batch;
  size_t taken_pairs = 0;
  while (!queue_.empty()) {
    const size_t next = queue_.front().pois.size();
    if (!batch.empty() && taken_pairs + next > config_.max_batch_pairs) {
      break;
    }
    taken_pairs += next;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    pending_pairs_ -= next;
  }
  return batch;
}

void ScoreBatcher::Flush(std::vector<Request> batch) {
  if (stats_ != nullptr) {
    stats_->batches.fetch_add(1, std::memory_order_relaxed);
    stats_->batched_requests.fetch_add(batch.size(),
                                       std::memory_order_relaxed);
  }
  // Group consecutive requests by model snapshot: one ScorePairs call per
  // snapshot present in the batch (normally exactly one; briefly two around
  // a hot reload).
  size_t start = 0;
  while (start < batch.size()) {
    size_t end = start + 1;
    while (end < batch.size() && batch[end].model == batch[start].model) {
      ++end;
    }
    std::vector<UserId>& users = flush_users_;
    std::vector<PoiId>& pois = flush_pois_;
    users.clear();
    pois.clear();
    for (size_t i = start; i < end; ++i) {
      users.insert(users.end(), batch[i].pois.size(), batch[i].user);
      pois.insert(pois.end(), batch[i].pois.begin(), batch[i].pois.end());
    }
    if (stats_ != nullptr) {
      stats_->scored_pairs.fetch_add(pois.size(), std::memory_order_relaxed);
    }
    const std::vector<double> scores = batch[start].model->ScorePairs(
        {users.data(), users.size()}, {pois.data(), pois.size()});
    size_t offset = 0;
    for (size_t i = start; i < end; ++i) {
      const size_t n = batch[i].pois.size();
      batch[i].promise.set_value(std::vector<double>(
          scores.begin() + static_cast<long>(offset),
          scores.begin() + static_cast<long>(offset + n)));
      offset += n;
    }
    start = end;
  }
}

}  // namespace sttr::serve
