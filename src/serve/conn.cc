#include "serve/conn.h"

#include <cctype>

namespace sttr::serve {

namespace {

inline bool IsWs(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && IsWs(s[b])) ++b;
  while (e > b && IsWs(s[e - 1])) --e;
  return s.substr(b, e - b);
}

/// Case-insensitive equality against an already-lowercase literal —
/// matching the blocking server's `ToLower(Trim(line)) == "connection:
/// close"` without materializing the lowered string.
bool EqualsLower(std::string_view s, std::string_view lower) {
  if (s.size() != lower.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (static_cast<char>(
            std::tolower(static_cast<unsigned char>(s[i]))) != lower[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

ParseStatus ParseRequest(std::string_view buffer, size_t max_request_bytes,
                         ParsedRequest* out) {
  const size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    // Same bound as the blocking implementation: the size check applies
    // while the terminator is still missing, so a complete head that
    // arrived oversized in one read is still parsed.
    return buffer.size() > max_request_bytes ? ParseStatus::kTooLarge
                                             : ParseStatus::kNeedMore;
  }
  const std::string_view head = buffer.substr(0, header_end);

  // Request line: exactly three whitespace-separated tokens, the third an
  // HTTP/1.x version. (A trailing '\r' before the first '\n' is whitespace
  // and drops out of the tokenization, as it did with SplitWhitespace.)
  size_t line_end = head.find('\n');
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  std::string_view tokens[3];
  size_t num_tokens = 0;
  size_t i = 0;
  while (i < request_line.size()) {
    while (i < request_line.size() && IsWs(request_line[i])) ++i;
    if (i >= request_line.size()) break;
    const size_t start = i;
    while (i < request_line.size() && !IsWs(request_line[i])) ++i;
    if (num_tokens == 3) return ParseStatus::kMalformed;  // 4+ tokens
    tokens[num_tokens++] = request_line.substr(start, i - start);
  }
  if (num_tokens != 3 || tokens[2].substr(0, 7) != "HTTP/1.") {
    return ParseStatus::kMalformed;
  }

  out->method = tokens[0];
  out->target = tokens[1];
  out->keep_alive = true;
  out->consumed = header_end + 4;

  // Header lines: only "Connection: close" (case-insensitive, whitespace
  // trimmed, byte-for-byte otherwise) flips keep-alive — the exact
  // comparison the blocking server made.
  while (line_end != std::string_view::npos) {
    const size_t line_start = line_end + 1;
    line_end = head.find('\n', line_start);
    const std::string_view line =
        TrimView(line_end == std::string_view::npos
                     ? head.substr(line_start)
                     : head.substr(line_start, line_end - line_start));
    if (EqualsLower(line, "connection: close")) out->keep_alive = false;
  }

  const size_t qmark = out->target.find('?');
  out->path = out->target.substr(0, qmark);
  out->query = qmark == std::string_view::npos
                   ? std::string_view{}
                   : out->target.substr(qmark + 1);
  return ParseStatus::kComplete;
}

std::string_view HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

void SerializeResponseInto(Conn* conn, bool keep_alive_header) {
  ArenaBuf& out = conn->out;
  out.Append("HTTP/1.1 ");
  out.AppendInt(conn->http_status);
  out.Append(' ');
  out.Append(HttpStatusText(conn->http_status));
  out.Append("\r\nContent-Type: application/json\r\nContent-Length: ");
  out.AppendUint(conn->body.size());
  out.Append("\r\nConnection: ");
  out.Append(keep_alive_header ? std::string_view("keep-alive")
                               : std::string_view("close"));
  out.Append("\r\n\r\n");
  out.Append(conn->body.view());
}

std::string SerializeResponse(int code, std::string_view body,
                              bool keep_alive) {
  std::string out;
  out += "HTTP/1.1 ";
  out += std::to_string(code);
  out += ' ';
  out += HttpStatusText(code);
  out += "\r\nContent-Type: application/json\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out.append(body);
  return out;
}

}  // namespace sttr::serve
