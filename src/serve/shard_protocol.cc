#include "serve/shard_protocol.h"

#include <cstring>

namespace sttr::serve {

namespace {

template <typename T>
void AppendRaw(const T& value, std::string* out) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T LoadRaw(const char* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

// Decodes the common `magic | payload_len` prefix. Returns kComplete when
// `buffer` holds the full payload (payload start/length in *payload_*).
FrameParse ParseHeader(std::string_view buffer, uint32_t want_magic,
                       size_t* payload_len) {
  if (buffer.size() < kFrameHeaderBytes) return FrameParse::kNeedMore;
  if (LoadRaw<uint32_t>(buffer.data()) != want_magic) return FrameParse::kBad;
  const size_t len = LoadRaw<uint32_t>(buffer.data() + 4);
  if (len > kMaxFramePayloadBytes) return FrameParse::kBad;
  if (buffer.size() < kFrameHeaderBytes + len) return FrameParse::kNeedMore;
  *payload_len = len;
  return FrameParse::kComplete;
}

}  // namespace

void AppendGatherRequest(const GatherRequest& req, std::string* out) {
  const uint32_t count = static_cast<uint32_t>(req.ids.size());
  const uint32_t payload_len = 8 + 1 + 3 + 4 + 4 + count * 8;
  AppendRaw(kGatherRequestMagic, out);
  AppendRaw(payload_len, out);
  AppendRaw(req.request_id, out);
  out->push_back(static_cast<char>(req.table));
  out->append(3, '\0');
  AppendRaw(req.deadline_ms, out);
  AppendRaw(count, out);
  out->append(reinterpret_cast<const char*>(req.ids.data()), count * 8);
}

void AppendGatherResponse(uint64_t request_id, GatherStatus status,
                          uint32_t dim, std::span<const float> rows,
                          std::string* out) {
  const uint32_t count = dim == 0 ? 0 : static_cast<uint32_t>(rows.size() / dim);
  const uint32_t payload_len =
      8 + 1 + 3 + 4 + 4 + static_cast<uint32_t>(rows.size() * sizeof(float));
  AppendRaw(kGatherResponseMagic, out);
  AppendRaw(payload_len, out);
  AppendRaw(request_id, out);
  out->push_back(static_cast<char>(status));
  out->append(3, '\0');
  AppendRaw(dim, out);
  AppendRaw(count, out);
  out->append(reinterpret_cast<const char*>(rows.data()),
              rows.size() * sizeof(float));
}

FrameParse ParseGatherRequest(std::string_view buffer, GatherRequest* out,
                              size_t* consumed) {
  size_t payload_len = 0;
  const FrameParse header = ParseHeader(buffer, kGatherRequestMagic, &payload_len);
  if (header != FrameParse::kComplete) return header;
  if (payload_len < 20) return FrameParse::kBad;
  const char* p = buffer.data() + kFrameHeaderBytes;
  out->request_id = LoadRaw<uint64_t>(p);
  const uint8_t table = static_cast<uint8_t>(p[8]);
  if (table > static_cast<uint8_t>(EmbeddingTable::kPoi)) return FrameParse::kBad;
  out->table = static_cast<EmbeddingTable>(table);
  out->deadline_ms = LoadRaw<uint32_t>(p + 12);
  const uint32_t count = LoadRaw<uint32_t>(p + 16);
  if (count > kMaxGatherIds) return FrameParse::kBad;
  if (payload_len != 20 + static_cast<size_t>(count) * 8) return FrameParse::kBad;
  out->ids.resize(count);
  std::memcpy(out->ids.data(), p + 20, static_cast<size_t>(count) * 8);
  *consumed = kFrameHeaderBytes + payload_len;
  return FrameParse::kComplete;
}

FrameParse ParseGatherResponse(std::string_view buffer, GatherResponse* out,
                               size_t* consumed) {
  size_t payload_len = 0;
  const FrameParse header =
      ParseHeader(buffer, kGatherResponseMagic, &payload_len);
  if (header != FrameParse::kComplete) return header;
  if (payload_len < 20) return FrameParse::kBad;
  const char* p = buffer.data() + kFrameHeaderBytes;
  out->request_id = LoadRaw<uint64_t>(p);
  const uint8_t status = static_cast<uint8_t>(p[8]);
  if (status > static_cast<uint8_t>(GatherStatus::kShuttingDown)) {
    return FrameParse::kBad;
  }
  out->status = static_cast<GatherStatus>(status);
  out->dim = LoadRaw<uint32_t>(p + 12);
  out->count = LoadRaw<uint32_t>(p + 16);
  const size_t floats = static_cast<size_t>(out->dim) * out->count;
  if (out->count > kMaxGatherIds) return FrameParse::kBad;
  if (payload_len != 20 + floats * sizeof(float)) return FrameParse::kBad;
  out->rows.resize(floats);
  std::memcpy(out->rows.data(), p + 20, floats * sizeof(float));
  *consumed = kFrameHeaderBytes + payload_len;
  return FrameParse::kComplete;
}

}  // namespace sttr::serve
