#include "serve/model_bundle.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "core/checkpoint.h"
#include "core/delta.h"
#include "serve/result_cache.h"
#include "util/logging.h"

namespace sttr::serve {

namespace {

/// A serving snapshot never trains, so its model must not write checkpoints
/// of its own; everything else has to match the training config for the
/// fingerprint check to pass.
StTransRecConfig ServingConfig(StTransRecConfig cfg, Env* env) {
  cfg.checkpoint_dir.clear();
  cfg.env = env;
  cfg.verbose = false;
  return cfg;
}

/// Epoch encoded in a checkpoint path's file name ("dir/ckpt-000042.sttr").
StatusOr<size_t> EpochOfPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return ParseCheckpointEpoch(slash == std::string::npos
                                  ? path
                                  : path.substr(slash + 1));
}

}  // namespace

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
  }
  return "unknown";
}

void InvalidateForDelta(const Dataset& dataset, const DeltaCheckpoint& delta,
                        ResultCache& cache) {
  if (!delta.dense_params.empty()) {
    // A dense-layer refresh changes every score; row-level targeting is
    // unsound here, so fall back to the wholesale flush.
    cache.InvalidateAll();
    return;
  }
  // User rows kill that user's entries in every city; POI rows kill every
  // user's entries in the POI's city (any cached ranking there may contain
  // it). Word rows need nothing: cached /recommend scores never read the
  // word table — it feeds training and the uncached cold-start path only.
  std::vector<CityId> cities;
  cities.reserve(delta.poi.rows.size());
  for (int64_t row : delta.poi.rows) {
    if (row >= 0 && row < static_cast<int64_t>(dataset.num_pois())) {
      cities.push_back(dataset.poi(static_cast<PoiId>(row)).city);
    }
  }
  std::sort(cities.begin(), cities.end());
  cities.erase(std::unique(cities.begin(), cities.end()), cities.end());
  cache.InvalidateRows(delta.user.rows, cities);
}

ModelBundle::ModelBundle(const Dataset& dataset, const CrossCitySplit& split,
                         ModelBundleConfig config)
    : dataset_(dataset), split_(split), config_(std::move(config)) {}

ModelBundle::~ModelBundle() { StopWatcher(); }

Env& ModelBundle::env() const {
  return config_.env != nullptr ? *config_.env : *Env::Default();
}

std::string ModelBundle::QuantDir() const {
  return config_.quant_checkpoint_dir.empty()
             ? config_.checkpoint_dir + "/quant"
             : config_.quant_checkpoint_dir;
}

StatusOr<std::string> ModelBundle::SelectCheckpoint() const {
  switch (config_.precision) {
    case PrecisionMode::kFp32:
      return FindLatestValidCheckpoint(env(), config_.checkpoint_dir);
    case PrecisionMode::kInt8:
      return FindLatestValidCheckpoint(env(), QuantDir());
    case PrecisionMode::kAuto:
      break;
  }
  StatusOr<std::string> fp32 =
      FindLatestValidCheckpoint(env(), config_.checkpoint_dir);
  StatusOr<std::string> quant = FindLatestValidCheckpoint(env(), QuantDir());
  if (!quant.ok()) return fp32;
  if (!fp32.ok()) return quant;
  StatusOr<size_t> fp32_epoch = EpochOfPath(*fp32);
  StatusOr<size_t> quant_epoch = EpochOfPath(*quant);
  if (!fp32_epoch.ok()) return quant;
  if (!quant_epoch.ok()) return fp32;
  // Newer epoch wins; ties go to the quantized artifact (it was distilled
  // from that very fp32 checkpoint, and picking it is the whole point of
  // landing one).
  return *quant_epoch >= *fp32_epoch ? quant : fp32;
}

StatusOr<std::shared_ptr<ModelSnapshot>> ModelBundle::LoadSnapshot(
    const std::string& path) const {
  // Prepare() against the serving dataset even for quantized artifacts: the
  // prepared model carries the config fingerprint every flavor is verified
  // against.
  auto model = std::make_shared<StTransRec>(
      ServingConfig(config_.model, config_.env));
  STTR_RETURN_IF_ERROR(model->Prepare(dataset_, split_));

  StatusOr<CheckpointReader> reader = CheckpointReader::Open(env(), path);
  if (!reader.ok()) return reader.status();

  StatusOr<std::string> fingerprint = reader->Section("config");
  if (!fingerprint.ok()) return fingerprint.status();
  if (*fingerprint != model->ConfigFingerprint()) {
    return Status::FailedPrecondition(
        "checkpoint " + path + " was written under a different config or "
        "dataset than this bundle serves\n  checkpoint: " + *fingerprint +
        "\n  serving:    " + model->ConfigFingerprint());
  }

  const bool quantized = reader->version() == kQuantCheckpointFormatVersion;
  if (quantized && config_.precision == PrecisionMode::kFp32) {
    return Status::FailedPrecondition(
        "checkpoint " + path + " is a quantized artifact but this bundle "
        "serves fp32 only");
  }
  if (!quantized && config_.precision == PrecisionMode::kInt8) {
    return Status::FailedPrecondition(
        "checkpoint " + path + " is an fp32 training checkpoint but this "
        "bundle serves int8 only");
  }

  auto snapshot = std::make_shared<ModelSnapshot>();
  if (quantized) {
    StatusOr<QuantizedModel> quant = QuantizedModel::FromReader(*reader);
    if (!quant.ok()) return quant.status();
    auto scorer = std::make_shared<QuantizedModel>(*std::move(quant));
    snapshot->resident_bytes = scorer->ApproxBytes();
    snapshot->scorer = std::move(scorer);
    snapshot->precision = Precision::kInt8;
  } else {
    StatusOr<std::string> params = reader->Section("model");
    if (!params.ok()) return params.status();
    {
      std::istringstream in(*params, std::ios::binary);
      STTR_RETURN_IF_ERROR(model->Load(in));
    }
    size_t bytes = 0;
    for (const auto& p : model->Parameters()) {
      bytes += p.value().size() * sizeof(float);
    }
    snapshot->resident_bytes = bytes;
    snapshot->model = model;
    snapshot->scorer = std::move(model);
    snapshot->precision = Precision::kFp32;
    // The delta path refuses to patch any base whose model bytes don't
    // carry this exact checksum.
    for (const CheckpointSection& s : reader->sections()) {
      if (s.name == "model") snapshot->model_crc = s.crc;
    }
  }
  snapshot->checkpoint_path = path;
  StatusOr<std::string> meta = reader->Section("meta");
  if (meta.ok()) {
    std::string_view in(*meta);
    uint64_t epoch = 0;
    if (ReadU64(in, &epoch)) snapshot->epoch = static_cast<size_t>(epoch);
  }
  return snapshot;
}

Status ModelBundle::LoadInitial() {
  StatusOr<std::string> path = SelectCheckpoint();
  if (!path.ok()) return path.status();
  StatusOr<std::shared_ptr<ModelSnapshot>> snapshot = LoadSnapshot(*path);
  if (!snapshot.ok()) return snapshot.status();
  Swap(std::move(*snapshot));
  return Status::OK();
}

std::shared_ptr<const ModelSnapshot> ModelBundle::snapshot() const {
  MutexLock lock(mu_);
  return snapshot_;
}

StatusOr<bool> ModelBundle::ReloadIfNewer() {
  StatusOr<std::string> path = SelectCheckpoint();
  if (!path.ok()) {
    // NotFound is the steady state before the trainer lands anything;
    // everything else (ListDir IO error) is a real failure worth counting.
    if (path.status().code() != StatusCode::kNotFound) {
      RecordReloadFailure(path.status());
    }
    return path.status();
  }
  {
    MutexLock lock(mu_);
    if (snapshot_ != nullptr && snapshot_->checkpoint_path == *path) {
      return false;
    }
  }
  // Load outside the lock: Prepare() + parameter IO takes long enough that
  // requests must keep reading the current snapshot meanwhile.
  StatusOr<std::shared_ptr<ModelSnapshot>> snapshot = LoadSnapshot(*path);
  if (!snapshot.ok()) {
    // A newer checkpoint exists but cannot be loaded (vanished mid-load,
    // disk error): the old snapshot keeps serving, and the failure must be
    // visible — a silent one looks exactly like "no new checkpoint yet".
    RecordReloadFailure(snapshot.status());
    return snapshot.status();
  }
  Swap(std::move(*snapshot));
  return true;
}

StatusOr<std::shared_ptr<StTransRec>> ModelBundle::LoadFp32Base(
    const std::string& path, uint32_t* model_crc) const {
  auto model = std::make_shared<StTransRec>(
      ServingConfig(config_.model, config_.env));
  STTR_RETURN_IF_ERROR(model->Prepare(dataset_, split_));

  StatusOr<CheckpointReader> reader = CheckpointReader::Open(env(), path);
  if (!reader.ok()) return reader.status();
  if (reader->version() != kCheckpointFormatVersion) {
    return Status::FailedPrecondition(
        "checkpoint " + path + " is not an fp32 training checkpoint; only "
        "those can host streaming deltas");
  }
  StatusOr<std::string> fingerprint = reader->Section("config");
  if (!fingerprint.ok()) return fingerprint.status();
  if (*fingerprint != model->ConfigFingerprint()) {
    return Status::FailedPrecondition(
        "checkpoint " + path + " was written under a different config or "
        "dataset than this bundle serves");
  }
  StatusOr<std::string> params = reader->Section("model");
  if (!params.ok()) return params.status();
  {
    std::istringstream in(*params, std::ios::binary);
    STTR_RETURN_IF_ERROR(model->Load(in));
  }
  if (model_crc != nullptr) {
    for (const CheckpointSection& s : reader->sections()) {
      if (s.name == "model") *model_crc = s.crc;
    }
  }
  return model;
}

StatusOr<bool> ModelBundle::ApplyDeltaIfNewer() {
  if (config_.delta_dir.empty()) return false;
  std::shared_ptr<const ModelSnapshot> cur = snapshot();
  if (cur == nullptr) {
    return Status::FailedPrecondition("ApplyDeltaIfNewer() before LoadInitial()");
  }
  // Deltas patch fp32 parameters in place; a quantized snapshot waits for
  // the offline pipeline to republish a full artifact instead.
  if (cur->precision != Precision::kFp32) return false;

  StatusOr<std::string> path = FindLatestValidDelta(env(), config_.delta_dir);
  if (!path.ok()) return path.status();  // NotFound = trainer idle so far

  // delta_mu_ serializes appliers and guards the double-buffer bookkeeping,
  // but never covers IO, sleeps, or listener callbacks: everything slow
  // happens between short lock scopes, each of which re-validates that no
  // concurrent applier moved the state while the lock was dropped (in which
  // case this attempt just defers to the next poll).
  bool need_fresh_base;
  {
    MutexLock lock(delta_mu_);
    if (*path == applied_delta_path_ &&
        delta_base_path_ == cur->checkpoint_path) {
      return false;  // fast path: nothing new since the last poll
    }
    need_fresh_base = delta_base_path_ != cur->checkpoint_path;
  }

  StatusOr<DeltaCheckpoint> delta = ReadDeltaCheckpoint(env(), *path);
  if (!delta.ok()) return delta.status();
  if (delta->base_epoch != cur->epoch || delta->base_model_crc != cur->model_crc) {
    // The trainer is publishing against a different base than the one being
    // served — typical right after a full reload, before the trainer
    // re-anchors. Not an error; ignored until provenance lines up.
    STTR_LOG(Debug) << "model bundle: delta " << *path << " targets base epoch "
                    << delta->base_epoch << " crc " << delta->base_model_crc
                    << ", serving epoch " << cur->epoch << " crc "
                    << cur->model_crc << "; skipping";
    return false;
  }

  // New base since the buffers were last stocked (or first delta ever):
  // load two fresh fp32 instances from it. The active one is published
  // below; its twin becomes the standby the next delta patches. Loading is
  // a pure function of the (immutable) checkpoint path, so it needs no
  // lock; if a racing applier stocks the buffers first, these are dropped.
  std::shared_ptr<StTransRec> fresh[2];
  if (need_fresh_base) {
    for (size_t i = 0; i < 2; ++i) {
      StatusOr<std::shared_ptr<StTransRec>> inst =
          LoadFp32Base(cur->checkpoint_path, nullptr);
      if (!inst.ok()) return inst.status();
      fresh[i] = *std::move(inst);
    }
  }

  std::shared_ptr<StTransRec> standby;
  {
    MutexLock lock(delta_mu_);
    if (delta_base_path_ != cur->checkpoint_path) {
      if (!need_fresh_base) return false;  // base moved under us; next poll
      delta_instances_[0] = std::move(fresh[0]);
      delta_instances_[1] = std::move(fresh[1]);
      delta_standby_ = 0;
      delta_base_path_ = cur->checkpoint_path;
      applied_delta_seq_ = 0;
      applied_delta_path_.clear();
    } else if (delta->seq <= applied_delta_seq_) {
      return false;  // rotation republished an already-applied sequence
    }
    standby = delta_instances_[delta_standby_];
  }

  // The standby is safe to mutate only once no in-flight request still
  // scores against it: its array slot plus the copy above must be the only
  // references. Bounded wait with no lock held (other pollers and the full
  // reloader stay free to run); on timeout the patch is retried next poll.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (standby.use_count() > 2) {
    if (std::chrono::steady_clock::now() >= deadline) {
      STTR_LOG(Debug) << "model bundle: standby model still referenced; "
                         "deferring delta " << *path;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto next = std::make_shared<ModelSnapshot>();
  std::vector<std::function<void(const ModelSnapshot&, const DeltaCheckpoint&)>>
      listeners;
  const auto t0 = std::chrono::steady_clock::now();
  {
    MutexLock lock(delta_mu_);
    if (delta_base_path_ != cur->checkpoint_path ||
        delta->seq <= applied_delta_seq_ ||
        delta_instances_[delta_standby_] != standby ||
        standby.use_count() > 2) {
      // A racing applier advanced the state (or a request grabbed the
      // standby) while the wait above ran unlocked; retried next poll.
      return false;
    }

    Status applied = standby->ApplyDelta(*delta);
    if (!applied.ok()) {
      if (config_.stats != nullptr) {
        config_.stats->delta_apply_failures.fetch_add(
            1, std::memory_order_relaxed);
      }
      STTR_LOG(Warning) << "model bundle: delta " << *path
                        << " failed to apply: " << applied.ToString();
      return applied;
    }

    next->scorer = standby;
    next->model = standby;
    next->precision = Precision::kFp32;
    next->resident_bytes = cur->resident_bytes;
    // Base provenance is inherited unchanged: the snapshot still serves the
    // same checkpoint (so the full-reload watcher stays quiet), merely
    // patched up to delta_seq.
    next->checkpoint_path = cur->checkpoint_path;
    next->epoch = cur->epoch;
    next->model_crc = cur->model_crc;
    next->delta_seq = delta->seq;
    next->delta_path = *path;
    listeners = SwapDelta(next);

    // The previously active instance becomes the standby; because deltas
    // are cumulative against the base, the next one overwrites every row
    // this one (and all before it) touched.
    delta_standby_ = 1 - delta_standby_;
    applied_delta_seq_ = delta->seq;
    applied_delta_path_ = *path;
  }

  // Same ordering contract as Swap(): listeners (row-level cache
  // invalidation) run after the new snapshot is visible, so a refill can
  // only come from patched parameters — and with delta_mu_ and mu_ both
  // dropped, so a listener may take any lock of its own (the ResultCache
  // invalidation path takes floor_mu_) without creating a cross-subsystem
  // lock order.
  for (const auto& listener : listeners) listener(*next, *delta);

  if (config_.stats != nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    config_.stats->deltas_applied.fetch_add(1, std::memory_order_relaxed);
    config_.stats->rows_patched.fetch_add(delta->total_rows(),
                                          std::memory_order_relaxed);
    config_.stats->delta_apply_latency.Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }
  STTR_LOG(Info) << "model bundle: applied delta seq " << delta->seq << " ("
                 << delta->total_rows() << " rows, "
                 << delta->events_applied << " events) onto "
                 << next->checkpoint_path << " (version " << next->version
                 << ")";
  return true;
}

std::vector<std::function<void(const ModelSnapshot&, const DeltaCheckpoint&)>>
ModelBundle::SwapDelta(std::shared_ptr<ModelSnapshot> next) {
  MutexLock lock(mu_);
  next->version = reloads_.fetch_add(1, std::memory_order_acq_rel) + 1;
  snapshot_ = std::move(next);
  return delta_listeners_;
}

void ModelBundle::AddDeltaListener(
    std::function<void(const ModelSnapshot&, const DeltaCheckpoint&)>
        listener) {
  MutexLock lock(mu_);
  delta_listeners_.push_back(std::move(listener));
}

void ModelBundle::RecordReloadFailure(const Status& error) const {
  if (config_.stats == nullptr) return;
  config_.stats->model_reload_failures.fetch_add(1,
                                                 std::memory_order_relaxed);
  config_.stats->RecordReloadError(error.ToString());
}

void ModelBundle::Swap(std::shared_ptr<ModelSnapshot> next) {
  std::vector<std::function<void(const ModelSnapshot&)>> listeners;
  {
    MutexLock lock(mu_);
    next->version = reloads_.fetch_add(1, std::memory_order_acq_rel) + 1;
    snapshot_ = next;
    listeners = listeners_;
  }
  if (config_.stats != nullptr) {
    config_.stats->RecordReloadError("");  // healthy again
  }
  // Listeners run on a copy with mu_ dropped, after the swap is visible: a
  // cache invalidated here can only be refilled from the new snapshot, and
  // a listener calling back into snapshot() cannot self-deadlock.
  for (const auto& listener : listeners) listener(*next);
  STTR_LOG(Info) << "model bundle: serving " << next->checkpoint_path
                 << " (epoch " << next->epoch << ", version "
                 << next->version << ", "
                 << PrecisionName(next->precision) << ", "
                 << next->resident_bytes << " bytes)";
}

void ModelBundle::AddReloadListener(
    std::function<void(const ModelSnapshot&)> listener) {
  MutexLock lock(mu_);
  listeners_.push_back(std::move(listener));
}

uint64_t ModelBundle::reload_count() const {
  return reloads_.load(std::memory_order_acquire);
}

void ModelBundle::StartWatcher() {
  MutexLock lock(watcher_mu_);
  // Lifecycle is tracked by watcher_running_, not the handle's joinable():
  // a stopper moves the handle out before joining, and keying Start off
  // joinable() in that window would reset watcher_stop_ and spawn a second
  // watcher while the old loop — which would then re-read
  // watcher_stop_ == false and never exit — is still running.
  // watcher_running_ stays true until the joining stopper clears it, so a
  // Start racing a Stop is a no-op, as it was before the handle moved.
  if (watcher_running_) return;
  watcher_running_ = true;
  watcher_stop_ = false;
  watcher_ = std::thread([this] { WatcherLoop(); });
}

void ModelBundle::StopWatcher() {
  // Exactly one caller — the one that flips watcher_stopping_ — moves the
  // handle out and joins it; the old shape (joinable() check under the
  // lock, join() on the member after dropping it) let two concurrent
  // StopWatcher calls both reach watcher_.join(), which is undefined
  // behaviour on the second join. Latecomers block until the winner has
  // fully finished: if they returned early, a latecoming destructor could
  // tear down watcher_mu_/the condvars while the winner still uses them.
  std::thread to_join;
  {
    MutexLock lock(watcher_mu_);
    while (watcher_stopping_) watcher_stopped_.Wait(watcher_mu_);
    if (!watcher_running_) return;
    watcher_stopping_ = true;
    watcher_stop_ = true;
    to_join = std::move(watcher_);
    watcher_cv_.NotifyAll();
  }
  to_join.join();
  // Notify under the lock: a latecomer woken here still has to reacquire
  // watcher_mu_, so it cannot observe the stop as complete (and let the
  // destructor run) until our MutexLock has released the mutex — the last
  // time this call touches the object.
  MutexLock lock(watcher_mu_);
  watcher_running_ = false;
  watcher_stopping_ = false;
  watcher_stopped_.NotifyAll();
}

void ModelBundle::WatcherLoop() {
  watcher_mu_.Lock();
  while (!watcher_stop_) {
    const auto deadline =
        std::chrono::steady_clock::now() + config_.poll_interval;
    // Sleep one poll period, leaving early only when StopWatcher fires
    // (WaitUntil returning false means the deadline passed).
    while (!watcher_stop_ && watcher_cv_.WaitUntil(watcher_mu_, deadline)) {
    }
    if (watcher_stop_) break;
    watcher_mu_.Unlock();
    StatusOr<bool> swapped = ReloadIfNewer();
    if (!swapped.ok()) {
      // NotFound just means the trainer hasn't written anything new; a
      // checkpoint deleted by rotation mid-load lands here too and is
      // retried next poll.
      STTR_LOG(Debug) << "model bundle: reload attempt: "
                      << swapped.status().ToString();
    }
    if (!config_.delta_dir.empty()) {
      StatusOr<bool> patched = ApplyDeltaIfNewer();
      if (!patched.ok()) {
        // Same steady-state tolerance as full reloads: NotFound before the
        // first publish, torn files mid-write — all retried next poll.
        STTR_LOG(Debug) << "model bundle: delta apply attempt: "
                        << patched.status().ToString();
      }
    }
    watcher_mu_.Lock();
  }
  watcher_mu_.Unlock();
}

}  // namespace sttr::serve
