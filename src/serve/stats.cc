#include "serve/stats.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/string_util.h"

namespace sttr::serve {

LatencyHistogram::LatencyHistogram() : count_(0), sum_nanos_(0), max_nanos_(0) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketOf(uint64_t nanos) {
  if (nanos < (1u << kSubBits)) return static_cast<size_t>(nanos);
  const int msb = 63 - std::countl_zero(nanos);
  const size_t octave = static_cast<size_t>(msb);
  const size_t sub =
      static_cast<size_t>((nanos >> (octave - kSubBits)) & ((1u << kSubBits) - 1));
  return std::min((octave << kSubBits) + sub, kNumBuckets - 1);
}

double LatencyHistogram::BucketValue(size_t bucket) {
  const size_t octave = bucket >> kSubBits;
  const size_t sub = bucket & ((1u << kSubBits) - 1);
  if (octave == 0) return static_cast<double>(sub);
  const double base = static_cast<double>(uint64_t{1} << octave);
  // Upper edge of the linear sub-bucket within [2^octave, 2^(octave+1)).
  return base + base * static_cast<double>(sub + 1) /
                    static_cast<double>(1u << kSubBits);
}

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t prev = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > prev &&
         !max_nanos_.compare_exchange_weak(prev, nanos,
                                           std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Summary LatencyHistogram::Summarize() const {
  Summary s;
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  s.count = total;
  if (total == 0) return s;
  s.mean_ms = static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) /
              static_cast<double>(total) / 1e6;
  s.max_ms =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) / 1e6;
  const auto percentile = [&](double p) {
    const uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) return BucketValue(i) / 1e6;
    }
    return BucketValue(kNumBuckets - 1) / 1e6;
  };
  s.p50_ms = percentile(0.50);
  s.p95_ms = percentile(0.95);
  s.p99_ms = percentile(0.99);
  return s;
}

double LatencyHistogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen > rank) return BucketValue(i) / 1e6;
  }
  return BucketValue(kNumBuckets - 1) / 1e6;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

std::string ServeStats::ToJson(double uptime_seconds) const {
  const LatencyHistogram::Summary lat = request_latency.Summarize();
  const uint64_t reqs = requests.load(std::memory_order_relaxed);
  const uint64_t n_batches = batches.load(std::memory_order_relaxed);
  const uint64_t n_batched = batched_requests.load(std::memory_order_relaxed);
  std::ostringstream os;
  os << "{";
  os << "\"requests\": " << reqs;
  os << ", \"bad_requests\": " << bad_requests.load(std::memory_order_relaxed);
  os << ", \"cache_hits\": " << cache_hits.load(std::memory_order_relaxed);
  os << ", \"cache_misses\": "
     << cache_misses.load(std::memory_order_relaxed);
  os << ", \"batches\": " << n_batches;
  os << ", \"batched_requests\": " << n_batched;
  os << ", \"scored_pairs\": "
     << scored_pairs.load(std::memory_order_relaxed);
  os << ", \"mean_batch_occupancy\": "
     << StrFormat("%.3f", n_batches == 0
                              ? 0.0
                              : static_cast<double>(n_batched) /
                                    static_cast<double>(n_batches));
  os << ", \"model_reloads\": "
     << model_reloads.load(std::memory_order_relaxed);
  os << ", \"model_reload_failures\": "
     << model_reload_failures.load(std::memory_order_relaxed);
  os << ", \"last_reload_error\": \"" << JsonEscaped(LastReloadError())
     << "\"";
  {
    const uint64_t precision =
        snapshot_precision.load(std::memory_order_relaxed);
    const char* name = precision == 1   ? "fp32"
                       : precision == 2 ? "int8"
                                        : "none";
    os << ", \"model\": {\"resident_bytes\": "
       << snapshot_bytes.load(std::memory_order_relaxed)
       << ", \"precision\": \"" << name << "\"}";
  }
  os << ", \"store\": {\"gathers\": "
     << shard_gathers.load(std::memory_order_relaxed)
     << ", \"shard_errors\": " << shard_errors.load(std::memory_order_relaxed)
     << ", \"shard_retries\": "
     << shard_retries.load(std::memory_order_relaxed)
     << ", \"degraded_requests\": "
     << degraded_requests.load(std::memory_order_relaxed)
     << ", \"shards_down\": " << shards_down.load(std::memory_order_relaxed)
     << "}";
  {
    const LatencyHistogram::Summary apply = delta_apply_latency.Summarize();
    os << ", \"ingest\": {\"checkins_http\": "
       << checkins_http.load(std::memory_order_relaxed)
       << ", \"checkins_accepted\": "
       << ingest.checkins_accepted.load(std::memory_order_relaxed)
       << ", \"checkins_rejected\": "
       << ingest.checkins_rejected.load(std::memory_order_relaxed)
       << ", \"events_trained\": "
       << ingest.events_trained.load(std::memory_order_relaxed)
       << ", \"deltas_published\": "
       << ingest.deltas_published.load(std::memory_order_relaxed)
       << ", \"delta_publish_failures\": "
       << ingest.delta_publish_failures.load(std::memory_order_relaxed)
       << ", \"deltas_applied\": "
       << deltas_applied.load(std::memory_order_relaxed)
       << ", \"delta_apply_failures\": "
       << delta_apply_failures.load(std::memory_order_relaxed)
       << ", \"rows_patched\": " << rows_patched.load(std::memory_order_relaxed)
       << ", \"cold_start_requests\": "
       << cold_start_requests.load(std::memory_order_relaxed)
       << ", \"delta_apply_ms\": {\"count\": " << apply.count
       << ", \"mean\": " << StrFormat("%.4f", apply.mean_ms)
       << ", \"p50\": " << StrFormat("%.4f", apply.p50_ms)
       << ", \"p99\": " << StrFormat("%.4f", apply.p99_ms)
       << ", \"max\": " << StrFormat("%.4f", apply.max_ms) << "}}";
  }
  os << ", \"rejected_connections\": "
     << rejected_connections.load(std::memory_order_relaxed);
  os << ", \"rejected_requests\": "
     << rejected_requests.load(std::memory_order_relaxed);
  os << ", \"allocs\": {\"recommend\": "
     << recommend_allocs.load(std::memory_order_relaxed)
     << ", \"hot_requests\": " << hot_requests.load(std::memory_order_relaxed)
     << ", \"hot\": " << hot_allocs.load(std::memory_order_relaxed)
     << ", \"loop\": " << loop_allocs.load(std::memory_order_relaxed) << "}";
  os << ", \"syscalls\": {\"reads\": "
     << sys_reads.load(std::memory_order_relaxed)
     << ", \"writes\": " << sys_writes.load(std::memory_order_relaxed)
     << ", \"epoll_waits\": "
     << sys_epoll_waits.load(std::memory_order_relaxed)
     << ", \"accepts\": " << sys_accepts.load(std::memory_order_relaxed)
     << "}";
  if (uptime_seconds > 0) {
    os << ", \"uptime_seconds\": " << StrFormat("%.3f", uptime_seconds);
    os << ", \"qps\": "
       << StrFormat("%.1f", static_cast<double>(reqs) / uptime_seconds);
  }
  os << ", \"latency_ms\": {\"count\": " << lat.count
     << ", \"mean\": " << StrFormat("%.4f", lat.mean_ms)
     << ", \"p50\": " << StrFormat("%.4f", lat.p50_ms)
     << ", \"p95\": " << StrFormat("%.4f", lat.p95_ms)
     << ", \"p99\": " << StrFormat("%.4f", lat.p99_ms)
     << ", \"max\": " << StrFormat("%.4f", lat.max_ms) << "}";
  os << "}";
  return os.str();
}

}  // namespace sttr::serve
