#ifndef STTR_SERVE_CONN_H_
#define STTR_SERVE_CONN_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/arena.h"

namespace sttr::serve {

/// One parsed HTTP/1.1 request head. Every view points into the
/// connection's input buffer and is valid only until the buffer is consumed
/// (ConsumeRequest) — i.e. for the lifetime of the request being handled.
struct ParsedRequest {
  std::string_view method;   ///< "GET", "POST", ...
  std::string_view target;   ///< full request target, e.g. "/recommend?u=1"
  std::string_view path;     ///< target up to '?'
  std::string_view query;    ///< after '?', empty when absent
  bool keep_alive = true;    ///< false on "Connection: close"
  size_t consumed = 0;       ///< bytes of the buffer this request spans
};

/// Incremental HTTP/1.1 request-head parser over a connection's buffered
/// bytes. Stateless: call again whenever more bytes arrive; a request is
/// complete once the blank line terminator is buffered. Bodies are not part
/// of this API (requests are GETs), so the head is the whole request —
/// pipelined requests simply queue up behind `consumed`.
///
/// Parsing allocates nothing: the request line is sliced in place and
/// headers are scanned, not stored. Malformed or oversized heads surface as
/// distinct statuses so the server can answer 400/431 and close, exactly
/// like the blocking implementation.
enum class ParseStatus {
  kNeedMore,   ///< no complete head buffered yet
  kComplete,   ///< *out filled, out->consumed bytes ready to consume
  kTooLarge,   ///< head exceeds max_request_bytes (431, close)
  kMalformed,  ///< bad request line (400, close)
};

ParseStatus ParseRequest(std::string_view buffer, size_t max_request_bytes,
                         ParsedRequest* out);

/// Reason phrase for a status code — the blocking server's table.
std::string_view HttpStatusText(int code);

struct Conn;

/// Serializes the response ("HTTP/1.1 <code> <text>\r\nContent-Type: ...\r\n
/// Content-Length: <n>\r\nConnection: <keep-alive|close>\r\n\r\n<body>") from
/// conn->http_status and conn->body into conn->out. Arena-backed: allocates
/// nothing once the connection is warmed. `keep_alive_header` sets only the
/// Connection: header value — whether the socket actually stays open is the
/// event loop's decision, exactly as in the blocking implementation.
void SerializeResponseInto(Conn* conn, bool keep_alive_header);

/// Heap-allocating variant used to pre-serialize the handful of static
/// replies (400/408/431/503) once at startup. Byte-identical to
/// SerializeResponseInto for the same inputs (asserted by tests).
std::string SerializeResponse(int code, std::string_view body,
                              bool keep_alive);

/// Per-connection state owned by one event loop. Input bytes accumulate in
/// `in` (capacity sticky across requests); per-request scratch — the JSON
/// body a worker assembles and the serialized response bytes — lives in the
/// arena, which is Reset at each request's start. A connection object is
/// pooled: Reset()+Open() recycle it for the next accepted socket on the
/// same fd slot without freeing buffers.
///
/// Ownership protocol (enforced by the loop's state machine, synchronized by
/// the loop/worker queue mutexes): in kProcessing the handling worker owns
/// `body`/`http_status` and the arena; in every other state the loop owns
/// all fields. `generation` stamps each accepted socket so a completion
/// posted for a connection that has since been closed and recycled is
/// ignored.
struct Conn {
  enum class State : uint8_t {
    kClosed,      ///< free slot
    kReading,     ///< waiting for (more of) a request head
    kProcessing,  ///< complete request handed to a worker
    kWriting,     ///< response bytes pending in `out`
  };

  Conn() : body(&arena), out(&arena) {}

  void Open(int new_fd, uint64_t gen,
            std::chrono::steady_clock::time_point now) {
    fd = new_fd;
    generation = gen;
    state = State::kReading;
    keep_alive = true;
    close_after_write = false;
    defer_close = false;
    interest = 0;
    http_status = 200;
    in.clear();  // capacity sticky
    out_off = 0;
    last_activity = now;
    req_start = now;
    arena.Reset();
    body.Clear();
    out.Clear();
  }

  /// Begins a request: reclaims the previous request's scratch.
  void StartRequest() {
    arena.Reset();
    body.Clear();
    out.Clear();
    out_off = 0;
    http_status = 200;
  }

  /// Drops the request's consumed bytes; what remains is pipelined input.
  void ConsumeRequest(size_t consumed) { in.erase(0, consumed); }

  int fd = -1;
  uint64_t generation = 0;
  State state = State::kClosed;
  bool keep_alive = true;
  bool close_after_write = false;
  /// Peer hung up (or errored) while a request was in flight: the loop
  /// never recycles a kProcessing connection, it closes it here after the
  /// completion lands instead.
  bool defer_close = false;
  /// epoll interest mask currently registered for this fd (loop
  /// bookkeeping; avoids redundant epoll_ctl calls).
  uint32_t interest = 0;

  std::string in;  ///< unconsumed request bytes read off the socket

  Arena arena;      ///< per-request scratch; Reset by StartRequest()
  ArenaBuf body;    ///< response body (worker-owned during kProcessing)
  int http_status = 200;
  ArenaBuf out;     ///< serialized response; written from out_off
  size_t out_off = 0;

  std::chrono::steady_clock::time_point last_activity;
  /// Set by the request router at parse time; the latency histogram records
  /// req_start -> response-built, matching the blocking path's timing span.
  std::chrono::steady_clock::time_point req_start;
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_CONN_H_
