#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>

#include "core/recommender.h"
#include "serve/alloc_hook.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/socket_io.h"
#include "util/string_util.h"

namespace sttr::serve {

namespace {

/// Minimal query-string decoding: splits "a=1&b=2" into pairs. Values are
/// numeric in this API, so %-unescaping is deliberately not implemented.
std::vector<std::pair<std::string, std::string>> ParseQuery(
    const std::string& query) {
  std::vector<std::pair<std::string, std::string>> params;
  for (const std::string& part : Split(query, '&')) {
    if (part.empty()) continue;
    const size_t eq = part.find('=');
    if (eq == std::string::npos) {
      params.emplace_back(part, "");
    } else {
      params.emplace_back(part.substr(0, eq), part.substr(eq + 1));
    }
  }
  return params;
}

const std::string* FindParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::string& name) {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDoubleParam(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::string ErrorJson(const std::string& message) {
  // Parameter names and static messages only — nothing here needs escaping.
  return std::string("{\"error\": \"") + message + "\"}";
}

/// Writes the full buffer, retrying on short writes/EINTR.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        net::Send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool SendResponse(int fd, int code, const std::string& body,
                  bool keep_alive) {
  std::ostringstream os;
  os << "HTTP/1.1 " << code << " " << HttpStatusText(code) << "\r\n"
     << "Content-Type: application/json\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n"
     << "\r\n"
     << body;
  return WriteAll(fd, os.str());
}

// ---- Event-loop mode helpers ------------------------------------------

// Pre-serialized error bodies: byte-for-byte the ErrorJson() strings of the
// blocking implementation, with zero assembly on the hot path.
constexpr std::string_view kErrUser =
    "{\"error\": \"missing or invalid 'user'\"}";
constexpr std::string_view kErrLatLon =
    "{\"error\": \"missing or invalid 'lat'/'lon'\"}";
constexpr std::string_view kErrCity = "{\"error\": \"invalid 'city'\"}";
constexpr std::string_view kErrK = "{\"error\": \"invalid 'k'\"}";
constexpr std::string_view kErrNoModel = "{\"error\": \"no model loaded\"}";
constexpr std::string_view kErrNoCandidates =
    "{\"error\": \"no candidate POIs in city\"}";
constexpr std::string_view kErrPath = "{\"error\": \"unknown path\"}";
constexpr std::string_view kErrMethod =
    "{\"error\": \"unsupported method\"}";
constexpr std::string_view kErrOverloaded =
    "{\"error\": \"server overloaded\"}";
constexpr std::string_view kErrPoi =
    "{\"error\": \"missing or invalid 'poi'\"}";
constexpr std::string_view kErrT = "{\"error\": \"invalid 't'\"}";
constexpr std::string_view kErrHour = "{\"error\": \"invalid 'hour'\"}";
constexpr std::string_view kErrNoIngest =
    "{\"error\": \"ingest not enabled\"}";

/// First value of `name` in the query string, scanning '&' parts in order —
/// the same first-match-wins rule as ParseQuery + FindParam, without
/// materializing anything.
std::optional<std::string_view> FindQueryParam(std::string_view query,
                                               std::string_view name) {
  size_t pos = 0;
  while (pos <= query.size()) {
    const size_t amp = query.find('&', pos);
    const std::string_view part =
        query.substr(pos, amp == std::string_view::npos ? std::string_view::npos
                                                        : amp - pos);
    if (!part.empty()) {
      const size_t eq = part.find('=');
      const std::string_view key =
          eq == std::string_view::npos ? part : part.substr(0, eq);
      if (key == name) {
        return eq == std::string_view::npos ? std::string_view{}
                                            : part.substr(eq + 1);
      }
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return std::nullopt;
}

/// strtoll/strtod need a NUL terminator, so the view is staged through a
/// stack buffer. Values longer than the buffer are treated as unparsable —
/// far beyond any representable number this API accepts.
constexpr size_t kNumBufSize = 128;

bool ParseInt64View(std::string_view s, int64_t* out) {
  if (s.empty() || s.size() >= kNumBufSize) return false;
  char buf[kNumBufSize];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDoubleView(std::string_view s, double* out) {
  if (s.empty() || s.size() >= kNumBufSize) return false;
  char buf[kNumBufSize];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

RecommendServer::RecommendServer(ServerConfig config, const Dataset& dataset,
                                 ModelBundle* bundle, CandidateIndex* index,
                                 ScoreBatcher* batcher, ResultCache* cache,
                                 ServeStats* stats, EmbeddingStore* store,
                                 stream::IngestService* ingest,
                                 const stream::ColdStartScorer* cold_start)
    : config_(config),
      dataset_(dataset),
      bundle_(bundle),
      index_(index),
      batcher_(batcher),
      cache_(cache),
      stats_(stats),
      store_(store),
      ingest_(ingest),
      cold_start_(cold_start) {
  STTR_CHECK(bundle_ != nullptr);
  STTR_CHECK(index_ != nullptr);
  STTR_CHECK(stats_ != nullptr);
  STTR_CHECK(!config_.enable_cache || cache_ != nullptr)
      << "enable_cache without a ResultCache";
  STTR_CHECK_GT(config_.num_workers, 0u);
  if (store_ != nullptr) {
    // Degraded-mode fallback ranking: global check-in counts per POI.
    poi_popularity_.assign(dataset_.num_pois(), 0.0);
    for (const CheckinRecord& rec : dataset_.checkins()) {
      poi_popularity_[static_cast<size_t>(rec.poi)] += 1.0;
    }
  }
}

RecommendServer::~RecommendServer() { Shutdown(); }

Status RecommendServer::Start() {
  STTR_CHECK(!running_.load()) << "Start() on a running server";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  const size_t backlog = config_.mode == ServeMode::kEventLoop
                             ? std::max<size_t>(config_.max_pending_connections,
                                                256)
                             : config_.max_pending_connections;
  if (::listen(listen_fd_, static_cast<int>(backlog)) < 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  started_at_ = std::chrono::steady_clock::now();
  shutting_down_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  if (store_ != nullptr) {
    // Pin the store to the snapshot it was sliced from: a later hot reload
    // changes the version, and requests then score in-process rather than
    // mixing new MLP weights with the store's old rows.
    const std::shared_ptr<const ModelSnapshot> snapshot = bundle_->snapshot();
    store_version_ = snapshot != nullptr ? snapshot->version : 0;
  }

  if (config_.mode == ServeMode::kEventLoop) {
    const size_t n_loops = std::max<size_t>(1, config_.num_io_threads);
    EventLoop::Options opts;
    opts.max_request_bytes = config_.max_request_bytes;
    opts.idle_timeout = config_.request_timeout;
    opts.max_connections =
        std::max<size_t>(1, config_.max_connections / n_loops);
    loops_.clear();
    for (size_t i = 0; i < n_loops; ++i) {
      loops_.push_back(std::make_unique<EventLoop>(
          opts, stats_,
          [this, i](Conn& conn, const ParsedRequest& req) {
            return OnRequest(loops_[i].get(), conn, req);
          }));
    }
    for (const auto& loop : loops_) {
      if (!loop->Start()) {
        for (const auto& started : loops_) started->Stop();
        loops_.clear();
        ::close(listen_fd_);
        listen_fd_ = -1;
        running_.store(false, std::memory_order_release);
        return Status::IOError("event loop start failed");
      }
    }
    {
      MutexLock lock(task_mu_);
      ring_.assign(std::max<size_t>(1, config_.max_queued_requests), Task{});
      ring_head_ = 0;
      ring_count_ = 0;
      workers_stop_ = false;
    }
    workers_.reserve(config_.num_workers);
    for (size_t i = 0; i < config_.num_workers; ++i) {
      workers_.emplace_back([this] { ScoringWorkerLoop(); });
    }
  } else {
    workers_.reserve(config_.num_workers);
    for (size_t i = 0; i < config_.num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  STTR_LOG(Info) << "recommend server listening on 127.0.0.1:" << port_
                 << (config_.mode == ServeMode::kEventLoop ? " (event loop)"
                                                           : " (blocking)");
  return Status::OK();
}

void RecommendServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  shutting_down_.store(true, std::memory_order_release);
  // Closing the listener wakes the blocking accept(). The acceptor reads
  // listen_fd_, so the -1 store must wait until it has joined.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_ = -1;
  if (config_.mode == ServeMode::kEventLoop) {
    // Loop shutdown drains in-flight requests: a loop exits only once all
    // its connections are closed, which requires the scoring workers to
    // post their completions — so the workers stop strictly after.
    for (const auto& loop : loops_) loop->Stop();
    {
      MutexLock lock(task_mu_);
      workers_stop_ = true;
    }
    task_cv_.NotifyAll();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    loops_.clear();
  } else {
    // Drain: workers exit once the pending queue is empty and
    // shutting_down_.
    queue_cv_.NotifyAll();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
  }
  STTR_LOG(Info) << "recommend server on port " << port_ << " shut down";
}

void RecommendServer::AcceptLoop() {
  size_t next_loop = 0;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (shutdown) or fatal accept error
    }
    stats_->sys_accepts.fetch_add(1, std::memory_order_relaxed);
    if (config_.mode == ServeMode::kEventLoop) {
      // Round-robin across loops; each loop enforces its connection cap.
      loops_[next_loop]->AddConnection(fd);
      next_loop = (next_loop + 1) % loops_.size();
      continue;
    }
    bool rejected = false;
    {
      MutexLock lock(queue_mu_);
      if (pending_.size() >= config_.max_pending_connections) {
        rejected = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (rejected) {
      stats_->rejected_connections.fetch_add(1, std::memory_order_relaxed);
      SendResponse(fd, 503, ErrorJson("server overloaded"),
                   /*keep_alive=*/false);
      ::close(fd);
    } else {
      queue_cv_.NotifyOne();
    }
  }
}

// ---- Event-loop mode ----------------------------------------------------

EventLoop::Dispatch RecommendServer::OnRequest(EventLoop* loop, Conn& conn,
                                               const ParsedRequest& req) {
  stats_->requests.fetch_add(1, std::memory_order_relaxed);

  Task task;
  task.loop = loop;
  task.conn = &conn;
  task.fd = conn.fd;
  task.generation = conn.generation;

  if (req.method != "GET" && req.method != "POST") {
    conn.http_status = 400;
    conn.body.Append(kErrMethod);
  } else if (req.path == "/recommend") {
    int status = 400;
    std::string_view error;
    if (!ParseRecommendParams(req.query, &task.params, &status, &error)) {
      conn.http_status = status;
      conn.body.Append(error);
    } else {
      task.kind = Task::Kind::kRecommend;
      if (!EnqueueTask(task)) {
        // Admission control: the worker ring is full, shed load now
        // instead of queueing unboundedly. Close like the blocking
        // server's accept-side 503.
        stats_->rejected_requests.fetch_add(1, std::memory_order_relaxed);
        conn.http_status = 503;
        conn.body.Append(kErrOverloaded);
        conn.close_after_write = true;
        return EventLoop::Dispatch::kRespond;
      }
      return EventLoop::Dispatch::kAsync;
    }
  } else if (req.path == "/checkin") {
    int status = 400;
    std::string_view error;
    if (ingest_ == nullptr) {
      conn.http_status = 404;
      conn.body.Append(kErrNoIngest);
    } else if (!ParseCheckinParams(req.query, &task.params, &status, &error)) {
      conn.http_status = status;
      conn.body.Append(error);
    } else {
      task.kind = Task::Kind::kCheckin;
      if (!EnqueueTask(task)) {
        stats_->rejected_requests.fetch_add(1, std::memory_order_relaxed);
        conn.http_status = 503;
        conn.body.Append(kErrOverloaded);
        conn.close_after_write = true;
        return EventLoop::Dispatch::kRespond;
      }
      return EventLoop::Dispatch::kAsync;
    }
  } else if (req.path == "/healthz" || req.path == "/statz") {
    task.kind = req.path == "/healthz" ? Task::Kind::kHealthz
                                       : Task::Kind::kStatz;
    if (!EnqueueTask(task)) {
      stats_->rejected_requests.fetch_add(1, std::memory_order_relaxed);
      conn.http_status = 503;
      conn.body.Append(kErrOverloaded);
      conn.close_after_write = true;
      return EventLoop::Dispatch::kRespond;
    }
    return EventLoop::Dispatch::kAsync;
  } else {
    conn.http_status = 404;
    conn.body.Append(kErrPath);
  }

  // Synchronous error reply, answered on the loop thread with a
  // pre-serialized body: same counters and latency span as the blocking
  // path gives its routed 4xx responses.
  stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
  RecordLatency(conn.req_start);
  return EventLoop::Dispatch::kRespond;
}

bool RecommendServer::ParseRecommendParams(std::string_view query,
                                           RequestParams* out, int* status,
                                           std::string_view* error) const {
  // Validation order, bounds and error bodies replicate HandleRecommend
  // exactly — the equivalence suite compares the two byte-for-byte.
  const std::optional<std::string_view> user_param =
      FindQueryParam(query, "user");
  if (!user_param.has_value() || !ParseInt64View(*user_param, &out->user) ||
      out->user < 0 ||
      static_cast<size_t>(out->user) >= dataset_.num_users()) {
    *status = 400;
    *error = kErrUser;
    return false;
  }
  const std::optional<std::string_view> lat_param =
      FindQueryParam(query, "lat");
  const std::optional<std::string_view> lon_param =
      FindQueryParam(query, "lon");
  if (!lat_param.has_value() || !lon_param.has_value() ||
      !ParseDoubleView(*lat_param, &out->lat) ||
      !ParseDoubleView(*lon_param, &out->lon)) {
    *status = 400;
    *error = kErrLatLon;
    return false;
  }
  out->city = config_.default_city;
  if (const std::optional<std::string_view> p =
          FindQueryParam(query, "city")) {
    if (!ParseInt64View(*p, &out->city) || out->city < 0 ||
        static_cast<size_t>(out->city) >= dataset_.num_cities()) {
      *status = 400;
      *error = kErrCity;
      return false;
    }
  }
  out->k = static_cast<int64_t>(config_.default_k);
  if (const std::optional<std::string_view> p = FindQueryParam(query, "k")) {
    if (!ParseInt64View(*p, &out->k) || out->k <= 0 ||
        out->k > static_cast<int64_t>(config_.max_k)) {
      *status = 400;
      *error = kErrK;
      return false;
    }
  }
  out->use_cache = config_.enable_cache;
  if (const std::optional<std::string_view> p =
          FindQueryParam(query, "nocache")) {
    if (*p != "0") out->use_cache = false;
  }
  out->t = -1.0;
  if (const std::optional<std::string_view> p =
          FindQueryParam(query, "hour")) {
    if (!ParseDoubleView(*p, &out->t) || out->t < 0.0) {
      *status = 400;
      *error = kErrHour;
      return false;
    }
  }
  return true;
}

bool RecommendServer::ParseCheckinParams(std::string_view query,
                                         RequestParams* out, int* status,
                                         std::string_view* error) const {
  // Only well-formedness is checked here; id range validation (and the
  // poi/city consistency rule) is IngestService::Submit's job, so both HTTP
  // modes and direct Submit callers share one semantic gate.
  const std::optional<std::string_view> user_param =
      FindQueryParam(query, "user");
  if (!user_param.has_value() || !ParseInt64View(*user_param, &out->user)) {
    *status = 400;
    *error = kErrUser;
    return false;
  }
  const std::optional<std::string_view> poi_param =
      FindQueryParam(query, "poi");
  if (!poi_param.has_value() || !ParseInt64View(*poi_param, &out->poi)) {
    *status = 400;
    *error = kErrPoi;
    return false;
  }
  out->city = -1;  // negative = derive from the POI
  if (const std::optional<std::string_view> p =
          FindQueryParam(query, "city")) {
    if (!ParseInt64View(*p, &out->city)) {
      *status = 400;
      *error = kErrCity;
      return false;
    }
  }
  out->t = -1.0;
  if (const std::optional<std::string_view> p = FindQueryParam(query, "t")) {
    if (!ParseDoubleView(*p, &out->t) || out->t < 0.0) {
      *status = 400;
      *error = kErrT;
      return false;
    }
  }
  return true;
}

bool RecommendServer::EnqueueTask(const Task& task) {
  {
    MutexLock lock(task_mu_);
    if (ring_count_ == ring_.size()) return false;
    ring_[(ring_head_ + ring_count_) % ring_.size()] = task;
    ++ring_count_;
  }
  task_cv_.NotifyOne();
  return true;
}

void RecommendServer::ScoringWorkerLoop() {
  WorkerScratch scratch;
  for (;;) {
    Task task;
    {
      MutexLock lock(task_mu_);
      while (ring_count_ == 0 && !workers_stop_) task_cv_.Wait(task_mu_);
      if (ring_count_ == 0) return;  // stopping and drained
      task = ring_[ring_head_];
      ring_head_ = (ring_head_ + 1) % ring_.size();
      --ring_count_;
    }
    Conn& conn = *task.conn;
    switch (task.kind) {
      case Task::Kind::kRecommend:
        ProcessRecommend(task.params, scratch, conn);
        break;
      case Task::Kind::kHealthz:
        ProcessHealthz(conn);
        break;
      case Task::Kind::kStatz:
        ProcessStatz(conn);
        break;
      case Task::Kind::kCheckin:
        ProcessCheckin(task.params, conn);
        break;
    }
    if (conn.http_status >= 400) {
      stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
    }
    RecordLatency(conn.req_start);
    task.loop->Complete(task.fd, task.generation);
  }
}

void RecommendServer::ProcessRecommend(const RequestParams& p,
                                       WorkerScratch& scratch, Conn& conn) {
  const ScopedAllocCount meter;

  // Capture the snapshot once: this request scores (and reports provenance)
  // against exactly one model even if a hot reload lands mid-flight.
  const std::shared_ptr<const ModelSnapshot> snapshot = bundle_->snapshot();
  if (snapshot == nullptr || snapshot->scorer == nullptr) {
    conn.http_status = 503;
    conn.body.Append(kErrNoModel);
    stats_->recommend_allocs.fetch_add(meter.Count(),
                                       std::memory_order_relaxed);
    return;
  }

  const GeoPoint loc{p.lat, p.lon};
  const CityId city_id = static_cast<CityId>(p.city);
  const uint64_t cell = index_->CellOf(city_id, loc);
  const ResultCacheKey key{p.user, city_id, cell, static_cast<uint32_t>(p.k),
                           static_cast<uint8_t>(snapshot->precision)};

  // Cold-start detection: a user with no history in the request city scores
  // through the word bridge, bypassing the cache entirely — those scores
  // track the live word table, which row-level invalidation does not cover.
  const bool cold = cold_start_ != nullptr && snapshot->model != nullptr &&
                    cold_start_->IsColdIn(p.user, city_id);

  bool cached = false;
  const ResultCache::Value* top = nullptr;
  if (p.use_cache && !cold) {
    if (cache_->GetInto(key, &scratch.cached)) {
      cached = true;
      top = &scratch.cached;
      stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ResultCache::Value computed;  // cold path only: allocations expected
  bool degraded = false;
  if (!cached) {
    index_->CandidatesInto(city_id, loc, 0, &scratch.cand,
                           &scratch.candidates);
    if (scratch.candidates.empty()) {
      conn.http_status = 404;
      conn.body.Append(kErrNoCandidates);
      stats_->recommend_allocs.fetch_add(meter.Count(),
                                         std::memory_order_relaxed);
      return;
    }
    std::vector<double> scores;
    if (cold) {
      stats_->cold_start_requests.fetch_add(1, std::memory_order_relaxed);
      cold_start_->Score(snapshot->model->WordEmbeddingTable(), p.user,
                         cold_start_->BucketOf(p.t),
                         {scratch.candidates.data(),
                          scratch.candidates.size()},
                         &scores);
    } else if (StoreUsable(*snapshot)) {
      if (!ScoreViaStore(*snapshot->model, p.user,
                         {scratch.candidates.data(),
                          scratch.candidates.size()},
                         &scores)) {
        // Explicit degradation: the store missed its deadline or its shards
        // are down. Rank candidates by global popularity and say so —
        // never serve silently wrong scores.
        degraded = true;
        stats_->degraded_requests.fetch_add(1, std::memory_order_relaxed);
        PopularityScores(
            {scratch.candidates.data(), scratch.candidates.size()}, &scores);
      }
    } else if (batcher_ != nullptr) {
      scores =
          batcher_->Submit(snapshot->scorer, p.user, scratch.candidates).get();
    } else {
      // Per-request mode: score inline on this worker thread. Same
      // ScorePairs call shape as a single-request flush, so the scores are
      // bit-identical to the micro-batched path.
      scratch.users.assign(scratch.candidates.size(), p.user);
      scores = snapshot->scorer->ScorePairs(
          {scratch.users.data(), scratch.users.size()},
          {scratch.candidates.data(), scratch.candidates.size()});
    }
    computed = TopKByScore(scratch.candidates, scores,
                           static_cast<size_t>(p.k));
    // A degraded ranking must never poison the cache: it would outlive the
    // outage and keep serving after the store recovers. Cold-start results
    // stay uncached too (see above).
    if (p.use_cache && !degraded && !cold) cache_->Put(key, computed);
    top = &computed;
  }

  // JSON assembly in the connection's arena — %.17g score formatting
  // matches the blocking path's StrFormat exactly.
  ArenaBuf& b = conn.body;
  b.Append("{\"user\": ");
  b.AppendInt(p.user);
  b.Append(", \"city\": ");
  b.AppendInt(p.city);
  b.Append(", \"cell\": ");
  b.AppendUint(cell);
  b.Append(", \"k\": ");
  b.AppendInt(p.k);
  b.Append(", \"cached\": ");
  b.Append(cached ? std::string_view("true") : std::string_view("false"));
  if (store_ != nullptr) {
    // Only store-backed servers carry the marker, so a store-less server's
    // response bytes are unchanged.
    b.Append(", \"degraded\": ");
    b.Append(degraded ? std::string_view("true") : std::string_view("false"));
  }
  if (cold_start_ != nullptr) {
    // Same opt-in rule as "degraded": only cold-start-enabled servers
    // carry the marker.
    b.Append(", \"cold_start\": ");
    b.Append(cold ? std::string_view("true") : std::string_view("false"));
  }
  b.Append(", \"model_epoch\": ");
  b.AppendUint(snapshot->epoch);
  b.Append(", \"model_version\": ");
  b.AppendUint(snapshot->version);
  b.Append(", \"results\": [");
  char num[64];
  for (size_t i = 0; i < top->size(); ++i) {
    if (i > 0) b.Append(", ");
    b.Append("{\"poi\": ");
    b.AppendInt((*top)[i].first);
    b.Append(", \"score\": ");
    const int len =
        std::snprintf(num, sizeof(num), "%.17g", (*top)[i].second);
    b.Append(std::string_view(num, static_cast<size_t>(len)));
    b.Append('}');
  }
  b.Append("]}");

  const uint64_t allocs = meter.Count();
  stats_->recommend_allocs.fetch_add(allocs, std::memory_order_relaxed);
  if (cached) {
    // The asserted zero-alloc property: a warmed cache-hit request
    // allocates nothing between dequeue and completion.
    stats_->hot_requests.fetch_add(1, std::memory_order_relaxed);
    stats_->hot_allocs.fetch_add(allocs, std::memory_order_relaxed);
  }
}

void RecommendServer::ProcessHealthz(Conn& conn) {
  int http_status = 200;
  const std::string body = HealthzBody(&http_status);
  conn.http_status = http_status;
  conn.body.Append(body);
}

void RecommendServer::ProcessStatz(Conn& conn) {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  RefreshSnapshotGauges();
  conn.body.Append(stats_->ToJson(uptime));
}

void RecommendServer::ProcessCheckin(const RequestParams& p, Conn& conn) {
  int http_status = 200;
  const std::string body = CheckinBody(p, &http_status);
  conn.http_status = http_status;
  conn.body.Append(body);
}

std::string RecommendServer::CheckinBody(const RequestParams& p,
                                         int* http_status) {
  stats_->checkins_http.fetch_add(1, std::memory_order_relaxed);
  stream::CheckinEvent event;
  event.user = p.user;
  event.poi = p.poi;
  // A city beyond CityId's range can never belong to any POI; reject it
  // here instead of letting the narrowing cast alias a real city.
  if (p.city > std::numeric_limits<CityId>::max()) {
    *http_status = 400;
    return ErrorJson("invalid check-in");
  }
  event.city = static_cast<CityId>(p.city);
  event.time = p.t;
  StatusOr<uint64_t> seq = ingest_->Submit(event);
  if (!seq.ok()) {
    switch (seq.status().code()) {
      case StatusCode::kResourceExhausted:
        // Ingest backpressure: the event log is full because the trainer is
        // behind. Shed load; the client retries.
        *http_status = 503;
        return ErrorJson("ingest queue full");
      case StatusCode::kFailedPrecondition:
        *http_status = 503;
        return ErrorJson("ingest stopped");
      default:
        *http_status = 400;
        return ErrorJson("invalid check-in");
    }
  }
  *http_status = 200;
  std::ostringstream os;
  os << "{\"accepted\": true, \"seq\": " << *seq << "}";
  return os.str();
}

void RecommendServer::RefreshSnapshotGauges() const {
  const std::shared_ptr<const ModelSnapshot> snapshot = bundle_->snapshot();
  if (snapshot == nullptr) {
    stats_->snapshot_bytes.store(0, std::memory_order_relaxed);
    stats_->snapshot_precision.store(0, std::memory_order_relaxed);
    return;
  }
  stats_->snapshot_bytes.store(snapshot->resident_bytes,
                               std::memory_order_relaxed);
  stats_->snapshot_precision.store(
      static_cast<uint64_t>(snapshot->precision), std::memory_order_relaxed);
}

void RecommendServer::RecordLatency(
    std::chrono::steady_clock::time_point start) {
  stats_->request_latency.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
}

// ---- Blocking mode (legacy reference implementation) --------------------

void RecommendServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(queue_mu_);
      while (pending_.empty() && !shutting_down_.load()) {
        queue_cv_.Wait(queue_mu_);
      }
      if (pending_.empty()) return;  // shutting down, queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
  }
}

void RecommendServer::HandleConnection(int fd) {
  const timeval tv{
      .tv_sec = static_cast<time_t>(config_.request_timeout.count() / 1000),
      .tv_usec = static_cast<suseconds_t>(
          (config_.request_timeout.count() % 1000) * 1000)};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  while (HandleOneRequest(fd, buffer)) {
    // Keep-alive: loop until the client closes, times out, or asks to stop.
    // During graceful shutdown, finish the in-flight request then close.
    if (shutting_down_.load(std::memory_order_acquire)) break;
  }
  ::close(fd);
}

bool RecommendServer::HandleOneRequest(int fd, std::string& buffer) {
  // Read until the header terminator. Requests have no body in this API.
  size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > config_.max_request_bytes) {
      SendResponse(fd, 431, ErrorJson("request too large"), false);
      return false;
    }
    char chunk[4096];
    const ssize_t n = net::Recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // client closed
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK: idle keep-alive connection timed out. Only
      // answer 408 when a partial request is stranded.
      if (!buffer.empty()) {
        SendResponse(fd, 408, ErrorJson("request timeout"), false);
      }
      return false;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  const std::string head = buffer.substr(0, header_end);
  buffer.erase(0, header_end + 4);

  const auto lines = Split(head, '\n');
  const auto request_parts = SplitWhitespace(lines[0]);
  if (request_parts.size() != 3 || !StartsWith(request_parts[2], "HTTP/1.")) {
    stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
    SendResponse(fd, 400, ErrorJson("malformed request line"), false);
    return false;
  }
  const std::string& method = request_parts[0];
  const std::string& target = request_parts[1];
  bool keep_alive = true;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string line = ToLower(std::string(Trim(lines[i])));
    if (line == "connection: close") keep_alive = false;
  }

  const size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);

  const auto start = std::chrono::steady_clock::now();
  stats_->requests.fetch_add(1, std::memory_order_relaxed);

  int http_status = 200;
  std::string body;
  if (method != "GET" && method != "POST") {
    http_status = 400;
    body = ErrorJson("unsupported method");
  } else if (path == "/recommend") {
    body = HandleRecommend(query, &http_status);
  } else if (path == "/checkin") {
    body = HandleCheckin(query, &http_status);
  } else if (path == "/healthz") {
    body = HealthzBody(&http_status);
  } else if (path == "/statz") {
    body = HandleStatz();
  } else {
    http_status = 404;
    body = ErrorJson("unknown path");
  }
  if (http_status >= 400) {
    stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
  }

  stats_->request_latency.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return SendResponse(fd, http_status, body, keep_alive) && keep_alive;
}

std::string RecommendServer::HandleRecommend(const std::string& query,
                                             int* http_status) {
  const auto params = ParseQuery(query);

  int64_t user = -1;
  double lat = 0.0, lon = 0.0;
  const std::string* user_param = FindParam(params, "user");
  const std::string* lat_param = FindParam(params, "lat");
  const std::string* lon_param = FindParam(params, "lon");
  if (user_param == nullptr || !ParseInt64(*user_param, &user) || user < 0 ||
      static_cast<size_t>(user) >= dataset_.num_users()) {
    *http_status = 400;
    return ErrorJson("missing or invalid 'user'");
  }
  if (lat_param == nullptr || lon_param == nullptr ||
      !ParseDoubleParam(*lat_param, &lat) ||
      !ParseDoubleParam(*lon_param, &lon)) {
    *http_status = 400;
    return ErrorJson("missing or invalid 'lat'/'lon'");
  }
  int64_t city = config_.default_city;
  if (const std::string* p = FindParam(params, "city")) {
    if (!ParseInt64(*p, &city) || city < 0 ||
        static_cast<size_t>(city) >= dataset_.num_cities()) {
      *http_status = 400;
      return ErrorJson("invalid 'city'");
    }
  }
  int64_t k = static_cast<int64_t>(config_.default_k);
  if (const std::string* p = FindParam(params, "k")) {
    if (!ParseInt64(*p, &k) || k <= 0 ||
        k > static_cast<int64_t>(config_.max_k)) {
      *http_status = 400;
      return ErrorJson("invalid 'k'");
    }
  }
  bool use_cache = config_.enable_cache;
  if (const std::string* p = FindParam(params, "nocache")) {
    if (*p != "0") use_cache = false;
  }
  double hour = -1.0;
  if (const std::string* p = FindParam(params, "hour")) {
    if (!ParseDoubleParam(*p, &hour) || hour < 0.0) {
      *http_status = 400;
      return ErrorJson("invalid 'hour'");
    }
  }

  // Capture the snapshot once: this request scores (and reports provenance)
  // against exactly one model even if a hot reload lands mid-flight.
  const std::shared_ptr<const ModelSnapshot> snapshot = bundle_->snapshot();
  if (snapshot == nullptr || snapshot->scorer == nullptr) {
    *http_status = 503;
    return ErrorJson("no model loaded");
  }

  const GeoPoint loc{lat, lon};
  const CityId city_id = static_cast<CityId>(city);
  const uint64_t cell = index_->CellOf(city_id, loc);
  const ResultCacheKey key{user, city_id, cell, static_cast<uint32_t>(k),
                           static_cast<uint8_t>(snapshot->precision)};

  // Cold-start detection: a user with no history in the request city scores
  // through the word bridge, bypassing the cache entirely — those scores
  // track the live word table, which row-level invalidation does not cover.
  const bool cold = cold_start_ != nullptr && snapshot->model != nullptr &&
                    cold_start_->IsColdIn(user, city_id);

  std::vector<std::pair<PoiId, double>> top;
  bool cached = false;
  if (use_cache && !cold) {
    if (std::optional<ResultCache::Value> hit = cache_->Get(key)) {
      top = std::move(*hit);
      cached = true;
      stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  bool degraded = false;
  if (!cached) {
    const std::vector<PoiId> candidates = index_->Candidates(city_id, loc);
    if (candidates.empty()) {
      *http_status = 404;
      return ErrorJson("no candidate POIs in city");
    }
    std::vector<double> scores;
    if (cold) {
      stats_->cold_start_requests.fetch_add(1, std::memory_order_relaxed);
      cold_start_->Score(snapshot->model->WordEmbeddingTable(), user,
                         cold_start_->BucketOf(hour),
                         {candidates.data(), candidates.size()}, &scores);
    } else if (StoreUsable(*snapshot)) {
      if (!ScoreViaStore(*snapshot->model, user,
                         {candidates.data(), candidates.size()}, &scores)) {
        // Explicit degradation: the store missed its deadline or its shards
        // are down. Rank candidates by global popularity and say so —
        // never serve silently wrong scores.
        degraded = true;
        stats_->degraded_requests.fetch_add(1, std::memory_order_relaxed);
        PopularityScores({candidates.data(), candidates.size()}, &scores);
      }
    } else if (batcher_ != nullptr) {
      std::future<std::vector<double>> scores_future =
          batcher_->Submit(snapshot->scorer, user, candidates);
      scores = scores_future.get();
    } else {
      // Per-request mode: score inline on this handler thread. Same
      // ScorePairs call shape as a single-request flush, so the scores are
      // bit-identical to the micro-batched path.
      const std::vector<UserId> users(candidates.size(), user);
      scores = snapshot->scorer->ScorePairs(
          {users.data(), users.size()},
          {candidates.data(), candidates.size()});
    }
    top = TopKByScore(candidates, scores, static_cast<size_t>(k));
    // A degraded ranking must never poison the cache: it would outlive the
    // outage and keep serving after the store recovers. Cold-start results
    // stay uncached too (see above).
    if (use_cache && !degraded && !cold) cache_->Put(key, top);
  }

  std::ostringstream os;
  os << "{\"user\": " << user << ", \"city\": " << city
     << ", \"cell\": " << cell << ", \"k\": " << k
     << ", \"cached\": " << (cached ? "true" : "false");
  if (store_ != nullptr) {
    // Only store-backed servers carry the marker, so a store-less server's
    // response bytes are unchanged.
    os << ", \"degraded\": " << (degraded ? "true" : "false");
  }
  if (cold_start_ != nullptr) {
    // Same opt-in rule as "degraded": only cold-start-enabled servers
    // carry the marker.
    os << ", \"cold_start\": " << (cold ? "true" : "false");
  }
  os << ", \"model_epoch\": " << snapshot->epoch
     << ", \"model_version\": " << snapshot->version << ", \"results\": [";
  for (size_t i = 0; i < top.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"poi\": " << top[i].first << ", \"score\": "
       << StrFormat("%.17g", top[i].second) << "}";
  }
  os << "]}";
  return os.str();
}

std::string RecommendServer::HandleCheckin(const std::string& query,
                                           int* http_status) {
  // Parse precedence and error bodies mirror ParseCheckinParams exactly —
  // the equivalence suite compares the two modes byte-for-byte.
  if (ingest_ == nullptr) {
    *http_status = 404;
    return ErrorJson("ingest not enabled");
  }
  const auto params = ParseQuery(query);
  RequestParams p;
  const std::string* user_param = FindParam(params, "user");
  if (user_param == nullptr || !ParseInt64(*user_param, &p.user)) {
    *http_status = 400;
    return ErrorJson("missing or invalid 'user'");
  }
  const std::string* poi_param = FindParam(params, "poi");
  if (poi_param == nullptr || !ParseInt64(*poi_param, &p.poi)) {
    *http_status = 400;
    return ErrorJson("missing or invalid 'poi'");
  }
  p.city = -1;  // negative = derive from the POI
  if (const std::string* c = FindParam(params, "city")) {
    if (!ParseInt64(*c, &p.city)) {
      *http_status = 400;
      return ErrorJson("invalid 'city'");
    }
  }
  p.t = -1.0;
  if (const std::string* t = FindParam(params, "t")) {
    if (!ParseDoubleParam(*t, &p.t) || p.t < 0.0) {
      *http_status = 400;
      return ErrorJson("invalid 't'");
    }
  }
  return CheckinBody(p, http_status);
}

std::string RecommendServer::HealthzBody(int* http_status) const {
  // A load balancer polling /healthz must see a non-200 when this replica
  // cannot serve real scores: no loadable model, or embedding shards down
  // (requests are degrading to the popularity fallback).
  const std::shared_ptr<const ModelSnapshot> snapshot = bundle_->snapshot();
  std::ostringstream os;
  if (snapshot == nullptr || snapshot->scorer == nullptr) {
    *http_status = 503;
    os << "{\"status\": \"unavailable\", \"reason\": \"no model loaded\"}";
    return os.str();
  }
  const size_t down = store_ != nullptr ? store_->shards_down() : 0;
  if (down > 0) {
    *http_status = 503;
    os << "{\"status\": \"degraded\", \"reason\": \"" << down << "/"
       << store_->num_shards() << " embedding shards down\"";
  } else {
    *http_status = 200;
    os << "{\"status\": \"ok\"";
  }
  os << ", \"checkpoint\": \"" << snapshot->checkpoint_path << "\""
     << ", \"model_epoch\": " << snapshot->epoch
     << ", \"model_version\": " << snapshot->version << "}";
  return os.str();
}

bool RecommendServer::StoreUsable(const ModelSnapshot& snapshot) const {
  return store_ != nullptr && snapshot.model != nullptr &&
         snapshot.version == store_version_;
}

bool RecommendServer::ScoreViaStore(const StTransRec& model, UserId user,
                                    std::span<const PoiId> pois,
                                    std::vector<double>* scores) const {
  const std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::now() + config_.store_deadline;
  const size_t d = store_->dim();
  const size_t n = pois.size();
  std::vector<float> user_row(d);
  const int64_t uid = user;
  Status st = store_->Gather(EmbeddingTable::kUser, {&uid, 1},
                             user_row.data(), deadline);
  std::vector<float> poi_rows(n * d);
  if (st.ok()) {
    st = store_->Gather(EmbeddingTable::kPoi, pois, poi_rows.data(),
                        deadline);
  }
  if (!st.ok()) {
    STTR_LOG(Debug) << "store gather failed, degrading: " << st.ToString();
    return false;
  }
  // The MLP input assembled exactly as ScorePairs lays it out:
  // row i = [user row | poi row], so the scores are bit-identical.
  Tensor h({n, 2 * d});
  for (size_t i = 0; i < n; ++i) {
    float* dst = h.row(i);
    std::memcpy(dst, user_row.data(), d * sizeof(float));
    std::memcpy(dst + d, poi_rows.data() + i * d, d * sizeof(float));
  }
  *scores = model.ScoreGatheredPairs(h);
  return true;
}

void RecommendServer::PopularityScores(std::span<const PoiId> pois,
                                       std::vector<double>* scores) const {
  scores->resize(pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    (*scores)[i] = poi_popularity_[static_cast<size_t>(pois[i])];
  }
}

std::string RecommendServer::HandleStatz() const {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  RefreshSnapshotGauges();
  return stats_->ToJson(uptime);
}

}  // namespace sttr::serve
