#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/recommender.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sttr::serve {

namespace {

/// Minimal query-string decoding: splits "a=1&b=2" into pairs. Values are
/// numeric in this API, so %-unescaping is deliberately not implemented.
std::vector<std::pair<std::string, std::string>> ParseQuery(
    const std::string& query) {
  std::vector<std::pair<std::string, std::string>> params;
  for (const std::string& part : Split(query, '&')) {
    if (part.empty()) continue;
    const size_t eq = part.find('=');
    if (eq == std::string::npos) {
      params.emplace_back(part, "");
    } else {
      params.emplace_back(part.substr(0, eq), part.substr(eq + 1));
    }
  }
  return params;
}

const std::string* FindParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::string& name) {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDoubleParam(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::string ErrorJson(const std::string& message) {
  // Parameter names and static messages only — nothing here needs escaping.
  return std::string("{\"error\": \"") + message + "\"}";
}

const char* StatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Writes the full buffer, retrying on short writes/EINTR.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool SendResponse(int fd, int code, const std::string& body,
                  bool keep_alive) {
  std::ostringstream os;
  os << "HTTP/1.1 " << code << " " << StatusText(code) << "\r\n"
     << "Content-Type: application/json\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n"
     << "\r\n"
     << body;
  return WriteAll(fd, os.str());
}

}  // namespace

RecommendServer::RecommendServer(ServerConfig config, const Dataset& dataset,
                                 ModelBundle* bundle, CandidateIndex* index,
                                 ScoreBatcher* batcher, ResultCache* cache,
                                 ServeStats* stats)
    : config_(config),
      dataset_(dataset),
      bundle_(bundle),
      index_(index),
      batcher_(batcher),
      cache_(cache),
      stats_(stats) {
  STTR_CHECK(bundle_ != nullptr);
  STTR_CHECK(index_ != nullptr);
  STTR_CHECK(stats_ != nullptr);
  STTR_CHECK(!config_.enable_cache || cache_ != nullptr)
      << "enable_cache without a ResultCache";
  STTR_CHECK_GT(config_.num_workers, 0u);
}

RecommendServer::~RecommendServer() { Shutdown(); }

Status RecommendServer::Start() {
  STTR_CHECK(!running_.load()) << "Start() on a running server";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, static_cast<int>(config_.max_pending_connections)) <
      0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  started_at_ = std::chrono::steady_clock::now();
  shutting_down_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  STTR_LOG(Info) << "recommend server listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void RecommendServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  shutting_down_.store(true, std::memory_order_release);
  // Closing the listener wakes the blocking accept(). The acceptor reads
  // listen_fd_, so the -1 store must wait until it has joined.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_ = -1;
  // Drain: workers exit once the pending queue is empty and shutting_down_.
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  STTR_LOG(Info) << "recommend server on port " << port_ << " shut down";
}

void RecommendServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (shutdown) or fatal accept error
    }
    bool rejected = false;
    {
      MutexLock lock(queue_mu_);
      if (pending_.size() >= config_.max_pending_connections) {
        rejected = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (rejected) {
      stats_->rejected_connections.fetch_add(1, std::memory_order_relaxed);
      SendResponse(fd, 503, ErrorJson("server overloaded"),
                   /*keep_alive=*/false);
      ::close(fd);
    } else {
      queue_cv_.NotifyOne();
    }
  }
}

void RecommendServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(queue_mu_);
      while (pending_.empty() && !shutting_down_.load()) {
        queue_cv_.Wait(queue_mu_);
      }
      if (pending_.empty()) return;  // shutting down, queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
  }
}

void RecommendServer::HandleConnection(int fd) {
  const timeval tv{
      .tv_sec = static_cast<time_t>(config_.request_timeout.count() / 1000),
      .tv_usec = static_cast<suseconds_t>(
          (config_.request_timeout.count() % 1000) * 1000)};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  while (HandleOneRequest(fd, buffer)) {
    // Keep-alive: loop until the client closes, times out, or asks to stop.
    // During graceful shutdown, finish the in-flight request then close.
    if (shutting_down_.load(std::memory_order_acquire)) break;
  }
  ::close(fd);
}

bool RecommendServer::HandleOneRequest(int fd, std::string& buffer) {
  // Read until the header terminator. Requests have no body in this API.
  size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > config_.max_request_bytes) {
      SendResponse(fd, 431, ErrorJson("request too large"), false);
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // client closed
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK: idle keep-alive connection timed out. Only
      // answer 408 when a partial request is stranded.
      if (!buffer.empty()) {
        SendResponse(fd, 408, ErrorJson("request timeout"), false);
      }
      return false;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  const std::string head = buffer.substr(0, header_end);
  buffer.erase(0, header_end + 4);

  const auto lines = Split(head, '\n');
  const auto request_parts = SplitWhitespace(lines[0]);
  if (request_parts.size() != 3 || !StartsWith(request_parts[2], "HTTP/1.")) {
    stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
    SendResponse(fd, 400, ErrorJson("malformed request line"), false);
    return false;
  }
  const std::string& method = request_parts[0];
  const std::string& target = request_parts[1];
  bool keep_alive = true;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string line = ToLower(std::string(Trim(lines[i])));
    if (line == "connection: close") keep_alive = false;
  }

  const size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);

  const auto start = std::chrono::steady_clock::now();
  stats_->requests.fetch_add(1, std::memory_order_relaxed);

  int http_status = 200;
  std::string body;
  if (method != "GET" && method != "POST") {
    http_status = 400;
    body = ErrorJson("unsupported method");
  } else if (path == "/recommend") {
    body = HandleRecommend(query, &http_status);
  } else if (path == "/healthz") {
    body = HandleHealthz();
  } else if (path == "/statz") {
    body = HandleStatz();
  } else {
    http_status = 404;
    body = ErrorJson("unknown path");
  }
  if (http_status >= 400) {
    stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
  }

  stats_->request_latency.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return SendResponse(fd, http_status, body, keep_alive) && keep_alive;
}

std::string RecommendServer::HandleRecommend(const std::string& query,
                                             int* http_status) {
  const auto params = ParseQuery(query);

  int64_t user = -1;
  double lat = 0.0, lon = 0.0;
  const std::string* user_param = FindParam(params, "user");
  const std::string* lat_param = FindParam(params, "lat");
  const std::string* lon_param = FindParam(params, "lon");
  if (user_param == nullptr || !ParseInt64(*user_param, &user) || user < 0 ||
      static_cast<size_t>(user) >= dataset_.num_users()) {
    *http_status = 400;
    return ErrorJson("missing or invalid 'user'");
  }
  if (lat_param == nullptr || lon_param == nullptr ||
      !ParseDoubleParam(*lat_param, &lat) ||
      !ParseDoubleParam(*lon_param, &lon)) {
    *http_status = 400;
    return ErrorJson("missing or invalid 'lat'/'lon'");
  }
  int64_t city = config_.default_city;
  if (const std::string* p = FindParam(params, "city")) {
    if (!ParseInt64(*p, &city) || city < 0 ||
        static_cast<size_t>(city) >= dataset_.num_cities()) {
      *http_status = 400;
      return ErrorJson("invalid 'city'");
    }
  }
  int64_t k = static_cast<int64_t>(config_.default_k);
  if (const std::string* p = FindParam(params, "k")) {
    if (!ParseInt64(*p, &k) || k <= 0 ||
        k > static_cast<int64_t>(config_.max_k)) {
      *http_status = 400;
      return ErrorJson("invalid 'k'");
    }
  }
  bool use_cache = config_.enable_cache;
  if (const std::string* p = FindParam(params, "nocache")) {
    if (*p != "0") use_cache = false;
  }

  // Capture the snapshot once: this request scores (and reports provenance)
  // against exactly one model even if a hot reload lands mid-flight.
  const std::shared_ptr<const ModelSnapshot> snapshot = bundle_->snapshot();
  if (snapshot == nullptr || snapshot->model == nullptr) {
    *http_status = 503;
    return ErrorJson("no model loaded");
  }

  const GeoPoint loc{lat, lon};
  const CityId city_id = static_cast<CityId>(city);
  const uint64_t cell = index_->CellOf(city_id, loc);
  const ResultCacheKey key{user, city_id, cell, static_cast<uint32_t>(k)};

  std::vector<std::pair<PoiId, double>> top;
  bool cached = false;
  if (use_cache) {
    if (std::optional<ResultCache::Value> hit = cache_->Get(key)) {
      top = std::move(*hit);
      cached = true;
      stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!cached) {
    const std::vector<PoiId> candidates = index_->Candidates(city_id, loc);
    if (candidates.empty()) {
      *http_status = 404;
      return ErrorJson("no candidate POIs in city");
    }
    std::vector<double> scores;
    if (batcher_ != nullptr) {
      std::future<std::vector<double>> scores_future =
          batcher_->Submit(snapshot->model, user, candidates);
      scores = scores_future.get();
    } else {
      // Per-request mode: score inline on this handler thread. Same
      // ScorePairs call shape as a single-request flush, so the scores are
      // bit-identical to the micro-batched path.
      const std::vector<UserId> users(candidates.size(), user);
      scores = snapshot->model->ScorePairs(
          {users.data(), users.size()},
          {candidates.data(), candidates.size()});
    }
    top = TopKByScore(candidates, scores, static_cast<size_t>(k));
    if (use_cache) cache_->Put(key, top);
  }

  std::ostringstream os;
  os << "{\"user\": " << user << ", \"city\": " << city
     << ", \"cell\": " << cell << ", \"k\": " << k
     << ", \"cached\": " << (cached ? "true" : "false")
     << ", \"model_epoch\": " << snapshot->epoch
     << ", \"model_version\": " << snapshot->version << ", \"results\": [";
  for (size_t i = 0; i < top.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"poi\": " << top[i].first << ", \"score\": "
       << StrFormat("%.17g", top[i].second) << "}";
  }
  os << "]}";
  return os.str();
}

std::string RecommendServer::HandleHealthz() const {
  const std::shared_ptr<const ModelSnapshot> snapshot = bundle_->snapshot();
  std::ostringstream os;
  os << "{\"status\": \"" << (snapshot != nullptr ? "ok" : "loading")
     << "\"";
  if (snapshot != nullptr) {
    os << ", \"checkpoint\": \"" << snapshot->checkpoint_path << "\""
       << ", \"model_epoch\": " << snapshot->epoch
       << ", \"model_version\": " << snapshot->version;
  }
  os << "}";
  return os.str();
}

std::string RecommendServer::HandleStatz() const {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  return stats_->ToJson(uptime);
}

}  // namespace sttr::serve
