#ifndef STTR_SERVE_STATS_H_
#define STTR_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "stream/ingest_stats.h"
#include "util/mutex.h"

namespace sttr::serve {

/// Lock-free latency histogram: log2 major buckets with 16 linear
/// sub-buckets per octave (~6% relative resolution), recorded in
/// nanoseconds. Record() is a single relaxed atomic increment, cheap enough
/// for every request on the serving hot path; Summarize() walks the buckets
/// and interpolates percentiles.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(uint64_t nanos);

  struct Summary {
    uint64_t count = 0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };

  /// Consistent-enough snapshot for monitoring: buckets are read relaxed, so
  /// a summary taken under concurrent Record() traffic may straddle a few
  /// in-flight increments.
  Summary Summarize() const;

  /// The latency (in milliseconds) at quantile `p` in [0, 1] — e.g.
  /// Percentile(0.99) is the p99. Returns 0 when nothing was recorded.
  /// Reads the buckets relaxed, same snapshot semantics as Summarize().
  double Percentile(double p) const;

  void Reset();

 private:
  // Octaves 0..39 cover [1ns, ~18 minutes); 16 sub-buckets each.
  static constexpr size_t kSubBits = 4;
  static constexpr size_t kNumBuckets = 40u << kSubBits;

  static size_t BucketOf(uint64_t nanos);
  /// Representative (upper-bound) value of a bucket, in nanoseconds.
  static double BucketValue(size_t bucket);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_nanos_;
  std::atomic<uint64_t> max_nanos_;
};

/// Counters of the serving subsystem, surfaced at /statz. All relaxed
/// atomics: every field is monotonic and independently meaningful, so torn
/// cross-field reads only show a monitoring snapshot a few events stale.
struct ServeStats {
  std::atomic<uint64_t> requests{0};        ///< HTTP requests accepted
  std::atomic<uint64_t> bad_requests{0};    ///< 4xx responses
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> batches{0};           ///< ScorePairs flushes
  std::atomic<uint64_t> batched_requests{0};  ///< requests inside flushes
  std::atomic<uint64_t> scored_pairs{0};      ///< (user, poi) pairs scored
  std::atomic<uint64_t> model_reloads{0};
  /// Reload attempts that found a newer checkpoint but failed to load it
  /// (the old snapshot keeps serving). The failure *reason* is kept in the
  /// guarded last_reload_error below.
  std::atomic<uint64_t> model_reload_failures{0};
  /// Gauges describing the current snapshot, refreshed by the /statz
  /// handlers: approximate resident parameter bytes and the serving
  /// precision (0 = no model, else serve::Precision — 1 fp32, 2 int8).
  std::atomic<uint64_t> snapshot_bytes{0};
  std::atomic<uint64_t> snapshot_precision{0};
  std::atomic<uint64_t> rejected_connections{0};  ///< over connection limit
  std::atomic<uint64_t> rejected_requests{0};     ///< worker queue full (503)

  // Allocation accounting (counting operator-new hook, see alloc_hook.h).
  // The zero-alloc contract of the epoll hot path is asserted on these.
  std::atomic<uint64_t> recommend_allocs{0};  ///< allocs inside /recommend work
  std::atomic<uint64_t> hot_requests{0};      ///< cache-hit /recommend requests
  std::atomic<uint64_t> hot_allocs{0};        ///< allocs inside those (0 warmed)
  std::atomic<uint64_t> loop_allocs{0};       ///< allocs on event-loop threads

  // Syscall tallies from the event loops (and the blocking path's I/O).
  std::atomic<uint64_t> sys_reads{0};
  std::atomic<uint64_t> sys_writes{0};
  std::atomic<uint64_t> sys_epoll_waits{0};
  std::atomic<uint64_t> sys_accepts{0};

  // Sharded embedding store (embedding_store.h / sharded_store.h).
  std::atomic<uint64_t> shard_gathers{0};  ///< store Gather() calls
  std::atomic<uint64_t> shard_errors{0};   ///< failed per-shard attempts
  std::atomic<uint64_t> shard_retries{0};  ///< re-sent per-shard sub-gathers
  std::atomic<uint64_t> degraded_requests{0};  ///< fallback-ranked responses
  std::atomic<uint64_t> shards_down{0};        ///< gauge: tripped shards

  // Streaming ingestion (src/stream/): producer-side counters live in the
  // embedded IngestStats (bumped by the ingest service), consumer-side
  // delta-apply counters below (bumped by the model bundle).
  stream::IngestStats ingest;
  std::atomic<uint64_t> deltas_applied{0};  ///< delta hot-patches gone live
  std::atomic<uint64_t> delta_apply_failures{0};
  std::atomic<uint64_t> rows_patched{0};  ///< embedding rows patched in place
  std::atomic<uint64_t> cold_start_requests{0};  ///< word-bridge-scored
  std::atomic<uint64_t> checkins_http{0};  ///< /checkin requests accepted

  LatencyHistogram request_latency;  ///< full request handling, server side
  LatencyHistogram delta_apply_latency;  ///< delta load+patch+swap, bundle side

  /// Last reload failure message, "" when the most recent attempt succeeded.
  /// A string cannot be a relaxed atomic, so this pair is Mutex-guarded —
  /// reload and /statz are both off the request hot path.
  void RecordReloadError(std::string_view msg) {
    MutexLock lock(reload_error_mu_);
    last_reload_error_.assign(msg);
  }
  std::string LastReloadError() const {
    MutexLock lock(reload_error_mu_);
    return last_reload_error_;
  }

  /// /statz payload. `uptime_seconds` <= 0 omits the QPS estimate.
  std::string ToJson(double uptime_seconds) const;

 private:
  mutable Mutex reload_error_mu_;
  std::string last_reload_error_ GUARDED_BY(reload_error_mu_);
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_STATS_H_
