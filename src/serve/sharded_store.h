#ifndef STTR_SERVE_SHARDED_STORE_H_
#define STTR_SERVE_SHARDED_STORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/embedding_store.h"
#include "serve/shard_protocol.h"
#include "serve/stats.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/socket_fault.h"

namespace sttr::serve {

struct ShardedStoreOptions {
  /// Loopback ports of the N shard servers; shard i of ids maps to
  /// shard_ports[i] (modulo placement, see shard_protocol.h).
  std::vector<int> shard_ports;

  /// Default per-Gather budget when the caller passes no tighter deadline.
  std::chrono::milliseconds default_deadline{50};

  /// Retry policy: a failed per-shard sub-gather is re-sent at most
  /// `max_retries` times, only on transient errors (connect/send/recv
  /// failure, torn frame, shard EOF, kShuttingDown) and only while deadline
  /// budget remains. Backoff doubles from `backoff_base` up to `backoff_max`
  /// with uniform jitter in [0.5, 1.0)x so N routers hammered by the same
  /// shard outage do not retry in lockstep.
  size_t max_retries = 2;
  std::chrono::milliseconds backoff_base{2};
  std::chrono::milliseconds backoff_max{16};

  /// Circuit breaker: `trip_threshold` consecutive sub-gather failures trip
  /// a shard open for `open_duration`; while open the shard fails fast
  /// (no connect attempt). After the cooldown, one probe gather goes
  /// through half-open; success resets the breaker, failure re-opens it.
  size_t trip_threshold = 3;
  std::chrono::milliseconds open_duration{250};

  /// Per-shard connect timeout (loopback: generous) and idle-pool cap.
  std::chrono::milliseconds connect_timeout{200};
  size_t max_pooled_connections = 4;

  /// Jitter source seed (all randomness flows through sttr::Rng).
  uint64_t jitter_seed = 0x5354524eULL;

  /// Client-side fault injection applied to this router's connect/send/recv.
  FaultInjectionSocket* fault = nullptr;
  /// Optional shard_* counter sink (shard_gathers/errors/retries, the
  /// shards_down gauge).
  ServeStats* stats = nullptr;
};

/// Gather router over N hash shards: partitions the id batch by residue,
/// fans the per-shard requests out concurrently (nonblocking sockets driven
/// by one poll() loop per Gather call), reassembles rows in request order,
/// and wraps the whole exchange in deadline + retry + circuit-breaker
/// discipline. A Gather either returns rows bit-identical to the in-process
/// oracle or a non-OK Status — the caller (RecommendServer) turns the
/// latter into explicit degraded serving, never into silently wrong scores.
///
/// Thread-safe: concurrent Gathers share only the per-shard connection
/// pools and health state, both Mutex/atomic-guarded; each Gather drives
/// its own sockets.
class ShardedEmbeddingStore final : public EmbeddingStore {
 public:
  /// `dim`/`num_users`/`num_pois` describe the full (pre-shard) tables —
  /// the router validates ids locally instead of paying a round trip.
  ShardedEmbeddingStore(ShardedStoreOptions options, size_t dim,
                        size_t num_users, size_t num_pois);
  ~ShardedEmbeddingStore() override;

  size_t dim() const override { return dim_; }
  size_t num_rows(EmbeddingTable table) const override {
    return table == EmbeddingTable::kUser ? num_users_ : num_pois_;
  }
  size_t num_shards() const override { return options_.shard_ports.size(); }
  size_t shards_down() const override;

  Status Gather(EmbeddingTable table, std::span<const int64_t> ids,
                float* out,
                std::chrono::steady_clock::time_point deadline) override;

  /// Drops every pooled connection (chaos tests: force reconnects).
  void CloseAllConnections();

 private:
  struct ShardState;

  /// One in-flight sub-gather during a fan-out round.
  struct Pending;

  /// Circuit-breaker gate: false when the shard is open (fail fast).
  /// Half-open: after the cooldown exactly one caller wins the probe slot.
  bool AdmitShard(ShardState& shard, bool* is_probe);
  void RecordShardSuccess(ShardState& shard);
  void RecordShardFailure(ShardState& shard);

  /// Pops a pooled connection or establishes a new one (nonblocking
  /// connect bounded by min(deadline, connect_timeout)). Returns -1 on
  /// failure with errno describing the cause.
  int AcquireConnection(ShardState& shard,
                        std::chrono::steady_clock::time_point deadline);
  void ReleaseConnection(ShardState& shard, int fd);

  /// Runs one fan-out round over `pending`, marking each entry done or
  /// failed. Never blocks past `deadline`.
  void RunRound(std::vector<Pending>& pending, EmbeddingTable table,
                float* out, std::chrono::steady_clock::time_point deadline);

  std::chrono::milliseconds JitteredBackoff(size_t attempt);

  const ShardedStoreOptions options_;
  const size_t dim_;
  const size_t num_users_;
  const size_t num_pois_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::atomic<uint64_t> next_request_id_{1};

  Mutex rng_mu_;
  Rng rng_ GUARDED_BY(rng_mu_);
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_SHARDED_STORE_H_
