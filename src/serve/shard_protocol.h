#ifndef STTR_SERVE_SHARD_PROTOCOL_H_
#define STTR_SERVE_SHARD_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/embedding_store.h"

namespace sttr::serve {

/// Length-prefixed binary gather protocol between the router
/// (ShardedEmbeddingStore) and sttr_shard_server processes.
///
/// Every frame is:   u32 magic | u32 payload_len | payload
/// Request payload:  u64 request_id | u8 table | u8[3] reserved |
///                   u32 deadline_ms | u32 count | count * u64 ids
/// Response payload: u64 request_id | u8 status | u8[3] reserved |
///                   u32 dim | u32 count | count * dim * f32 rows
///
/// Integers and floats are host byte order — shards and router share a
/// loopback/rack boundary, never a heterogeneous one. `deadline_ms` is the
/// remaining client budget at send time so a shard can shed work it cannot
/// answer in time. The parser is incremental: it distinguishes "frame not
/// complete yet" (kNeedMore) from "stream is garbage" (kBad), which is what
/// lets the router treat a torn frame from a killed shard as a transient
/// connection error rather than undefined behaviour.

inline constexpr uint32_t kGatherRequestMagic = 0x53544752;   // "STGR"
inline constexpr uint32_t kGatherResponseMagic = 0x53544753;  // "STGS"
inline constexpr size_t kFrameHeaderBytes = 8;
/// Hard caps so a corrupt length prefix cannot drive a giant allocation.
inline constexpr size_t kMaxGatherIds = 1u << 20;
inline constexpr size_t kMaxFramePayloadBytes = 256u << 20;

enum class GatherStatus : uint8_t {
  kOk = 0,
  kBadRequest = 1,    // malformed frame or unknown table
  kOutOfRange = 2,    // id outside the table or not owned by this shard
  kShuttingDown = 3,  // shard is draining; retry elsewhere/later
};

struct GatherRequest {
  uint64_t request_id = 0;
  EmbeddingTable table = EmbeddingTable::kUser;
  uint32_t deadline_ms = 0;
  std::vector<int64_t> ids;
};

struct GatherResponse {
  uint64_t request_id = 0;
  GatherStatus status = GatherStatus::kOk;
  uint32_t dim = 0;
  uint32_t count = 0;
  std::vector<float> rows;  // count * dim floats, request order
};

void AppendGatherRequest(const GatherRequest& req, std::string* out);
void AppendGatherResponse(uint64_t request_id, GatherStatus status,
                          uint32_t dim, std::span<const float> rows,
                          std::string* out);

enum class FrameParse {
  kNeedMore,  // prefix of a valid frame; read more bytes
  kComplete,  // one frame decoded, *consumed bytes eaten from the front
  kBad,       // not a valid frame — tear down the connection
};

FrameParse ParseGatherRequest(std::string_view buffer, GatherRequest* out,
                              size_t* consumed);
FrameParse ParseGatherResponse(std::string_view buffer, GatherResponse* out,
                               size_t* consumed);

/// Hash-shard placement for dense id spaces: shard by residue, index within
/// the shard by quotient. Both directions are O(1) and the per-shard row
/// block stays dense (no hash map on the shard's hot path).
inline size_t ShardOfId(int64_t id, size_t num_shards) {
  return static_cast<size_t>(id) % num_shards;
}
inline size_t ShardLocalIndex(int64_t id, size_t num_shards) {
  return static_cast<size_t>(id) / num_shards;
}
/// Rows of a `total`-row table owned by `shard_index` under modulo placement.
inline size_t ShardRowCount(size_t total, size_t shard_index,
                            size_t num_shards) {
  return (total + num_shards - 1 - shard_index) / num_shards;
}

}  // namespace sttr::serve

#endif  // STTR_SERVE_SHARD_PROTOCOL_H_
