#ifndef STTR_SERVE_RESULT_CACHE_H_
#define STTR_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/types.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sttr::serve {

/// Cache key of one recommendation result. Queries are keyed by the grid
/// cell of the request location (not the raw coordinates), so every query
/// falling into the same cell — which by construction sees the same
/// candidate set — shares one entry.
struct ResultCacheKey {
  UserId user = -1;
  CityId city = -1;
  uint64_t cell = 0;
  uint32_t k = 0;
  /// Precision of the snapshot that produced (or would produce) the entry
  /// (serve::Precision); int8 and fp32 scores rank slightly differently, so
  /// a precision flip must not serve the other path's cached top-K even in
  /// the instant before the reload listener invalidates.
  uint8_t precision = 0;

  bool operator==(const ResultCacheKey& o) const {
    return user == o.user && city == o.city && cell == o.cell && k == o.k &&
           precision == o.precision;
  }
};

struct ResultCacheConfig {
  /// Independent LRU shards; the shard is picked by key hash, so concurrent
  /// requests for different users rarely contend on the same mutex.
  size_t num_shards = 8;
  /// Total entry capacity across shards (each shard gets its equal cut,
  /// minimum 1).
  size_t capacity = 4096;
  /// Entries older than this are served as misses and lazily evicted.
  /// Zero or negative disables expiry.
  std::chrono::milliseconds ttl{5000};
  /// Injectable clock for tests; null uses steady_clock.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Sharded LRU cache of per-(user, cell, k) top-K results with TTL and
/// wholesale invalidation. InvalidateAll() bumps a generation counter —
/// O(1), no locking of the shards — and entries from older generations are
/// treated as misses and evicted lazily; the model bundle calls it on every
/// hot reload so no request is ever served from a stale model's scores.
class ResultCache {
 public:
  using Value = std::vector<std::pair<PoiId, double>>;

  explicit ResultCache(ResultCacheConfig config);

  /// Returns the cached top-K, refreshing its LRU position; nullopt on
  /// miss/expired/invalidated.
  std::optional<Value> Get(const ResultCacheKey& key);

  /// Get() without the return-value allocation: copies the hit into `*out`
  /// (capacity-sticky, so a reused scratch vector makes the probe
  /// allocation-free once warmed). Returns false and leaves `*out`
  /// untouched on miss. This is the serving hot path's probe.
  bool GetInto(const ResultCacheKey& key, Value* out);

  /// Inserts or replaces under the current generation, evicting the shard's
  /// LRU tail beyond capacity.
  void Put(const ResultCacheKey& key, Value value);

  /// Drops every current entry in O(1) by advancing the generation.
  void InvalidateAll();

  /// Row-level invalidation for delta hot-patches: lazily drops every entry
  /// whose user is in `users` OR whose city is in `cities`; all other
  /// entries survive (no wholesale flush). Cost is O(|users| + |cities|)
  /// map updates, plus — on lookups — a staleness check that is a single
  /// atomic load for entries written after the newest row invalidation.
  /// The side index of invalidation floors is bounded; if a pathological
  /// stream of distinct rows would overflow it, the call degrades to
  /// InvalidateAll() (correct, just coarser) and the index restarts empty.
  void InvalidateRows(std::span<const UserId> users,
                      std::span<const CityId> cities);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;      ///< InvalidateAll() calls
    uint64_t row_invalidations = 0;  ///< InvalidateRows() calls
    size_t entries = 0;              ///< resident entries, any generation
  };
  Stats GetStats() const;

 private:
  struct Entry {
    ResultCacheKey key;
    Value value;
    uint64_t generation = 0;
    /// Put() order stamp (1-based); compared against the row-invalidation
    /// floors to decide whether a patched row outdates this entry.
    uint64_t seq = 0;
    std::chrono::steady_clock::time_point expires_at;
  };

  struct KeyHash {
    size_t operator()(const ResultCacheKey& k) const;
  };

  struct Shard {
    Mutex mu;
    /// Front = most recent. The map holds iterators into the list.
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<ResultCacheKey, std::list<Entry>::iterator, KeyHash>
        index GUARDED_BY(mu);
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
  };

  Shard& ShardOf(const ResultCacheKey& key);
  std::chrono::steady_clock::time_point Now() const;

  /// True when a row invalidation newer than `entry` covers its user or
  /// city. Single atomic load unless the entry predates the newest row
  /// invalidation. Called with the entry's shard lock held; lock order is
  /// shard.mu → floor_mu_ (InvalidateRows takes floor_mu_ alone).
  bool RowStale(const Entry& entry) EXCLUDES(floor_mu_);

  ResultCacheConfig config_;
  size_t per_shard_capacity_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> row_invalidations_{0};
  /// Put() order stamps; entry.seq <= a row floor means "written before
  /// that row was patched".
  std::atomic<uint64_t> put_seq_{0};
  /// Highest floor ever set — the fast-path screen in RowStale().
  std::atomic<uint64_t> max_floor_{0};
  Mutex floor_mu_;
  std::unordered_map<UserId, uint64_t> user_floor_ GUARDED_BY(floor_mu_);
  std::unordered_map<CityId, uint64_t> city_floor_ GUARDED_BY(floor_mu_);
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_RESULT_CACHE_H_
