#include "serve/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/alloc_hook.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/socket_io.h"

namespace sttr::serve {

namespace {

constexpr size_t kMaxEvents = 128;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Replies the loop makes without consulting the handler, pre-serialized once
// at startup (EventLoop's constructor touches each accessor) so the steady
// state never assembles them. Status codes, bodies and close semantics match
// the blocking implementation byte-for-byte.
const std::string& MalformedResponse() {
  static const std::string r = SerializeResponse(
      400, "{\"error\": \"malformed request line\"}", /*keep_alive=*/false);
  return r;
}
const std::string& TooLargeResponse() {
  static const std::string r = SerializeResponse(
      431, "{\"error\": \"request too large\"}", /*keep_alive=*/false);
  return r;
}
const std::string& TimeoutResponse() {
  static const std::string r = SerializeResponse(
      408, "{\"error\": \"request timeout\"}", /*keep_alive=*/false);
  return r;
}
const std::string& OverloadedResponse() {
  static const std::string r = SerializeResponse(
      503, "{\"error\": \"server overloaded\"}", /*keep_alive=*/false);
  return r;
}

}  // namespace

EventLoop::EventLoop(Options options, ServeStats* stats, Handler handler)
    : opts_(options), stats_(stats), handler_(std::move(handler)) {
  STTR_CHECK(handler_ != nullptr);
  // Both fds live for the whole object lifetime so Wake() from worker
  // threads can never race with a close() — Stop() joins the loop but only
  // the destructor (which requires external quiescence) closes them.
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  events_.resize(kMaxEvents);
  // Force the pre-serialized replies to build now, not on the hot path.
  MalformedResponse();
  TooLargeResponse();
  TimeoutResponse();
  OverloadedResponse();
}

EventLoop::~EventLoop() {
  Stop();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
}

bool EventLoop::Start() {
  MutexLock lock(mu_);
  STTR_CHECK(!running_) << "Start() on a running EventLoop";
  if (epoll_fd_ < 0 || event_fd_ < 0) return false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0 &&
      errno != EEXIST) {
    return false;
  }
  running_ = true;
  stopping_ = false;
  stop_done_ = false;
  thread_ = std::thread([this] { Run(); });
  return true;
}

void EventLoop::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    if (stopping_) {
      // A concurrent Stop() is already driving the shutdown; wait it out.
      while (!stop_done_) stop_cv_.Wait(mu_);
      return;
    }
    stopping_ = true;
  }
  Wake();
  std::thread t;
  {
    MutexLock lock(mu_);
    t = std::move(thread_);
  }
  if (t.joinable()) t.join();
  {
    MutexLock lock(mu_);
    // Sockets that raced into the queue after the loop stopped draining it.
    for (int fd : incoming_) ::close(fd);
    incoming_.clear();
    completions_.clear();
    running_ = false;
    stop_done_ = true;
  }
  stop_cv_.NotifyAll();
}

void EventLoop::AddConnection(int fd) {
  {
    MutexLock lock(mu_);
    if (running_ && !stopping_) {
      incoming_.push_back(fd);
      fd = -1;
    }
  }
  if (fd >= 0) {
    ::close(fd);  // not accepting (never started, or stopping)
    return;
  }
  Wake();
}

void EventLoop::Complete(int fd, uint64_t generation) {
  {
    MutexLock lock(mu_);
    completions_.push_back(Completion{fd, generation});
  }
  Wake();
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  const ssize_t n = ::write(event_fd_, &one, sizeof(one));
  (void)n;  // eventfd writes only fail when the counter saturates — fine.
}

void EventLoop::Run() {
  const auto sweep_period = std::clamp(opts_.idle_timeout / 4,
                                       std::chrono::milliseconds(10),
                                       std::chrono::milliseconds(500));
  next_sweep_ = std::chrono::steady_clock::now() + sweep_period;
  bool stopping = false;
  for (;;) {
    const uint64_t alloc_base = ThreadAllocCount();
    const int wait_ms = static_cast<int>(std::min<int64_t>(
        100, std::max<int64_t>(1, sweep_period.count())));
    const int n =
        ::epoll_wait(epoll_fd_, events_.data(),
                     static_cast<int>(events_.size()), wait_ms);
    if (stats_ != nullptr) {
      stats_->sys_epoll_waits.fetch_add(1, std::memory_order_relaxed);
    }
    if (n < 0 && errno != EINTR) {
      STTR_LOG(Warning) << "epoll_wait: " << std::strerror(errno);
    }

    {
      MutexLock lock(mu_);
      stopping = stopping_;
      incoming_scratch_.swap(incoming_);
      completions_scratch_.swap(completions_);
    }
    stopping_flag_ = stopping;

    for (int fd : incoming_scratch_) {
      if (stopping) {
        ::close(fd);
      } else {
        Register(fd);
      }
    }
    incoming_scratch_.clear();

    for (const Completion& c : completions_scratch_) {
      Conn* conn = Lookup(c.fd);
      if (conn == nullptr || conn->generation != c.generation ||
          conn->state != Conn::State::kProcessing) {
        continue;  // connection closed/recycled since dispatch
      }
      FinishResponse(*conn);
    }
    completions_scratch_.clear();

    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events_[static_cast<size_t>(i)];
      if (ev.data.fd == event_fd_) {
        uint64_t drained;
        while (::read(event_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      Conn* conn = Lookup(ev.data.fd);
      if (conn == nullptr || conn->state == Conn::State::kClosed) continue;
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (ev.events & (EPOLLIN | EPOLLOUT)) == 0) {
        // Pure hangup/error with nothing readable or writable left.
        if (conn->state == Conn::State::kProcessing) {
          conn->defer_close = true;
        } else {
          CloseConn(*conn);
        }
        continue;
      }
      if ((ev.events & EPOLLIN) != 0 &&
          conn->state == Conn::State::kReading) {
        OnReadable(*conn);
      }
      if (conn->state == Conn::State::kWriting &&
          (ev.events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) != 0) {
        OnWritable(*conn);
      }
    }

    const auto now = std::chrono::steady_clock::now();
    if (stopping) {
      // Graceful: drop connections that are between requests; let in-flight
      // work (kProcessing/kWriting) finish and drain. Mirrors the blocking
      // server finishing the current request then closing.
      for (const auto& c : conns_) {
        if (c != nullptr && c->state == Conn::State::kReading) {
          CloseConn(*c);
        }
      }
      if (stats_ != nullptr) {
        stats_->loop_allocs.fetch_add(ThreadAllocCount() - alloc_base,
                                      std::memory_order_relaxed);
      }
      if (open_count_.load(std::memory_order_relaxed) == 0) return;
      continue;
    }
    if (now >= next_sweep_) {
      SweepIdle(now);
      next_sweep_ = now + sweep_period;
    }
    if (stats_ != nullptr) {
      stats_->loop_allocs.fetch_add(ThreadAllocCount() - alloc_base,
                                    std::memory_order_relaxed);
    }
  }
}

void EventLoop::Register(int fd) {
  if (open_count_.load(std::memory_order_relaxed) >= opts_.max_connections) {
    if (stats_ != nullptr) {
      stats_->rejected_connections.fetch_add(1, std::memory_order_relaxed);
      stats_->sys_writes.fetch_add(1, std::memory_order_relaxed);
    }
    // Best effort: a fresh socket's send buffer takes this tiny reply.
    SetNonBlocking(fd);
    const std::string& reply = OverloadedResponse();
    (void)net::Send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
    ::close(fd);
    return;
  }
  SetNonBlocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (static_cast<size_t>(fd) >= conns_.size()) {
    conns_.resize(static_cast<size_t>(fd) + 1);
  }
  if (conns_[static_cast<size_t>(fd)] == nullptr) {
    conns_[static_cast<size_t>(fd)] = std::make_unique<Conn>();
  }
  Conn& conn = *conns_[static_cast<size_t>(fd)];
  conn.Open(fd, ++gen_counter_, std::chrono::steady_clock::now());
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    STTR_LOG(Warning) << "epoll_ctl(ADD): " << std::strerror(errno);
    ::close(fd);
    conn.state = Conn::State::kClosed;
    return;
  }
  conn.interest = EPOLLIN;
  open_count_.fetch_add(1, std::memory_order_relaxed);
}

Conn* EventLoop::Lookup(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= conns_.size()) return nullptr;
  return conns_[static_cast<size_t>(fd)].get();
}

void EventLoop::CloseConn(Conn& conn) {
  ::close(conn.fd);  // implicitly removes the fd from the epoll set
  conn.state = Conn::State::kClosed;
  conn.interest = 0;
  open_count_.fetch_sub(1, std::memory_order_relaxed);
}

void EventLoop::UpdateInterest(Conn& conn) {
  uint32_t mask = 0;
  if (conn.state == Conn::State::kReading && !conn.defer_close) {
    mask = EPOLLIN;
  } else if (conn.state == Conn::State::kWriting) {
    mask = EPOLLOUT;
  }
  if (mask == conn.interest) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.interest = mask;
}

void EventLoop::OnReadable(Conn& conn) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = net::Recv(conn.fd, chunk, sizeof(chunk), 0);
    if (stats_ != nullptr) {
      stats_->sys_reads.fetch_add(1, std::memory_order_relaxed);
    }
    if (n == 0) {
      CloseConn(conn);  // client closed between requests
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConn(conn);
      return;
    }
    conn.in.append(chunk, static_cast<size_t>(n));
    conn.last_activity = std::chrono::steady_clock::now();
    TryParse(conn);
    return;  // one read per readiness event; level-triggered epoll re-arms
  }
}

void EventLoop::OnWritable(Conn& conn) { FlushOut(conn); }

void EventLoop::TryParse(Conn& conn) {
  while (conn.state == Conn::State::kReading) {
    ParsedRequest req;
    switch (ParseRequest(conn.in, opts_.max_request_bytes, &req)) {
      case ParseStatus::kNeedMore:
        return;
      case ParseStatus::kTooLarge:
        // Like the blocking server's 431: reply and close, no counter.
        SendStatic(conn, TooLargeResponse());
        return;
      case ParseStatus::kMalformed:
        if (stats_ != nullptr) {
          stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
        }
        SendStatic(conn, MalformedResponse());
        return;
      case ParseStatus::kComplete:
        break;
    }
    conn.keep_alive = req.keep_alive;
    conn.close_after_write = !req.keep_alive;
    conn.req_start = std::chrono::steady_clock::now();
    conn.StartRequest();
    const Dispatch verdict = handler_(conn, req);
    conn.ConsumeRequest(req.consumed);
    switch (verdict) {
      case Dispatch::kClose:
        CloseConn(conn);
        return;
      case Dispatch::kAsync:
        conn.state = Conn::State::kProcessing;
        UpdateInterest(conn);
        return;
      case Dispatch::kRespond:
        FinishResponse(conn);
        break;  // may have gone back to kReading: serve pipelined input
    }
  }
}

void EventLoop::SendStatic(Conn& conn, std::string_view full_response) {
  conn.StartRequest();
  conn.out.Append(full_response);
  conn.close_after_write = true;
  conn.state = Conn::State::kWriting;
  FlushOut(conn);
}

void EventLoop::FinishResponse(Conn& conn) {
  // The Connection: header mirrors the request's keep-alive wish, exactly
  // like the blocking server — even when shutdown closes right afterwards.
  SerializeResponseInto(&conn, conn.keep_alive);
  conn.state = Conn::State::kWriting;
  FlushOut(conn);
}

void EventLoop::FlushOut(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        net::Send(conn.fd, conn.out.data() + conn.out_off,
                  conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (stats_ != nullptr) {
      stats_->sys_writes.fetch_add(1, std::memory_order_relaxed);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Slow client: park the rest on write readiness, never block here.
        conn.state = Conn::State::kWriting;
        UpdateInterest(conn);
        return;
      }
      CloseConn(conn);
      return;
    }
    conn.out_off += static_cast<size_t>(n);
  }
  if (conn.close_after_write || !conn.keep_alive || conn.defer_close ||
      stopping_flag_) {
    CloseConn(conn);
    return;
  }
  conn.state = Conn::State::kReading;
  conn.last_activity = std::chrono::steady_clock::now();
  UpdateInterest(conn);
  TryParse(conn);  // a pipelined request may already be buffered
}

void EventLoop::SweepIdle(std::chrono::steady_clock::time_point now) {
  for (const auto& c : conns_) {
    if (c == nullptr || c->state != Conn::State::kReading) continue;
    if (now - c->last_activity < opts_.idle_timeout) continue;
    if (!c->in.empty()) {
      // A partial request is stranded: answer 408 then close, like the
      // blocking server's receive timeout.
      SendStatic(*c, TimeoutResponse());
    } else {
      CloseConn(*c);  // idle keep-alive connection
    }
  }
}

}  // namespace sttr::serve
