#ifndef STTR_SERVE_EVENT_LOOP_H_
#define STTR_SERVE_EVENT_LOOP_H_

#include <sys/epoll.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "serve/conn.h"
#include "serve/stats.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sttr::serve {

/// One epoll (level-triggered) I/O thread owning a set of nonblocking
/// connections. The loop reads request bytes into per-connection buffers,
/// parses incrementally (keep-alive, partial reads, pipelining), and hands
/// each complete request head to the `Handler`. The handler either answers
/// synchronously on the loop thread (Dispatch::kRespond) or goes async
/// (Dispatch::kAsync) — typically by queueing a task for a worker pool — and
/// later calls Complete(fd, generation) from any thread; the loop then
/// serializes and writes the response, honouring write readiness so a slow
/// client never blocks the thread.
///
/// Steady-state behaviour is allocation-free: connection slots, the epoll
/// event array, the wakeup queues, and each connection's buffers/arena all
/// reach a sticky high-water capacity during warmup. Loop-thread allocations
/// are metered per iteration into ServeStats::loop_allocs so tests can
/// assert the counter goes flat.
///
/// Thread model: all connection state is touched only by the loop thread,
/// except a kProcessing connection's `body`/`http_status`/arena which the
/// handling worker owns until it posts the completion (hand-off ordered by
/// mu_, so the ownership transfer is a proper happens-before edge). External
/// entry points — AddConnection, Complete, Stop — only enqueue under mu_ and
/// wake the loop via eventfd.
class EventLoop {
 public:
  struct Options {
    size_t max_request_bytes = 16 * 1024;
    /// A connection idle (no complete request in progress) longer than this
    /// is closed; one with a *partial* request buffered gets a 408 first —
    /// the same outcome as the blocking server's receive timeout.
    std::chrono::milliseconds idle_timeout{5000};
    /// Open-socket cap for this loop; connections beyond it are answered
    /// with the pre-serialized 503 and closed.
    size_t max_connections = 4096;
  };

  /// Handler verdict for one parsed request.
  enum class Dispatch {
    kRespond,  ///< conn.http_status/body filled; loop writes the response
    kAsync,    ///< handed off; Complete(fd, generation) will arrive later
    kClose,    ///< drop the connection without a response
  };

  /// Invoked on the loop thread with a complete request head. The
  /// ParsedRequest's views point into conn.in and die when the handler
  /// returns — an async handler must copy what it needs first.
  using Handler = std::function<Dispatch(Conn&, const ParsedRequest&)>;

  /// `stats` may be null (syscall/alloc tallies are then skipped);
  /// `handler` must be valid for the loop's lifetime.
  EventLoop(Options options, ServeStats* stats, Handler handler);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread. False if epoll/eventfd setup failed.
  bool Start() EXCLUDES(mu_);

  /// Graceful shutdown: stops accepting new connections, closes idle ones,
  /// lets in-flight requests finish and their responses drain, then joins
  /// the thread. Idempotent; latecomers block until the first call is done.
  void Stop() EXCLUDES(mu_);

  /// Transfers ownership of an accepted socket to this loop (thread-safe).
  /// The loop makes it nonblocking and starts reading. After Stop() began,
  /// the fd is simply closed.
  void AddConnection(int fd) EXCLUDES(mu_);

  /// Posts the completion of an async request (thread-safe, any thread).
  /// The (fd, generation) pair names the exact connection the request was
  /// dispatched on; completions for since-recycled slots are ignored.
  void Complete(int fd, uint64_t generation) EXCLUDES(mu_);

  /// Connections currently open on this loop (approximate; for tests).
  size_t num_open() const {
    return open_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Completion {
    int fd;
    uint64_t generation;
  };

  void Run();

  // All of the below run exclusively on the loop thread.
  void Register(int fd);
  Conn* Lookup(int fd);
  void CloseConn(Conn& conn);
  void OnReadable(Conn& conn);
  void OnWritable(Conn& conn);
  void TryParse(Conn& conn);
  void SendStatic(Conn& conn, std::string_view full_response);
  void FinishResponse(Conn& conn);
  void FlushOut(Conn& conn);
  void UpdateInterest(Conn& conn);
  void SweepIdle(std::chrono::steady_clock::time_point now);
  void Wake();

  const Options opts_;
  ServeStats* const stats_;
  const Handler handler_;

  int epoll_fd_ = -1;
  int event_fd_ = -1;

  Mutex mu_;
  bool running_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  bool stop_done_ GUARDED_BY(mu_) = false;
  CondVar stop_cv_;
  std::thread thread_ GUARDED_BY(mu_);
  std::vector<int> incoming_ GUARDED_BY(mu_);
  std::vector<Completion> completions_ GUARDED_BY(mu_);

  // Loop-thread-only state (no locks; single owner).
  std::vector<std::unique_ptr<Conn>> conns_;  ///< indexed by fd
  std::vector<int> incoming_scratch_;
  std::vector<Completion> completions_scratch_;
  std::vector<epoll_event> events_;
  uint64_t gen_counter_ = 0;
  std::chrono::steady_clock::time_point next_sweep_;
  /// Loop-thread snapshot of stopping_, refreshed each iteration so the
  /// write path can force-close after the in-flight response drains.
  bool stopping_flag_ = false;

  std::atomic<size_t> open_count_{0};
};

}  // namespace sttr::serve

#endif  // STTR_SERVE_EVENT_LOOP_H_
