#ifndef STTR_GEO_GEO_H_
#define STTR_GEO_GEO_H_

#include <string>

namespace sttr {

/// A WGS-84 coordinate (degrees).
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in kilometres (haversine formula).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

/// Axis-aligned lat/lon rectangle.
struct BoundingBox {
  double min_lat = 0.0;
  double max_lat = 0.0;
  double min_lon = 0.0;
  double max_lon = 0.0;

  /// Half-open on the max edges so grid cells tile without overlap; points
  /// exactly on the max edge are treated as inside (clamped by callers).
  bool Contains(const GeoPoint& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon &&
           p.lon <= max_lon;
  }

  /// Grows the box to include `p`.
  void ExpandToInclude(const GeoPoint& p);

  double lat_span() const { return max_lat - min_lat; }
  double lon_span() const { return max_lon - min_lon; }

  std::string ToString() const;
};

}  // namespace sttr

#endif  // STTR_GEO_GEO_H_
