#include "geo/grid.h"

#include <algorithm>

#include "util/check.h"

namespace sttr {

GridIndex::GridIndex(const BoundingBox& box, size_t rows, size_t cols)
    : box_(box), rows_(rows), cols_(cols) {
  STTR_CHECK_GE(rows, 1u);
  STTR_CHECK_GE(cols, 1u);
  STTR_CHECK_GT(box.lat_span(), 0.0);
  STTR_CHECK_GT(box.lon_span(), 0.0);
}

size_t GridIndex::CellOf(const GeoPoint& p) const {
  const double fr = (p.lat - box_.min_lat) / box_.lat_span();
  const double fc = (p.lon - box_.min_lon) / box_.lon_span();
  auto clamp_index = [](double f, size_t n) {
    const auto i = static_cast<int64_t>(f * static_cast<double>(n));
    return static_cast<size_t>(
        std::clamp<int64_t>(i, 0, static_cast<int64_t>(n) - 1));
  };
  return clamp_index(fr, rows_) * cols_ + clamp_index(fc, cols_);
}

GeoPoint GridIndex::CellCenter(size_t cell) const {
  STTR_CHECK_LT(cell, NumCells());
  const double r = static_cast<double>(RowOf(cell)) + 0.5;
  const double c = static_cast<double>(ColOf(cell)) + 0.5;
  return GeoPoint{
      box_.min_lat + box_.lat_span() * r / static_cast<double>(rows_),
      box_.min_lon + box_.lon_span() * c / static_cast<double>(cols_)};
}

std::vector<size_t> GridIndex::Neighbors4(size_t cell) const {
  STTR_CHECK_LT(cell, NumCells());
  const size_t r = RowOf(cell);
  const size_t c = ColOf(cell);
  std::vector<size_t> out;
  out.reserve(4);
  if (r > 0) out.push_back(cell - cols_);
  if (r + 1 < rows_) out.push_back(cell + cols_);
  if (c > 0) out.push_back(cell - 1);
  if (c + 1 < cols_) out.push_back(cell + 1);
  return out;
}

}  // namespace sttr
