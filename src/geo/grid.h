#ifndef STTR_GEO_GRID_H_
#define STTR_GEO_GRID_H_

#include <cstdint>
#include <vector>

#include "geo/geo.h"

namespace sttr {

/// Uniform n1 x n2 partition of a bounding box into grid cells, the first
/// step of the paper's region segmentation ("we first uniformly divide a
/// city into n1 x n2 equal-sized small grids").
///
/// Cells are indexed row-major: id = row * cols + col, row indexing latitude.
class GridIndex {
 public:
  /// Precondition: rows, cols >= 1 and box has positive extent on both axes.
  GridIndex(const BoundingBox& box, size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t NumCells() const { return rows_ * cols_; }

  /// Cell containing `p`; points outside the box are clamped to the border
  /// cells so every point maps somewhere deterministic.
  size_t CellOf(const GeoPoint& p) const;

  /// Centre coordinate of a cell.
  GeoPoint CellCenter(size_t cell) const;

  /// 4-neighbourhood (N/S/E/W) cell ids of `cell` within the grid.
  std::vector<size_t> Neighbors4(size_t cell) const;

  size_t RowOf(size_t cell) const { return cell / cols_; }
  size_t ColOf(size_t cell) const { return cell % cols_; }

  const BoundingBox& box() const { return box_; }

 private:
  BoundingBox box_;
  size_t rows_;
  size_t cols_;
};

}  // namespace sttr

#endif  // STTR_GEO_GRID_H_
