#include "geo/density_resampler.h"

#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace sttr {

DensityResampler::DensityResampler(std::vector<size_t> region_sizes,
                                   const std::vector<int>& checkin_regions,
                                   const std::vector<int64_t>& checkin_pois) {
  STTR_CHECK_EQ(checkin_regions.size(), checkin_pois.size());
  const size_t num_regions = region_sizes.size();
  stats_.resize(num_regions);
  for (size_t r = 0; r < num_regions; ++r) {
    STTR_CHECK_GT(region_sizes[r], 0u) << "region " << r << " has no cells";
    stats_[r].num_cells = region_sizes[r];
  }

  // Count check-ins per region and per (region, POI).
  std::vector<std::unordered_map<int64_t, size_t>> poi_counts(num_regions);
  for (size_t i = 0; i < checkin_regions.size(); ++i) {
    const int r = checkin_regions[i];
    STTR_CHECK_GE(r, 0);
    STTR_CHECK_LT(static_cast<size_t>(r), num_regions);
    stats_[r].num_checkins += 1;
    poi_counts[r][checkin_pois[i]] += 1;
  }

  for (size_t r = 0; r < num_regions; ++r) {
    stats_[r].density = static_cast<double>(stats_[r].num_checkins) /
                        static_cast<double>(stats_[r].num_cells);
    max_density_ = std::max(max_density_, stats_[r].density);
  }

  // Eq. 6 deficits and Eq. 8 region weights, over non-empty regions only.
  for (size_t r = 0; r < num_regions; ++r) {
    if (stats_[r].num_checkins == 0) continue;
    const double target =
        max_density_ * static_cast<double>(stats_[r].num_cells);
    const double deficit =
        target - static_cast<double>(stats_[r].num_checkins);
    stats_[r].deficit = static_cast<size_t>(std::llround(std::max(0.0, deficit)));
    total_deficit_ += stats_[r].deficit;

    sampled_region_ids_.push_back(r);
    region_weights_.push_back(max_density_ / stats_[r].density);
    std::vector<int64_t> ids;
    std::vector<double> weights;
    ids.reserve(poi_counts[r].size());
    for (const auto& [poi, count] : poi_counts[r]) {
      ids.push_back(poi);
      weights.push_back(static_cast<double>(count));
    }
    poi_ids_.push_back(std::move(ids));
    poi_alias_.emplace_back(weights);
  }
  if (!region_weights_.empty()) {
    region_alias_ = AliasTable(region_weights_);
  }
}

size_t DensityResampler::NumExtra(double alpha) const {
  STTR_CHECK_GE(alpha, 0.0);
  STTR_CHECK_LE(alpha, 1.0);
  return static_cast<size_t>(
      std::llround(alpha * static_cast<double>(total_deficit_)));
}

std::vector<int64_t> DensityResampler::SampleExtra(double alpha,
                                                   Rng& rng) const {
  const size_t n = NumExtra(alpha);
  std::vector<int64_t> out;
  if (n == 0 || region_alias_.empty()) return out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t slot = region_alias_.Sample(rng);           // Eq. 8
    const size_t poi_slot = poi_alias_[slot].Sample(rng);    // Eq. 7
    out.push_back(poi_ids_[slot][poi_slot]);
  }
  return out;
}

double DensityResampler::RegionProbability(size_t r) const {
  STTR_CHECK_LT(r, stats_.size());
  if (stats_[r].num_checkins == 0) return 0.0;
  double total = 0;
  for (double w : region_weights_) total += w;
  if (total <= 0) return 0.0;
  // Find the weight slot for region r.
  for (size_t i = 0; i < sampled_region_ids_.size(); ++i) {
    if (sampled_region_ids_[i] == r) return region_weights_[i] / total;
  }
  return 0.0;
}

}  // namespace sttr
