#include "geo/geo.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace sttr {

namespace {
constexpr double kEarthRadiusKm = 6371.0088;
double Deg2Rad(double d) { return d * M_PI / 180.0; }
}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = Deg2Rad(a.lat);
  const double lat2 = Deg2Rad(b.lat);
  const double dlat = lat2 - lat1;
  const double dlon = Deg2Rad(b.lon - a.lon);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

void BoundingBox::ExpandToInclude(const GeoPoint& p) {
  min_lat = std::min(min_lat, p.lat);
  max_lat = std::max(max_lat, p.lat);
  min_lon = std::min(min_lon, p.lon);
  max_lon = std::max(max_lon, p.lon);
}

std::string BoundingBox::ToString() const {
  return StrFormat("[%.4f..%.4f]x[%.4f..%.4f]", min_lat, max_lat, min_lon,
                   max_lon);
}

}  // namespace sttr
