#ifndef STTR_GEO_DENSITY_RESAMPLER_H_
#define STTR_GEO_DENSITY_RESAMPLER_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace sttr {

/// Per-region summary used by the resampler and by diagnostics.
struct RegionDensity {
  size_t num_cells = 0;     ///< S_r, number of grid cells in the region.
  size_t num_checkins = 0;  ///< n_r, raw check-ins observed in the region.
  double density = 0.0;     ///< rho_r = n_r / S_r.
  size_t deficit = 0;       ///< n'_r from Eq. 6: check-ins needed to reach rho_max.
};

/// Density-based spatial resampling (paper §3.1.4, Eqs. 6-9).
///
/// Regions whose check-in density rho_r is below the maximum density rho_r*
/// get their check-ins over-sampled so that transfer learning (MMD) sees a
/// balanced distribution over POIs. The resampling procedure is the two-stage
/// draw of Eq. 9: a region r with probability proportional to rho_r*/rho_r
/// (Eq. 8), then a POI v within r with probability n_{r,v}/n_r (Eq. 7).
/// The number of synthetic draws is alpha * sum_r n'_r where n'_r satisfies
/// (n_r + n'_r)/S_r = rho_r* (Eq. 6) and alpha in [0,1] is the paper's
/// punishment hyper-parameter.
class DensityResampler {
 public:
  /// `region_sizes[r]`  = number of grid cells of region r (S_r);
  /// `checkin_regions`  = region of every raw check-in;
  /// `checkin_pois`     = POI of every raw check-in (parallel array).
  /// Regions with zero check-ins take no part in resampling.
  DensityResampler(std::vector<size_t> region_sizes,
                   const std::vector<int>& checkin_regions,
                   const std::vector<int64_t>& checkin_pois);

  /// Total deficit sum_r n'_r implied by Eq. 6.
  size_t TotalDeficit() const { return total_deficit_; }

  /// Number of synthetic check-ins drawn at rate `alpha` (Eq. 6 scaled).
  size_t NumExtra(double alpha) const;

  /// Draws NumExtra(alpha) POIs per Eq. 9. Empty when alpha == 0 or the
  /// distribution is already uniform across regions.
  std::vector<int64_t> SampleExtra(double alpha, Rng& rng) const;

  /// Per-region statistics (indexed by region id).
  const std::vector<RegionDensity>& stats() const { return stats_; }

  /// Highest region density rho_r* (0 when there are no check-ins).
  double max_density() const { return max_density_; }

  /// Probability of drawing region r under Eq. 8 (0 for empty regions).
  double RegionProbability(size_t r) const;

 private:
  std::vector<RegionDensity> stats_;
  double max_density_ = 0.0;
  size_t total_deficit_ = 0;

  // Sampling machinery: alias table over non-empty regions, plus one alias
  // table per region over its POIs.
  std::vector<size_t> sampled_region_ids_;
  std::vector<double> region_weights_;
  AliasTable region_alias_;
  std::vector<AliasTable> poi_alias_;           // parallel to sampled_region_ids_
  std::vector<std::vector<int64_t>> poi_ids_;   // parallel to sampled_region_ids_
};

}  // namespace sttr

#endif  // STTR_GEO_DENSITY_RESAMPLER_H_
