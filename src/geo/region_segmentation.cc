#include "geo/region_segmentation.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace sttr {

RegionSegmenter::RegionSegmenter(const GridIndex& grid, double delta)
    : grid_(grid), delta_(delta), cell_users_(grid.NumCells()) {
  STTR_CHECK_GE(delta, 0.0);
  STTR_CHECK_LE(delta, 1.0);
}

void RegionSegmenter::AddVisit(size_t cell, int64_t user) {
  STTR_CHECK_LT(cell, cell_users_.size());
  cell_users_[cell].insert(user);
}

double RegionSegmenter::CellDistance(size_t a, size_t b) const {
  STTR_CHECK_LT(a, cell_users_.size());
  STTR_CHECK_LT(b, cell_users_.size());
  const auto& ua = cell_users_[a];
  const auto& ub = cell_users_[b];
  if (ua.empty() || ub.empty()) return 0.0;
  const auto& small = ua.size() <= ub.size() ? ua : ub;
  const auto& big = ua.size() <= ub.size() ? ub : ua;
  size_t common = 0;
  for (int64_t u : small) common += big.count(u);
  return static_cast<double>(common) / static_cast<double>(small.size());
}

size_t RegionSegmenter::CellUserCount(size_t cell) const {
  STTR_CHECK_LT(cell, cell_users_.size());
  return cell_users_[cell].size();
}

RegionAssignment RegionSegmenter::Segment(Rng& rng) const {
  const size_t n = grid_.NumCells();
  RegionAssignment out;
  out.cell_to_region.assign(n, -1);

  // Seed order: densest first (ties shuffled), matching the paper's
  // "starting from the dense grids we extensively merge".
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return cell_users_[a].size() > cell_users_[b].size();
  });

  for (size_t seed : order) {
    if (out.cell_to_region[seed] != -1) continue;
    const int region = static_cast<int>(out.region_cells.size());
    out.region_cells.emplace_back();
    // BFS flood fill: a cell joins when its Eq.5 distance to the frontier
    // cell it was discovered from reaches delta.
    std::deque<size_t> frontier{seed};
    out.cell_to_region[seed] = region;
    while (!frontier.empty()) {
      const size_t cur = frontier.front();
      frontier.pop_front();
      out.region_cells[region].push_back(cur);
      for (size_t nb : grid_.Neighbors4(cur)) {
        if (out.cell_to_region[nb] != -1) continue;
        if (CellDistance(cur, nb) >= delta_ && delta_ > 0.0 &&
            !cell_users_[nb].empty()) {
          out.cell_to_region[nb] = region;
          frontier.push_back(nb);
        } else if (delta_ == 0.0 && !cell_users_[nb].empty() &&
                   !cell_users_[cur].empty()) {
          // delta == 0 merges every connected non-empty neighbourhood.
          out.cell_to_region[nb] = region;
          frontier.push_back(nb);
        }
      }
    }
  }
  return out;
}

}  // namespace sttr
