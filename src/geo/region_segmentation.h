#ifndef STTR_GEO_REGION_SEGMENTATION_H_
#define STTR_GEO_REGION_SEGMENTATION_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "geo/grid.h"
#include "util/rng.h"

namespace sttr {

/// Result of clustering grid cells into "uniformly accessible regions".
struct RegionAssignment {
  /// region id (0-based, dense) for every grid cell.
  std::vector<int> cell_to_region;
  /// Cells belonging to each region.
  std::vector<std::vector<size_t>> region_cells;

  size_t num_regions() const { return region_cells.size(); }
};

/// Algorithm 1 of the paper: clustering grid cells into uniformly accessible
/// regions by flood-filling from seed cells, merging a neighbouring cell
/// whenever the user-overlap distance (Eq. 5)
///
///   dis(a, b) = |U_a ∩ U_b| / min(|U_a|, |U_b|)
///
/// is at least the threshold delta. Cells that share many visitors are easy
/// to travel between, so a region is a connected set of mutually accessible
/// cells. Cells without any visitors become singleton regions (dis is defined
/// as 0 against an empty user set).
class RegionSegmenter {
 public:
  /// `grid` defines adjacency; `delta` is the merge threshold in [0, 1].
  RegionSegmenter(const GridIndex& grid, double delta);

  /// Declares that `user` visited a POI located in `cell`.
  void AddVisit(size_t cell, int64_t user);

  /// Runs the clustering. `rng` picks seed cells: the paper samples seeds
  /// randomly but notes merging "starting from the dense grids"; we follow
  /// that by seeding in decreasing order of visitor count, breaking ties
  /// randomly with `rng`. Deterministic for a fixed rng state.
  RegionAssignment Segment(Rng& rng) const;

  /// Eq. 5 distance between two cells given the recorded visits.
  double CellDistance(size_t a, size_t b) const;

  /// Number of distinct visitors recorded in `cell`.
  size_t CellUserCount(size_t cell) const;

 private:
  const GridIndex& grid_;
  double delta_;
  std::vector<std::unordered_set<int64_t>> cell_users_;
};

}  // namespace sttr

#endif  // STTR_GEO_REGION_SEGMENTATION_H_
