#include "nn/module.h"

#include <istream>
#include <ostream>

#include "util/check.h"

namespace sttr::nn {

void Module::ZeroGrad() const {
  for (auto& p : Parameters()) p.ZeroGrad();
}

size_t Module::NumParams() const {
  size_t n = 0;
  for (const auto& p : Parameters()) n += p.value().size();
  return n;
}

Status Module::Save(std::ostream& out) const {
  for (const auto& p : Parameters()) {
    STTR_RETURN_IF_ERROR(p.value().Serialize(out));
  }
  return Status::OK();
}

Status Module::Load(std::istream& in) const {
  for (auto& p : Parameters()) {
    StatusOr<Tensor> t = Tensor::Deserialize(in);
    if (!t.ok()) return t.status();
    if (!t->SameShape(p.value())) {
      return Status::InvalidArgument("parameter shape mismatch on Load");
    }
    p.mutable_value() = std::move(t).value();
  }
  return Status::OK();
}

void Module::CopyParamsFrom(const Module& other) const {
  auto dst = Parameters();
  auto src = other.Parameters();
  STTR_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    STTR_CHECK(dst[i].value().SameShape(src[i].value()));
    dst[i].mutable_value() = src[i].value();
  }
}

}  // namespace sttr::nn
