#include "nn/module.h"

#include <istream>
#include <ostream>

#include "util/check.h"

namespace sttr::nn {

void Module::ZeroGrad() const {
  for (auto& p : Parameters()) p.ZeroGrad();
}

size_t Module::NumParams() const {
  size_t n = 0;
  for (const auto& p : Parameters()) n += p.value().size();
  return n;
}

Status Module::Save(std::ostream& out) const {
  for (const auto& p : Parameters()) {
    STTR_RETURN_IF_ERROR(p.value().Serialize(out));
  }
  return Status::OK();
}

Status Module::Load(std::istream& in) const {
  return LoadParametersAtomic(in, Parameters());
}

Status LoadParametersAtomic(std::istream& in,
                            const std::vector<ag::Variable>& params) {
  // Stage everything first: an error below must not leave a model with some
  // parameters replaced and the rest stale.
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    StatusOr<Tensor> t = Tensor::Deserialize(in);
    if (!t.ok()) return t.status();
    if (!t->SameShape(params[i].value())) {
      return Status::InvalidArgument(
          "parameter " + std::to_string(i) + " shape mismatch on Load: have " +
          ShapeToString(params[i].value().shape()) + ", stream has " +
          ShapeToString(t->shape()));
    }
    staged.push_back(std::move(t).value());
  }
  for (size_t i = 0; i < params.size(); ++i) {
    ag::Variable p = params[i];  // cheap handle copy; aliases the same node
    p.mutable_value() = std::move(staged[i]);
  }
  return Status::OK();
}

void Module::CopyParamsFrom(const Module& other) const {
  auto dst = Parameters();
  auto src = other.Parameters();
  STTR_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    STTR_CHECK(dst[i].value().SameShape(src[i].value()));
    dst[i].mutable_value() = src[i].value();
  }
}

}  // namespace sttr::nn
