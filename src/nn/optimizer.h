#ifndef STTR_NN_OPTIMIZER_H_
#define STTR_NN_OPTIMIZER_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "autograd/variable.h"
#include "util/status.h"

namespace sttr::nn {

/// Base class for first-order optimisers over a fixed parameter list.
///
/// Sparse contract: if a parameter's touched_rows() is non-empty at Step()
/// time, only those rows carry gradient (this is what embedding lookups
/// produce) and the optimiser applies a lazy row-wise update. Parameters
/// whose gradient flows through dense ops must never also receive sparse
/// gradients in the same step.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes all parameter gradients without updating.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  int64_t step_count() const { return step_count_; }

  /// Serialises the full optimiser state: step count plus every slot tensor
  /// (momentum, Adam moments, AdaGrad accumulators). Together with the
  /// parameters this is everything needed to continue training bit-
  /// identically after a restart.
  Status SaveState(std::ostream& out) const;

  /// Restores state written by SaveState() into an optimiser constructed
  /// over an identical parameter list. Validates every slot shape before
  /// touching any state (all-or-nothing on error).
  Status LoadState(std::istream& in);

 protected:
  /// Subclass slot serialisation hooks for SaveState/LoadState. Defaults
  /// handle stateless optimisers (no slots).
  virtual Status SaveSlots(std::ostream& out) const;
  virtual Status LoadSlots(std::istream& in);

  /// Updates rows `rows` (deduplicated, sorted) of parameter `i`; rows empty
  /// means a dense update of the whole tensor.
  virtual void Update(size_t i, const std::vector<int64_t>& rows) = 0;

  /// Row-range helper: iterates [row*cols, (row+1)*cols) for sparse rows or
  /// the whole tensor when rows is empty.
  std::vector<ag::Variable> params_;
  int64_t step_count_ = 0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable> params, float lr, float momentum = 0.0f);

 protected:
  void Update(size_t i, const std::vector<int64_t>& rows) override;
  Status SaveSlots(std::ostream& out) const override;
  Status LoadSlots(std::istream& in) override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;  // allocated lazily when momentum > 0
};

/// Adam (Kingma & Ba). Embedding tables receive lazy row-wise updates with
/// global-step bias correction (standard "lazy Adam").
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

 protected:
  void Update(size_t i, const std::vector<int64_t>& rows) override;
  Status SaveSlots(std::ostream& out) const override;
  Status LoadSlots(std::istream& in) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// AdaGrad, kept for the LCE/PR-UIDT baselines.
class AdaGrad : public Optimizer {
 public:
  AdaGrad(std::vector<ag::Variable> params, float lr, float eps = 1e-8f);

 protected:
  void Update(size_t i, const std::vector<int64_t>& rows) override;
  Status SaveSlots(std::ostream& out) const override;
  Status LoadSlots(std::istream& in) override;

 private:
  float lr_, eps_;
  std::vector<Tensor> accum_;
};

}  // namespace sttr::nn

#endif  // STTR_NN_OPTIMIZER_H_
