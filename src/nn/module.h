#ifndef STTR_NN_MODULE_H_
#define STTR_NN_MODULE_H_

#include <iosfwd>
#include <vector>

#include "autograd/variable.h"
#include "util/status.h"

namespace sttr::nn {

/// Base class for trainable components. A Module owns leaf Variables
/// (parameters); composite modules expose their children's parameters too.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, in a stable order (used by Save/Load and by
  /// CopyParamsFrom, which pair parameters positionally).
  virtual std::vector<ag::Variable> Parameters() const = 0;

  /// Zeroes every parameter gradient.
  void ZeroGrad() const;

  /// Total number of scalar parameters.
  size_t NumParams() const;

  /// Binary-serialises all parameters in Parameters() order.
  Status Save(std::ostream& out) const;

  /// Restores parameters written by Save(); shapes must match.
  Status Load(std::istream& in) const;

  /// Copies parameter values (not grads) from a module with an identical
  /// parameter list. Used by the data-parallel trainer to sync replicas.
  void CopyParamsFrom(const Module& other) const;
};

/// Reads one tensor per entry of `params` from `in`, validating every shape
/// before touching any parameter; commits all-or-nothing. A truncated stream
/// or a shape mismatch partway through therefore leaves the model exactly as
/// it was (no partially-overwritten parameter list).
Status LoadParametersAtomic(std::istream& in,
                            const std::vector<ag::Variable>& params);

}  // namespace sttr::nn

#endif  // STTR_NN_MODULE_H_
