#ifndef STTR_NN_LAYERS_H_
#define STTR_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/module.h"
#include "util/rng.h"

namespace sttr::nn {

/// Lookup table of `num_rows` embeddings of width `dim`, initialised
/// N(0, init_stddev) per the paper ("initializing parameters with a Gaussian
/// distribution"). Lookups record touched rows for lazy optimiser updates.
class Embedding : public Module {
 public:
  Embedding(size_t num_rows, size_t dim, Rng& rng, float init_stddev = 0.01f);

  /// Rows at `indices` as a (batch, dim) Variable.
  ag::Variable Forward(const std::vector<int64_t>& indices) const;

  /// The raw table Variable (shape {num_rows, dim}).
  const ag::Variable& table() const { return table_; }

  size_t num_rows() const { return table_.value().rows(); }
  size_t dim() const { return table_.value().cols(); }

  std::vector<ag::Variable> Parameters() const override { return {table_}; }

 private:
  ag::Variable table_;
};

/// Fully connected layer: y = x W + b, Glorot-uniform W, zero b.
class Linear : public Module {
 public:
  Linear(size_t in_dim, size_t out_dim, Rng& rng);

  ag::Variable Forward(const ag::Variable& x) const;

  size_t in_dim() const { return weight_.value().rows(); }
  size_t out_dim() const { return weight_.value().cols(); }

  std::vector<ag::Variable> Parameters() const override {
    return {weight_, bias_};
  }

 private:
  ag::Variable weight_;  // (in, out)
  ag::Variable bias_;    // (out)
};

/// The ReLU tower of Eq. (11)-(12): hidden layers given by `dims`
/// (e.g. {128, 64, 32, 16}) followed by a single-logit output layer.
/// Dropout with the configured rate is applied to the input and after every
/// hidden activation, as in the paper ("dropout on the embedding layer and
/// each hidden layer").
class Mlp : public Module {
 public:
  /// `input_dim` -> dims[0] -> ... -> dims.back() -> 1 logit.
  Mlp(size_t input_dim, const std::vector<size_t>& dims, float dropout_rate,
      Rng& rng);

  /// Returns per-row logits with shape (batch, 1). `training` enables dropout.
  ag::Variable Forward(const ag::Variable& x, bool training, Rng& rng) const;

  /// Inference-only forward: no autograd graph, no dropout. Runs the tower
  /// as (batch, dim) matrix products through ParallelMatMul, so scoring a
  /// whole candidate set is one pass of large GEMMs instead of `batch`
  /// separate 1-row passes. Thread-safe (weights are read-only here).
  Tensor InferenceForward(const Tensor& x) const;

  size_t depth() const { return hidden_.size(); }

  std::vector<ag::Variable> Parameters() const override;

 private:
  std::vector<Linear> hidden_;
  Linear output_;
  float dropout_rate_;
};

}  // namespace sttr::nn

#endif  // STTR_NN_LAYERS_H_
