#include "nn/layers.h"

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace sttr::nn {

Embedding::Embedding(size_t num_rows, size_t dim, Rng& rng, float init_stddev)
    : table_(Tensor::RandomNormal({num_rows, dim}, rng, 0.0f, init_stddev),
             /*requires_grad=*/true) {
  STTR_CHECK_GT(num_rows, 0u);
  STTR_CHECK_GT(dim, 0u);
  table_.set_name("embedding_table");
}

ag::Variable Embedding::Forward(const std::vector<int64_t>& indices) const {
  return ag::GatherRows(table_, indices);
}

Linear::Linear(size_t in_dim, size_t out_dim, Rng& rng)
    : weight_(Tensor::GlorotUniform(in_dim, out_dim, rng),
              /*requires_grad=*/true),
      bias_(Tensor({out_dim}), /*requires_grad=*/true) {
  weight_.set_name("linear_weight");
  bias_.set_name("linear_bias");
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  return ag::AddRowBroadcast(ag::MatMul(x, weight_), bias_);
}

Mlp::Mlp(size_t input_dim, const std::vector<size_t>& dims, float dropout_rate,
         Rng& rng)
    : output_((dims.empty() ? input_dim : dims.back()), 1, rng),
      dropout_rate_(dropout_rate) {
  size_t prev = input_dim;
  hidden_.reserve(dims.size());
  for (size_t width : dims) {
    hidden_.emplace_back(prev, width, rng);
    prev = width;
  }
}

ag::Variable Mlp::Forward(const ag::Variable& x, bool training,
                          Rng& rng) const {
  ag::Variable h = ag::Dropout(x, dropout_rate_, training, rng);
  for (const Linear& layer : hidden_) {
    h = ag::Relu(layer.Forward(h));
    h = ag::Dropout(h, dropout_rate_, training, rng);
  }
  return output_.Forward(h);
}

Tensor Mlp::InferenceForward(const Tensor& x) const {
  Tensor h = x;
  for (const Linear& layer : hidden_) {
    auto params = layer.Parameters();
    h = Relu(AddRowBroadcast(ParallelMatMul(h, params[0].value()),
                             params[1].value()));
  }
  auto out_params = output_.Parameters();
  return AddRowBroadcast(ParallelMatMul(h, out_params[0].value()),
                         out_params[1].value());
}

std::vector<ag::Variable> Mlp::Parameters() const {
  std::vector<ag::Variable> params;
  for (const Linear& layer : hidden_) {
    for (auto& p : layer.Parameters()) params.push_back(p);
  }
  for (auto& p : output_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace sttr::nn
