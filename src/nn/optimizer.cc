#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "tensor/simd.h"
#include "util/check.h"

namespace sttr::nn {

Optimizer::Optimizer(std::vector<ag::Variable> params)
    : params_(std::move(params)) {
  for (const auto& p : params_) {
    STTR_CHECK(p.defined());
    STTR_CHECK(p.requires_grad()) << "optimiser given a frozen parameter";
  }
}

void Optimizer::Step() {
  ++step_count_;
  for (size_t i = 0; i < params_.size(); ++i) {
    std::vector<int64_t> rows(params_[i].touched_rows());
    if (!rows.empty()) {
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    }
    Update(i, rows);
    // Clear gradient. For sparse parameters only the touched rows are dirty.
    params_[i].ZeroGradSparse();
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

namespace {

/// Writes a count-prefixed vector of slot tensors.
Status SaveTensorVec(std::ostream& out, const std::vector<Tensor>& ts) {
  const uint64_t n = ts.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  if (!out) return Status::IOError("optimizer slot header write failed");
  for (const Tensor& t : ts) STTR_RETURN_IF_ERROR(t.Serialize(out));
  return Status::OK();
}

/// Reads a vector written by SaveTensorVec, validating count and per-slot
/// shapes against `like` before returning (nothing is committed on error).
Status LoadTensorVec(std::istream& in, const std::vector<Tensor>& like,
                     std::vector<Tensor>* out) {
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return Status::IOError("optimizer slot header read failed");
  if (n != like.size()) {
    return Status::InvalidArgument(
        "optimizer slot count mismatch: have " + std::to_string(like.size()) +
        ", stream has " + std::to_string(n));
  }
  std::vector<Tensor> staged;
  staged.reserve(like.size());
  for (size_t i = 0; i < like.size(); ++i) {
    StatusOr<Tensor> t = Tensor::Deserialize(in);
    if (!t.ok()) return t.status();
    if (!t->SameShape(like[i])) {
      return Status::InvalidArgument("optimizer slot " + std::to_string(i) +
                                     " shape mismatch");
    }
    staged.push_back(std::move(t).value());
  }
  *out = std::move(staged);
  return Status::OK();
}

}  // namespace

Status Optimizer::SaveState(std::ostream& out) const {
  const int64_t steps = step_count_;
  out.write(reinterpret_cast<const char*>(&steps), sizeof(steps));
  if (!out) return Status::IOError("optimizer state write failed");
  return SaveSlots(out);
}

Status Optimizer::LoadState(std::istream& in) {
  int64_t steps = 0;
  in.read(reinterpret_cast<char*>(&steps), sizeof(steps));
  if (!in) return Status::IOError("optimizer state read failed");
  if (steps < 0) return Status::InvalidArgument("negative optimizer step count");
  STTR_RETURN_IF_ERROR(LoadSlots(in));
  step_count_ = steps;
  return Status::OK();
}

Status Optimizer::SaveSlots(std::ostream&) const { return Status::OK(); }

Status Optimizer::LoadSlots(std::istream&) { return Status::OK(); }

double Optimizer::ClipGradNorm(double max_norm) {
  STTR_CHECK_GT(max_norm, 0.0);
  double total = 0;
  for (const auto& p : params_) total += p.grad().SquaredL2Norm();
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) p.mutable_grad().ScaleInPlace(scale);
  }
  return norm;
}

namespace {

/// Applies `fn(offset)` to every scalar slot covered by the update: the rows
/// listed in `rows`, or the whole tensor when `rows` is empty.
template <typename Fn>
void ForEachSlot(const Tensor& t, const std::vector<int64_t>& rows, Fn fn) {
  if (rows.empty()) {
    for (size_t i = 0; i < t.size(); ++i) fn(i);
    return;
  }
  STTR_CHECK_EQ(t.ndim(), 2u) << "sparse rows require a 2-D parameter";
  const size_t cols = t.cols();
  for (int64_t r : rows) {
    const size_t base = static_cast<size_t>(r) * cols;
    for (size_t j = 0; j < cols; ++j) fn(base + j);
  }
}

/// Applies `fn(base_offset, count)` once per updated range: each touched row
/// when `rows` is non-empty, the whole tensor otherwise. This is the
/// row-contiguous form the SIMD kernels consume.
template <typename Fn>
void ForEachRange(const Tensor& t, const std::vector<int64_t>& rows, Fn fn) {
  if (rows.empty()) {
    fn(size_t{0}, t.size());
    return;
  }
  STTR_CHECK_EQ(t.ndim(), 2u) << "sparse rows require a 2-D parameter";
  const size_t cols = t.cols();
  for (int64_t r : rows) fn(static_cast<size_t>(r) * cols, cols);
}

}  // namespace

Sgd::Sgd(std::vector<ag::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  STTR_CHECK_GT(lr, 0.0f);
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p.value().shape());
  }
}

void Sgd::Update(size_t i, const std::vector<int64_t>& rows) {
  Tensor& w = params_[i].mutable_value();
  const Tensor& g = params_[i].grad();
  if (momentum_ > 0.0f) {
    Tensor& vel = velocity_[i];
    ForEachSlot(w, rows, [&](size_t s) {
      vel[s] = momentum_ * vel[s] + g[s];
      w[s] -= lr_ * vel[s];
    });
  } else {
    ForEachRange(w, rows, [&](size_t base, size_t n) {
      simd::SgdRow(w.data() + base, g.data() + base, n, lr_);
    });
  }
}

Status Sgd::SaveSlots(std::ostream& out) const {
  return SaveTensorVec(out, velocity_);
}

Status Sgd::LoadSlots(std::istream& in) {
  return LoadTensorVec(in, velocity_, &velocity_);
}

Adam::Adam(std::vector<ag::Variable> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  STTR_CHECK_GT(lr, 0.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::Update(size_t i, const std::vector<int64_t>& rows) {
  Tensor& w = params_[i].mutable_value();
  const Tensor& g = params_[i].grad();
  Tensor& m = m_[i];
  Tensor& v = v_[i];
  const double t = static_cast<double>(step_count());
  const float bc1 = static_cast<float>(1.0 - std::pow(beta1_, t));
  const float bc2 = static_cast<float>(1.0 - std::pow(beta2_, t));
  ForEachRange(w, rows, [&](size_t base, size_t n) {
    simd::AdamRow(w.data() + base, m.data() + base, v.data() + base,
                  g.data() + base, n, lr_, beta1_, beta2_, bc1, bc2, eps_);
  });
}

Status Adam::SaveSlots(std::ostream& out) const {
  STTR_RETURN_IF_ERROR(SaveTensorVec(out, m_));
  return SaveTensorVec(out, v_);
}

Status Adam::LoadSlots(std::istream& in) {
  // Stage both moment vectors before committing either, so a stream that
  // dies between them cannot leave m/v out of sync.
  std::vector<Tensor> m, v;
  STTR_RETURN_IF_ERROR(LoadTensorVec(in, m_, &m));
  STTR_RETURN_IF_ERROR(LoadTensorVec(in, v_, &v));
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

AdaGrad::AdaGrad(std::vector<ag::Variable> params, float lr, float eps)
    : Optimizer(std::move(params)), lr_(lr), eps_(eps) {
  STTR_CHECK_GT(lr, 0.0f);
  accum_.reserve(params_.size());
  for (const auto& p : params_) accum_.emplace_back(p.value().shape());
}

void AdaGrad::Update(size_t i, const std::vector<int64_t>& rows) {
  Tensor& w = params_[i].mutable_value();
  const Tensor& g = params_[i].grad();
  Tensor& acc = accum_[i];
  ForEachRange(w, rows, [&](size_t base, size_t n) {
    simd::AdaGradRow(w.data() + base, acc.data() + base, g.data() + base, n,
                     lr_, eps_);
  });
}

Status AdaGrad::SaveSlots(std::ostream& out) const {
  return SaveTensorVec(out, accum_);
}

Status AdaGrad::LoadSlots(std::istream& in) {
  return LoadTensorVec(in, accum_, &accum_);
}

}  // namespace sttr::nn
