#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "tensor/simd.h"
#include "util/check.h"

namespace sttr::nn {

Optimizer::Optimizer(std::vector<ag::Variable> params)
    : params_(std::move(params)) {
  for (const auto& p : params_) {
    STTR_CHECK(p.defined());
    STTR_CHECK(p.requires_grad()) << "optimiser given a frozen parameter";
  }
}

void Optimizer::Step() {
  ++step_count_;
  for (size_t i = 0; i < params_.size(); ++i) {
    std::vector<int64_t> rows(params_[i].touched_rows());
    if (!rows.empty()) {
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    }
    Update(i, rows);
    // Clear gradient. For sparse parameters only the touched rows are dirty.
    params_[i].ZeroGradSparse();
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  STTR_CHECK_GT(max_norm, 0.0);
  double total = 0;
  for (const auto& p : params_) total += p.grad().SquaredL2Norm();
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) p.mutable_grad().ScaleInPlace(scale);
  }
  return norm;
}

namespace {

/// Applies `fn(offset)` to every scalar slot covered by the update: the rows
/// listed in `rows`, or the whole tensor when `rows` is empty.
template <typename Fn>
void ForEachSlot(const Tensor& t, const std::vector<int64_t>& rows, Fn fn) {
  if (rows.empty()) {
    for (size_t i = 0; i < t.size(); ++i) fn(i);
    return;
  }
  STTR_CHECK_EQ(t.ndim(), 2u) << "sparse rows require a 2-D parameter";
  const size_t cols = t.cols();
  for (int64_t r : rows) {
    const size_t base = static_cast<size_t>(r) * cols;
    for (size_t j = 0; j < cols; ++j) fn(base + j);
  }
}

/// Applies `fn(base_offset, count)` once per updated range: each touched row
/// when `rows` is non-empty, the whole tensor otherwise. This is the
/// row-contiguous form the SIMD kernels consume.
template <typename Fn>
void ForEachRange(const Tensor& t, const std::vector<int64_t>& rows, Fn fn) {
  if (rows.empty()) {
    fn(size_t{0}, t.size());
    return;
  }
  STTR_CHECK_EQ(t.ndim(), 2u) << "sparse rows require a 2-D parameter";
  const size_t cols = t.cols();
  for (int64_t r : rows) fn(static_cast<size_t>(r) * cols, cols);
}

}  // namespace

Sgd::Sgd(std::vector<ag::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  STTR_CHECK_GT(lr, 0.0f);
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p.value().shape());
  }
}

void Sgd::Update(size_t i, const std::vector<int64_t>& rows) {
  Tensor& w = params_[i].mutable_value();
  const Tensor& g = params_[i].grad();
  if (momentum_ > 0.0f) {
    Tensor& vel = velocity_[i];
    ForEachSlot(w, rows, [&](size_t s) {
      vel[s] = momentum_ * vel[s] + g[s];
      w[s] -= lr_ * vel[s];
    });
  } else {
    ForEachRange(w, rows, [&](size_t base, size_t n) {
      simd::SgdRow(w.data() + base, g.data() + base, n, lr_);
    });
  }
}

Adam::Adam(std::vector<ag::Variable> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  STTR_CHECK_GT(lr, 0.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::Update(size_t i, const std::vector<int64_t>& rows) {
  Tensor& w = params_[i].mutable_value();
  const Tensor& g = params_[i].grad();
  Tensor& m = m_[i];
  Tensor& v = v_[i];
  const double t = static_cast<double>(step_count());
  const float bc1 = static_cast<float>(1.0 - std::pow(beta1_, t));
  const float bc2 = static_cast<float>(1.0 - std::pow(beta2_, t));
  ForEachRange(w, rows, [&](size_t base, size_t n) {
    simd::AdamRow(w.data() + base, m.data() + base, v.data() + base,
                  g.data() + base, n, lr_, beta1_, beta2_, bc1, bc2, eps_);
  });
}

AdaGrad::AdaGrad(std::vector<ag::Variable> params, float lr, float eps)
    : Optimizer(std::move(params)), lr_(lr), eps_(eps) {
  STTR_CHECK_GT(lr, 0.0f);
  accum_.reserve(params_.size());
  for (const auto& p : params_) accum_.emplace_back(p.value().shape());
}

void AdaGrad::Update(size_t i, const std::vector<int64_t>& rows) {
  Tensor& w = params_[i].mutable_value();
  const Tensor& g = params_[i].grad();
  Tensor& acc = accum_[i];
  ForEachRange(w, rows, [&](size_t base, size_t n) {
    simd::AdaGradRow(w.data() + base, acc.data() + base, g.data() + base, n,
                     lr_, eps_);
  });
}

}  // namespace sttr::nn
