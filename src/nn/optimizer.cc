#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sttr::nn {

Optimizer::Optimizer(std::vector<ag::Variable> params)
    : params_(std::move(params)) {
  for (const auto& p : params_) {
    STTR_CHECK(p.defined());
    STTR_CHECK(p.requires_grad()) << "optimiser given a frozen parameter";
  }
}

void Optimizer::Step() {
  ++step_count_;
  for (size_t i = 0; i < params_.size(); ++i) {
    std::vector<int64_t> rows(params_[i].touched_rows());
    if (!rows.empty()) {
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    }
    Update(i, rows);
    // Clear gradient. For sparse parameters only the touched rows are dirty.
    if (!rows.empty()) {
      Tensor& g = params_[i].mutable_grad();
      const size_t cols = g.cols();
      for (int64_t r : rows) {
        float* row = g.row(static_cast<size_t>(r));
        for (size_t j = 0; j < cols; ++j) row[j] = 0.0f;
      }
      params_[i].node()->touched_rows.clear();
    } else {
      params_[i].ZeroGrad();
    }
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  STTR_CHECK_GT(max_norm, 0.0);
  double total = 0;
  for (const auto& p : params_) total += p.grad().SquaredL2Norm();
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) p.mutable_grad().ScaleInPlace(scale);
  }
  return norm;
}

namespace {

/// Applies `fn(offset)` to every scalar slot covered by the update: the rows
/// listed in `rows`, or the whole tensor when `rows` is empty.
template <typename Fn>
void ForEachSlot(const Tensor& t, const std::vector<int64_t>& rows, Fn fn) {
  if (rows.empty()) {
    for (size_t i = 0; i < t.size(); ++i) fn(i);
    return;
  }
  STTR_CHECK_EQ(t.ndim(), 2u) << "sparse rows require a 2-D parameter";
  const size_t cols = t.cols();
  for (int64_t r : rows) {
    const size_t base = static_cast<size_t>(r) * cols;
    for (size_t j = 0; j < cols; ++j) fn(base + j);
  }
}

}  // namespace

Sgd::Sgd(std::vector<ag::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  STTR_CHECK_GT(lr, 0.0f);
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p.value().shape());
  }
}

void Sgd::Update(size_t i, const std::vector<int64_t>& rows) {
  Tensor& w = params_[i].mutable_value();
  const Tensor& g = params_[i].grad();
  if (momentum_ > 0.0f) {
    Tensor& vel = velocity_[i];
    ForEachSlot(w, rows, [&](size_t s) {
      vel[s] = momentum_ * vel[s] + g[s];
      w[s] -= lr_ * vel[s];
    });
  } else {
    ForEachSlot(w, rows, [&](size_t s) { w[s] -= lr_ * g[s]; });
  }
}

Adam::Adam(std::vector<ag::Variable> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  STTR_CHECK_GT(lr, 0.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::Update(size_t i, const std::vector<int64_t>& rows) {
  Tensor& w = params_[i].mutable_value();
  const Tensor& g = params_[i].grad();
  Tensor& m = m_[i];
  Tensor& v = v_[i];
  const double t = static_cast<double>(step_count());
  const float bc1 = static_cast<float>(1.0 - std::pow(beta1_, t));
  const float bc2 = static_cast<float>(1.0 - std::pow(beta2_, t));
  ForEachSlot(w, rows, [&](size_t s) {
    m[s] = beta1_ * m[s] + (1.0f - beta1_) * g[s];
    v[s] = beta2_ * v[s] + (1.0f - beta2_) * g[s] * g[s];
    const float mhat = m[s] / bc1;
    const float vhat = v[s] / bc2;
    w[s] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  });
}

AdaGrad::AdaGrad(std::vector<ag::Variable> params, float lr, float eps)
    : Optimizer(std::move(params)), lr_(lr), eps_(eps) {
  STTR_CHECK_GT(lr, 0.0f);
  accum_.reserve(params_.size());
  for (const auto& p : params_) accum_.emplace_back(p.value().shape());
}

void AdaGrad::Update(size_t i, const std::vector<int64_t>& rows) {
  Tensor& w = params_[i].mutable_value();
  const Tensor& g = params_[i].grad();
  Tensor& acc = accum_[i];
  ForEachSlot(w, rows, [&](size_t s) {
    acc[s] += g[s] * g[s];
    w[s] -= lr_ * g[s] / (std::sqrt(acc[s]) + eps_);
  });
}

}  // namespace sttr::nn
