#include "text/vocabulary.h"

#include <cctype>

#include "util/check.h"

namespace sttr {

int64_t Vocabulary::Add(const std::string& word) {
  auto [it, inserted] = ids_.try_emplace(word, static_cast<int64_t>(words_.size()));
  if (inserted) {
    words_.push_back(word);
    counts_.push_back(0);
  }
  counts_[static_cast<size_t>(it->second)] += 1;
  return it->second;
}

int64_t Vocabulary::IdOf(const std::string& word) const {
  auto it = ids_.find(word);
  return it == ids_.end() ? -1 : it->second;
}

const std::string& Vocabulary::WordOf(int64_t id) const {
  STTR_CHECK_GE(id, 0);
  STTR_CHECK_LT(static_cast<size_t>(id), words_.size());
  return words_[static_cast<size_t>(id)];
}

size_t Vocabulary::CountOf(int64_t id) const {
  STTR_CHECK_GE(id, 0);
  STTR_CHECK_LT(static_cast<size_t>(id), counts_.size());
  return counts_[static_cast<size_t>(id)];
}

std::vector<size_t> Vocabulary::Counts() const { return counts_; }

std::vector<std::string> Tokenize(const std::string& text, size_t min_len) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      if (cur.size() >= min_len) out.push_back(cur);
      cur.clear();
    }
  }
  if (cur.size() >= min_len) out.push_back(cur);
  return out;
}

}  // namespace sttr
