#include "text/context_graph.h"

#include <cmath>

#include "util/check.h"

namespace sttr {

TextualContextGraph::TextualContextGraph(size_t num_pois, size_t num_words)
    : num_words_(num_words),
      poi_words_(num_pois),
      poi_word_sets_(num_pois),
      word_counts_(num_words, 0) {}

void TextualContextGraph::AddEdge(int64_t poi, int64_t word) {
  STTR_CHECK_GE(poi, 0);
  STTR_CHECK_LT(static_cast<size_t>(poi), poi_words_.size());
  STTR_CHECK_GE(word, 0);
  STTR_CHECK_LT(static_cast<size_t>(word), num_words_);
  word_counts_[static_cast<size_t>(word)] += 1;
  auto& set = poi_word_sets_[static_cast<size_t>(poi)];
  if (set.insert(word).second) {
    poi_words_[static_cast<size_t>(poi)].push_back(word);
    edge_pois_.push_back(poi);
    edge_words_.push_back(word);
  }
}

const std::vector<int64_t>& TextualContextGraph::WordsOf(int64_t poi) const {
  STTR_CHECK_GE(poi, 0);
  STTR_CHECK_LT(static_cast<size_t>(poi), poi_words_.size());
  return poi_words_[static_cast<size_t>(poi)];
}

bool TextualContextGraph::HasEdge(int64_t poi, int64_t word) const {
  STTR_CHECK_GE(poi, 0);
  STTR_CHECK_LT(static_cast<size_t>(poi), poi_words_.size());
  return poi_word_sets_[static_cast<size_t>(poi)].count(word) > 0;
}

double TextualContextGraph::MeanPoiDegree() const {
  if (poi_words_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& w : poi_words_) total += w.size();
  return static_cast<double>(total) / static_cast<double>(poi_words_.size());
}

UnigramNegativeSampler::UnigramNegativeSampler(
    const std::vector<size_t>& counts, double power) {
  STTR_CHECK(!counts.empty());
  std::vector<double> weights(counts.size());
  double total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    weights[i] = std::pow(static_cast<double>(counts[i]), power);
    total += weights[i];
  }
  STTR_CHECK_GT(total, 0.0) << "no word has a positive count";
  alias_ = AliasTable(weights);
}

int64_t UnigramNegativeSampler::Sample(Rng& rng) const {
  return static_cast<int64_t>(alias_.Sample(rng));
}

int64_t UnigramNegativeSampler::SampleNegativeFor(
    const TextualContextGraph& graph, int64_t poi, Rng& rng) const {
  constexpr int kMaxRetries = 32;
  int64_t w = Sample(rng);
  for (int tries = 0; tries < kMaxRetries && graph.HasEdge(poi, w); ++tries) {
    w = Sample(rng);
  }
  return w;
}

}  // namespace sttr
