#ifndef STTR_TEXT_VOCABULARY_H_
#define STTR_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sttr {

/// Bidirectional word <-> id map with occurrence counts. Ids are dense and
/// assigned in first-seen order; the id space is shared across cities (this
/// is what lets words bridge source and target POIs).
class Vocabulary {
 public:
  /// Interns `word`, bumping its count; returns its id.
  int64_t Add(const std::string& word);

  /// Id of `word`, or -1 if absent (does not intern).
  int64_t IdOf(const std::string& word) const;

  /// Precondition: 0 <= id < size().
  const std::string& WordOf(int64_t id) const;

  /// Occurrence count accumulated by Add().
  size_t CountOf(int64_t id) const;

  /// Per-id counts, indexable by word id.
  std::vector<size_t> Counts() const;

  size_t size() const { return words_.size(); }

 private:
  std::unordered_map<std::string, int64_t> ids_;
  std::vector<std::string> words_;
  std::vector<size_t> counts_;
};

/// Lower-cases and splits free text on non-alphanumeric characters,
/// dropping tokens shorter than `min_len`.
std::vector<std::string> Tokenize(const std::string& text, size_t min_len = 2);

}  // namespace sttr

#endif  // STTR_TEXT_VOCABULARY_H_
