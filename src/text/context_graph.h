#ifndef STTR_TEXT_CONTEXT_GRAPH_H_
#define STTR_TEXT_CONTEXT_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace sttr {

/// The textual context graph G_vw of Definition 2: a bipartite graph whose
/// nodes are POIs and words, with an edge for every word appearing in a
/// POI's textual descriptions. Duplicate (poi, word) pairs collapse to one
/// edge but weights (occurrence counts) are retained for sampling.
class TextualContextGraph {
 public:
  /// `num_pois` / `num_words` fix the id spaces.
  TextualContextGraph(size_t num_pois, size_t num_words);

  /// Adds (or re-weights) the edge poi -> word.
  void AddEdge(int64_t poi, int64_t word);

  /// Word context W_v of a POI (unique word ids, insertion order).
  const std::vector<int64_t>& WordsOf(int64_t poi) const;

  /// True if `word` is a positive context of `poi`.
  bool HasEdge(int64_t poi, int64_t word) const;

  /// All unique edges as parallel (poi, word) arrays.
  const std::vector<int64_t>& edge_pois() const { return edge_pois_; }
  const std::vector<int64_t>& edge_words() const { return edge_words_; }

  size_t num_edges() const { return edge_pois_.size(); }
  size_t num_pois() const { return poi_words_.size(); }
  size_t num_words() const { return num_words_; }

  /// Word occurrence totals over all edges (with multiplicity).
  const std::vector<size_t>& word_counts() const { return word_counts_; }

  /// Mean number of distinct words per POI (the paper's context degree n).
  double MeanPoiDegree() const;

 private:
  size_t num_words_;
  std::vector<std::vector<int64_t>> poi_words_;
  std::vector<std::unordered_set<int64_t>> poi_word_sets_;
  std::vector<int64_t> edge_pois_;
  std::vector<int64_t> edge_words_;
  std::vector<size_t> word_counts_;
};

/// Word2vec-style negative sampler over the word id space: draws from the
/// unigram distribution raised to `power` (0.75 in Mikolov et al.).
class UnigramNegativeSampler {
 public:
  /// `counts` indexed by word id; words with zero count are never drawn.
  explicit UnigramNegativeSampler(const std::vector<size_t>& counts,
                                  double power = 0.75);

  /// Draws one word id.
  int64_t Sample(Rng& rng) const;

  /// Draws a word id that is NOT a positive context of `poi` in `graph`
  /// (the paper's w' not in W_v), with bounded retries before giving up and
  /// returning an arbitrary draw (degenerate vocabularies).
  int64_t SampleNegativeFor(const TextualContextGraph& graph, int64_t poi,
                            Rng& rng) const;

 private:
  AliasTable alias_;
};

}  // namespace sttr

#endif  // STTR_TEXT_CONTEXT_GRAPH_H_
