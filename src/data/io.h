#ifndef STTR_DATA_IO_H_
#define STTR_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace sttr {

/// On-disk interchange format for check-in datasets: a directory of four
/// TSV files, designed so real Foursquare/Yelp-style dumps can be converted
/// with a few lines of scripting.
///
///   cities.tsv    city_id \t name \t min_lat \t max_lat \t min_lon \t max_lon
///   users.tsv     user_id \t home_city
///   pois.tsv      poi_id \t city_id \t lat \t lon \t words (space-separated)
///   checkins.tsv  user_id \t poi_id \t time
///
/// Ids must be dense and 0-based (the loader validates). Lines starting
/// with '#' are comments. The vocabulary is derived from pois.tsv, so word
/// ids are assigned in first-seen order; vocabulary entries never used by
/// any POI are not representable (a save/load round trip drops them and
/// re-numbers word ids, while every POI's word *strings* are preserved).
/// Consequently load(save(load(x))) == load(x): the format is a fixpoint
/// after one round trip.
struct DatasetPaths {
  std::string cities;
  std::string users;
  std::string pois;
  std::string checkins;

  /// The four conventional file names under `dir`.
  static DatasetPaths InDirectory(const std::string& dir);
};

/// Writes `dataset` in the interchange format. Creates/overwrites files;
/// the caller is responsible for the directory existing.
Status SaveDataset(const Dataset& dataset, const DatasetPaths& paths);

/// Loads a dataset written by SaveDataset (or hand-converted data).
/// Returns the dataset with indexes built.
StatusOr<Dataset> LoadDataset(const DatasetPaths& paths);

}  // namespace sttr

#endif  // STTR_DATA_IO_H_
