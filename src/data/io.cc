#include "data/io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace sttr {

namespace {

/// Parses one data line into tab-separated fields; empty and '#' lines are
/// skipped by the caller.
std::vector<std::string> Fields(const std::string& line) {
  return Split(line, '\t');
}

Status ParseError(const std::string& file, size_t lineno,
                  const std::string& what) {
  return Status::InvalidArgument(file + ":" + std::to_string(lineno) + ": " +
                                 what);
}

/// Reads all data lines of `path`, invoking `fn(fields, lineno)`.
template <typename Fn>
Status ForEachLine(const std::string& path, Fn fn) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    STTR_RETURN_IF_ERROR(fn(Fields(line), lineno));
  }
  return Status::OK();
}

StatusOr<double> ToDouble(const std::string& s, const std::string& file,
                          size_t lineno) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return ParseError(file, lineno, "not a number: '" + s + "'");
  }
  return v;
}

StatusOr<int64_t> ToInt(const std::string& s, const std::string& file,
                        size_t lineno) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return ParseError(file, lineno, "not an integer: '" + s + "'");
  }
  return static_cast<int64_t>(v);
}

/// Rejects NaN/inf and physically impossible latitudes/longitudes; a corrupt
/// coordinate would otherwise poison the grid index and every Haversine
/// distance downstream.
Status CheckLatLon(double lat, double lon, const std::string& file,
                   size_t lineno) {
  if (!std::isfinite(lat) || !std::isfinite(lon)) {
    return ParseError(file, lineno, "non-finite coordinate");
  }
  if (lat < -90.0 || lat > 90.0) {
    return ParseError(file, lineno,
                      "latitude out of range [-90, 90]: " +
                          std::to_string(lat));
  }
  if (lon < -180.0 || lon > 180.0) {
    return ParseError(file, lineno,
                      "longitude out of range [-180, 180]: " +
                          std::to_string(lon));
  }
  return Status::OK();
}

}  // namespace

DatasetPaths DatasetPaths::InDirectory(const std::string& dir) {
  return DatasetPaths{dir + "/cities.tsv", dir + "/users.tsv",
                      dir + "/pois.tsv", dir + "/checkins.tsv"};
}

Status SaveDataset(const Dataset& dataset, const DatasetPaths& paths) {
  {
    std::ofstream out(paths.cities);
    if (!out) return Status::IOError("cannot open " + paths.cities);
    out << "# city_id\tname\tmin_lat\tmax_lat\tmin_lon\tmax_lon\n";
    for (const City& c : dataset.cities()) {
      out << c.id << '\t' << c.name << '\t' << c.box.min_lat << '\t'
          << c.box.max_lat << '\t' << c.box.min_lon << '\t' << c.box.max_lon
          << '\n';
    }
    if (!out) return Status::IOError("write failed: " + paths.cities);
  }
  {
    std::ofstream out(paths.users);
    if (!out) return Status::IOError("cannot open " + paths.users);
    out << "# user_id\thome_city\n";
    for (const User& u : dataset.users()) {
      out << u.id << '\t' << u.home_city << '\n';
    }
    if (!out) return Status::IOError("write failed: " + paths.users);
  }
  {
    std::ofstream out(paths.pois);
    if (!out) return Status::IOError("cannot open " + paths.pois);
    out << "# poi_id\tcity_id\tlat\tlon\twords\n";
    out.precision(10);
    for (const Poi& p : dataset.pois()) {
      out << p.id << '\t' << p.city << '\t' << p.location.lat << '\t'
          << p.location.lon << '\t';
      for (size_t i = 0; i < p.words.size(); ++i) {
        if (i > 0) out << ' ';
        out << dataset.vocabulary().WordOf(p.words[i]);
      }
      out << '\n';
    }
    if (!out) return Status::IOError("write failed: " + paths.pois);
  }
  {
    std::ofstream out(paths.checkins);
    if (!out) return Status::IOError("cannot open " + paths.checkins);
    out << "# user_id\tpoi_id\ttime\n";
    for (const CheckinRecord& r : dataset.checkins()) {
      out << r.user << '\t' << r.poi << '\t' << r.time << '\n';
    }
    if (!out) return Status::IOError("write failed: " + paths.checkins);
  }
  return Status::OK();
}

StatusOr<Dataset> LoadDataset(const DatasetPaths& paths) {
  Dataset ds;

  STTR_RETURN_IF_ERROR(ForEachLine(
      paths.cities, [&](const std::vector<std::string>& f, size_t n) {
        if (f.size() != 6) {
          return ParseError(paths.cities, n, "expected 6 fields");
        }
        auto id = ToInt(f[0], paths.cities, n);
        if (!id.ok()) return id.status();
        City city;
        city.id = static_cast<CityId>(*id);
        city.name = f[1];
        double vals[4];
        for (int i = 0; i < 4; ++i) {
          auto v = ToDouble(f[static_cast<size_t>(i) + 2], paths.cities, n);
          if (!v.ok()) return v.status();
          vals[i] = *v;
        }
        // Manual checks: STTR_RETURN_IF_ERROR would shadow the enclosing
        // macro's local inside this lambda.
        if (Status s = CheckLatLon(vals[0], vals[2], paths.cities, n); !s.ok())
          return s;
        if (Status s = CheckLatLon(vals[1], vals[3], paths.cities, n); !s.ok())
          return s;
        if (vals[0] > vals[1] || vals[2] > vals[3]) {
          return ParseError(paths.cities, n, "inverted bounding box");
        }
        city.box = BoundingBox{vals[0], vals[1], vals[2], vals[3]};
        if (static_cast<size_t>(city.id) != ds.num_cities()) {
          return ParseError(paths.cities, n, "city ids must be dense");
        }
        ds.AddCity(std::move(city));
        return Status::OK();
      }));

  STTR_RETURN_IF_ERROR(ForEachLine(
      paths.users, [&](const std::vector<std::string>& f, size_t n) {
        if (f.size() != 2) {
          return ParseError(paths.users, n, "expected 2 fields");
        }
        auto id = ToInt(f[0], paths.users, n);
        if (!id.ok()) return id.status();
        auto home = ToInt(f[1], paths.users, n);
        if (!home.ok()) return home.status();
        if (static_cast<size_t>(*id) != ds.num_users()) {
          return ParseError(paths.users, n, "user ids must be dense");
        }
        if (*home < 0 || static_cast<size_t>(*home) >= ds.num_cities()) {
          return ParseError(paths.users, n, "home_city out of range");
        }
        ds.AddUser(User{*id, static_cast<CityId>(*home)});
        return Status::OK();
      }));

  STTR_RETURN_IF_ERROR(ForEachLine(
      paths.pois, [&](const std::vector<std::string>& f, size_t n) {
        if (f.size() != 5) {
          return ParseError(paths.pois, n, "expected 5 fields");
        }
        auto id = ToInt(f[0], paths.pois, n);
        if (!id.ok()) return id.status();
        auto city = ToInt(f[1], paths.pois, n);
        if (!city.ok()) return city.status();
        auto lat = ToDouble(f[2], paths.pois, n);
        if (!lat.ok()) return lat.status();
        auto lon = ToDouble(f[3], paths.pois, n);
        if (!lon.ok()) return lon.status();
        if (Status s = CheckLatLon(*lat, *lon, paths.pois, n); !s.ok())
          return s;
        if (static_cast<size_t>(*id) != ds.num_pois()) {
          return ParseError(paths.pois, n, "poi ids must be dense");
        }
        if (*city < 0 || static_cast<size_t>(*city) >= ds.num_cities()) {
          return ParseError(paths.pois, n, "city_id out of range");
        }
        Poi poi;
        poi.id = *id;
        poi.city = static_cast<CityId>(*city);
        poi.location = GeoPoint{*lat, *lon};
        for (const std::string& w : SplitWhitespace(f[4])) {
          poi.words.push_back(ds.mutable_vocabulary().Add(w));
        }
        ds.AddPoi(std::move(poi));
        return Status::OK();
      }));

  STTR_RETURN_IF_ERROR(ForEachLine(
      paths.checkins, [&](const std::vector<std::string>& f, size_t n) {
        if (f.size() != 3) {
          return ParseError(paths.checkins, n, "expected 3 fields");
        }
        auto user = ToInt(f[0], paths.checkins, n);
        if (!user.ok()) return user.status();
        auto poi = ToInt(f[1], paths.checkins, n);
        if (!poi.ok()) return poi.status();
        auto time = ToDouble(f[2], paths.checkins, n);
        if (!time.ok()) return time.status();
        if (*user < 0 || static_cast<size_t>(*user) >= ds.num_users()) {
          return ParseError(paths.checkins, n, "user_id out of range");
        }
        if (*poi < 0 || static_cast<size_t>(*poi) >= ds.num_pois()) {
          return ParseError(paths.checkins, n, "poi_id out of range");
        }
        ds.AddCheckin(CheckinRecord{*user, *poi,
                                    ds.poi(*poi).city, *time});
        return Status::OK();
      }));

  ds.BuildIndexes();
  return ds;
}

}  // namespace sttr
