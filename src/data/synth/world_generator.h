#ifndef STTR_DATA_SYNTH_WORLD_GENERATOR_H_
#define STTR_DATA_SYNTH_WORLD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace sttr::synth {

/// Preset sizes. kTiny is for unit tests, kSmall runs the full benchmark
/// suite on a one-core container in minutes, kPaper approximates the row
/// counts of the paper's Table 1 (slow to train on; generation is cheap).
enum class Scale { kTiny, kSmall, kPaper };

/// Parses "tiny" | "small" | "paper" (case-insensitive); defaults to kSmall.
Scale ParseScale(const std::string& s);

/// Per-city knobs of the generative world model.
struct SynthCityConfig {
  std::string name;
  size_t num_pois = 400;
  size_t num_local_users = 200;
  size_t num_downtown_centers = 3;
  /// Fraction of POIs clustered around downtown centres (the paper's
  /// "transportation convenient regions"); the rest are marginal.
  double downtown_poi_frac = 0.55;
  /// Topics over-represented in this city (behaviour-drift knob: Vegas gets
  /// casinos, Boston gets colleges).
  std::vector<size_t> signature_topics;
};

/// Full configuration of the synthetic check-in world. The defaults encode
/// the paper's three data pathologies:
///  * sparsity  - crossing users leave only 2-6 target check-ins;
///  * drift     - city-dependent landmark words + per-city topic profiles;
///  * imbalance - downtown POIs get `accessibility_boost` more traffic.
struct SynthWorldConfig {
  std::vector<SynthCityConfig> cities;
  CityId target_city = 0;
  size_t num_crossing_users = 60;

  size_t topic_words_per_poi = 4;
  size_t city_words_per_poi = 2;
  size_t landmark_words_per_city = 24;

  /// Dirichlet concentration of user interests (small -> focused users).
  double user_topic_alpha = 0.25;
  size_t min_user_checkins = 15;
  size_t max_user_checkins = 45;
  size_t min_crossing_target_checkins = 2;
  size_t max_crossing_target_checkins = 6;

  /// Multiplier on check-in probability for downtown POIs.
  double accessibility_boost = 4.0;
  /// Log-normal sigma of intrinsic POI attraction.
  double attraction_sigma = 0.6;
  /// Spatial locality of a user's movements (degrees).
  double travel_sigma_deg = 0.08;
  double city_span_deg = 0.4;
  double downtown_sigma_deg = 0.02;

  uint64_t seed = 42;

  /// Four-city world (target: los_angeles) echoing the Foursquare setup.
  static SynthWorldConfig FoursquareLike(Scale scale);

  /// Two-city world (phoenix -> las_vegas) echoing the Yelp setup.
  static SynthWorldConfig YelpLike(Scale scale);
};

/// Hidden variables of the generator, kept out of Dataset so models cannot
/// cheat; tests use them to assert that learning recovers structure.
struct WorldGroundTruth {
  std::vector<size_t> poi_topic;                    ///< per PoiId
  std::vector<bool> poi_downtown;                   ///< per PoiId
  std::vector<double> poi_attraction;               ///< per PoiId
  std::vector<std::vector<double>> user_topic_prefs;  ///< per UserId
};

/// A generated world: the observable dataset plus the generator's latents.
struct SynthWorld {
  Dataset dataset;
  WorldGroundTruth truth;
  SynthWorldConfig config;
};

/// Runs the generative process (deterministic in config.seed).
SynthWorld GenerateWorld(const SynthWorldConfig& config);

}  // namespace sttr::synth

#endif  // STTR_DATA_SYNTH_WORLD_GENERATOR_H_
