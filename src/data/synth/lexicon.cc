#include "data/synth/lexicon.h"

namespace sttr::synth {

const std::vector<Topic>& TopicLexicon() {
  static const std::vector<Topic>* kTopics = new std::vector<Topic>{
      {"outdoors",
       {"park", "scenic", "views", "trail", "hiking", "garden", "picnic",
        "nature", "lake", "sunset", "tours", "wildlife"}},
      {"art",
       {"museum", "gallery", "exhibit", "sculpture", "paintings", "historic",
        "culture", "artwalk", "installation", "curator", "mural", "antique"}},
      {"nightlife",
       {"bar", "club", "cocktails", "dancing", "nightlife", "lounge",
        "drinks", "rooftop", "karaoke", "bouncer", "neon", "afterparty"}},
      {"italian_food",
       {"italian", "pizza", "pasta", "bakery", "trattoria", "wine",
        "risotto", "gelato", "cannoli", "portobello", "bruschetta",
        "tiramisu"}},
      {"asian_food",
       {"thai", "sushi", "noodles", "ramen", "spicy", "dumplings", "curry",
        "pho", "wok", "tempura", "padthai", "lemongrass"}},
      {"shopping",
       {"mall", "shopping", "boutique", "fashion", "outlet", "souvenirs",
        "market", "deals", "brands", "accessories", "window", "arcade"}},
      {"music",
       {"concert", "music", "stage", "blues", "jazz", "band", "vinyl",
        "acoustic", "festival", "rock", "encore", "orchestra"}},
      {"sports",
       {"stadium", "arena", "game", "basketball", "baseball", "fans",
        "tailgate", "jersey", "court", "field", "playoffs", "scoreboard"}},
      {"beach",
       {"beach", "surf", "boardwalk", "waves", "sand", "pier", "volleyball",
        "ocean", "breeze", "tide", "lifeguard", "seashell"}},
      {"casino",
       {"casino", "slots", "poker", "blackjack", "jackpot", "chips",
        "betting", "roulette", "highroller", "dealer", "craps", "bellhop"}},
      {"cinema",
       {"cinema", "movies", "multiplex", "popcorn", "premiere", "screening",
        "matinee", "imax", "film", "tickets", "trailer", "caramel"}},
      {"coffee",
       {"coffee", "latte", "brew", "roastery", "pastry", "croissant", "wifi",
        "cozy", "mocha", "beans", "barista", "espresso"}},
      {"education",
       {"college", "campus", "library", "lecture", "books", "study",
        "professors", "quad", "seminar", "research", "dormitory",
        "graduation"}},
  };
  return *kTopics;
}

std::vector<std::string> CityLandmarkWords(const std::string& city_name,
                                           size_t count) {
  static const char* kLandmarks[] = {
      "boulevard", "bridge",   "tower",    "plaza",   "harbor",  "canyon",
      "palace",    "fountain", "district", "heights", "gardens", "terminal",
      "junction",  "square",   "strip",    "bay",     "summit",  "crossing",
      "grove",     "landing",  "quarter",  "yards",   "wharf",   "promenade"};
  constexpr size_t kNumLandmarks = sizeof(kLandmarks) / sizeof(kLandmarks[0]);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string w = city_name + "_" + kLandmarks[i % kNumLandmarks];
    if (i >= kNumLandmarks) w += "_" + std::to_string(i / kNumLandmarks);
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace sttr::synth
