#include "data/synth/world_generator.h"

#include <algorithm>
#include <cmath>

#include "data/synth/lexicon.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace sttr::synth {

namespace {

/// Scales a base count by the preset.
size_t Scaled(Scale scale, size_t tiny, size_t small, size_t paper) {
  switch (scale) {
    case Scale::kTiny:
      return tiny;
    case Scale::kSmall:
      return small;
    case Scale::kPaper:
      return paper;
  }
  return small;
}

struct CityLatents {
  BoundingBox box;
  std::vector<GeoPoint> downtown_centers;
  std::vector<double> topic_profile;
  std::vector<WordId> landmark_word_ids;
};

GeoPoint ClampToBox(GeoPoint p, const BoundingBox& box) {
  p.lat = std::clamp(p.lat, box.min_lat, box.max_lat);
  p.lon = std::clamp(p.lon, box.min_lon, box.max_lon);
  return p;
}

/// Squared planar distance in degrees (cities are small; no need for
/// great-circle precision inside the generator).
double SquaredDeg(const GeoPoint& a, const GeoPoint& b) {
  const double dlat = a.lat - b.lat;
  const double dlon = a.lon - b.lon;
  return dlat * dlat + dlon * dlon;
}

}  // namespace

Scale ParseScale(const std::string& s) {
  const std::string v = ToLower(s);
  if (v == "tiny") return Scale::kTiny;
  if (v == "paper") return Scale::kPaper;
  return Scale::kSmall;
}

SynthWorldConfig SynthWorldConfig::FoursquareLike(Scale scale) {
  SynthWorldConfig cfg;
  cfg.seed = 2023;
  // Target first; signature topics make the city topic mixes drift.
  cfg.cities = {
      {"los_angeles", Scaled(scale, 80, 520, 9000),
       Scaled(scale, 30, 240, 1100), 3, 0.55, {10, 8, 1}},   // cinema/beach/art
      {"new_york", Scaled(scale, 70, 450, 9000),
       Scaled(scale, 25, 220, 1000), 4, 0.60, {1, 6, 3}},    // art/music/italian
      {"chicago", Scaled(scale, 0, 360, 7000), Scaled(scale, 0, 170, 800), 3,
       0.55, {7, 3, 6}},                                     // sports/italian
      {"seattle", Scaled(scale, 0, 300, 6800), Scaled(scale, 0, 140, 700), 2,
       0.50, {11, 0, 4}},                                    // coffee/outdoors
  };
  if (scale == Scale::kTiny) cfg.cities.resize(2);
  cfg.target_city = 0;
  cfg.num_crossing_users = Scaled(scale, 10, 70, 732);
  if (scale == Scale::kPaper) {
    // Match the real dataset's ~44 check-ins/user (Table 1: 191,515 over
    // 3,600 users); the smaller presets keep lighter users for speed.
    cfg.min_user_checkins = 30;
    cfg.max_user_checkins = 60;
  }
  return cfg;
}

SynthWorldConfig SynthWorldConfig::YelpLike(Scale scale) {
  SynthWorldConfig cfg;
  cfg.seed = 4242;
  cfg.cities = {
      {"las_vegas", Scaled(scale, 80, 420, 3600),
       Scaled(scale, 30, 220, 4900), 2, 0.70, {9, 2, 6}},    // casino/nightlife
      {"phoenix", Scaled(scale, 70, 360, 3300),
       Scaled(scale, 25, 200, 3900), 3, 0.50, {0, 4, 7}},    // outdoors/asian
  };
  cfg.target_city = 0;
  cfg.num_crossing_users = Scaled(scale, 10, 90, 983);
  // Yelp's discrepancy between cities is larger (the paper notes content
  // methods degrade there): more city-dependent words per POI.
  cfg.city_words_per_poi = 3;
  cfg.min_crossing_target_checkins = 3;
  cfg.max_crossing_target_checkins = 8;
  if (scale == Scale::kPaper) {
    // Real Yelp: ~44 check-ins/user (433,305 over 9,805 users).
    cfg.min_user_checkins = 30;
    cfg.max_user_checkins = 60;
  }
  return cfg;
}

SynthWorld GenerateWorld(const SynthWorldConfig& config) {
  STTR_CHECK(!config.cities.empty());
  STTR_CHECK_LT(static_cast<size_t>(config.target_city),
                config.cities.size());
  STTR_CHECK_GE(config.cities.size(), 2u)
      << "need at least one source and one target city";
  STTR_CHECK_LE(config.min_user_checkins, config.max_user_checkins);
  STTR_CHECK_LE(config.min_crossing_target_checkins,
                config.max_crossing_target_checkins);

  Rng rng(config.seed);
  SynthWorld world;
  world.config = config;
  Dataset& ds = world.dataset;
  const auto& topics = TopicLexicon();
  const size_t num_topics = topics.size();

  // ---- Vocabulary: shared topic words, then per-city landmark words. ------
  std::vector<std::vector<WordId>> topic_word_ids(num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    for (const std::string& w : topics[t].words) {
      topic_word_ids[t].push_back(ds.mutable_vocabulary().Add(w));
    }
  }

  // ---- Cities with disjoint bounding boxes and drifting topic profiles. ---
  std::vector<CityLatents> latents(config.cities.size());
  for (size_t c = 0; c < config.cities.size(); ++c) {
    const SynthCityConfig& cc = config.cities[c];
    City city;
    city.id = static_cast<CityId>(c);
    city.name = cc.name;
    const double lat0 = 30.0 + 2.0 * static_cast<double>(c);
    const double lon0 = -120.0 + 3.0 * static_cast<double>(c);
    city.box = BoundingBox{lat0, lat0 + config.city_span_deg, lon0,
                           lon0 + config.city_span_deg};
    ds.AddCity(city);

    CityLatents& lat = latents[c];
    lat.box = city.box;
    for (size_t k = 0; k < cc.num_downtown_centers; ++k) {
      lat.downtown_centers.push_back(GeoPoint{
          rng.Uniform(city.box.min_lat + 0.2 * config.city_span_deg,
                      city.box.max_lat - 0.2 * config.city_span_deg),
          rng.Uniform(city.box.min_lon + 0.2 * config.city_span_deg,
                      city.box.max_lon - 0.2 * config.city_span_deg)});
    }
    lat.topic_profile = rng.Dirichlet(1.0, num_topics);
    for (size_t t : cc.signature_topics) {
      STTR_CHECK_LT(t, num_topics);
      lat.topic_profile[t] *= 6.0;
    }
    double sum = 0;
    for (double p : lat.topic_profile) sum += p;
    for (double& p : lat.topic_profile) p /= sum;

    for (const std::string& w :
         CityLandmarkWords(cc.name, config.landmark_words_per_city)) {
      lat.landmark_word_ids.push_back(ds.mutable_vocabulary().Add(w));
    }
  }

  // ---- POIs. ----------------------------------------------------------------
  for (size_t c = 0; c < config.cities.size(); ++c) {
    const SynthCityConfig& cc = config.cities[c];
    CityLatents& lat = latents[c];
    for (size_t i = 0; i < cc.num_pois; ++i) {
      Poi poi;
      poi.id = static_cast<PoiId>(ds.num_pois());
      poi.city = static_cast<CityId>(c);
      const bool downtown = rng.Bernoulli(cc.downtown_poi_frac);
      if (downtown) {
        const GeoPoint& ctr =
            lat.downtown_centers[rng.UniformInt(lat.downtown_centers.size())];
        poi.location = ClampToBox(
            GeoPoint{rng.Normal(ctr.lat, config.downtown_sigma_deg),
                     rng.Normal(ctr.lon, config.downtown_sigma_deg)},
            lat.box);
      } else {
        poi.location = GeoPoint{rng.Uniform(lat.box.min_lat, lat.box.max_lat),
                                rng.Uniform(lat.box.min_lon, lat.box.max_lon)};
      }
      const size_t topic = rng.Discrete(lat.topic_profile);
      const size_t n_topic_words =
          std::min(config.topic_words_per_poi, topic_word_ids[topic].size());
      for (size_t k :
           rng.SampleWithoutReplacement(topic_word_ids[topic].size(),
                                        n_topic_words)) {
        poi.words.push_back(topic_word_ids[topic][k]);
      }
      const size_t n_city_words =
          std::min(config.city_words_per_poi, lat.landmark_word_ids.size());
      for (size_t k : rng.SampleWithoutReplacement(
               lat.landmark_word_ids.size(), n_city_words)) {
        poi.words.push_back(lat.landmark_word_ids[k]);
      }
      ds.AddPoi(std::move(poi));
      world.truth.poi_topic.push_back(topic);
      world.truth.poi_downtown.push_back(downtown);
      world.truth.poi_attraction.push_back(
          std::exp(rng.Normal(0.0, config.attraction_sigma)));
    }
  }
  ds.BuildIndexes();  // city -> POIs index needed below

  // ---- Users and check-ins. ---------------------------------------------------
  double time = 0.0;
  auto sample_anchor = [&](size_t c) {
    const CityLatents& lat = latents[c];
    if (!lat.downtown_centers.empty() && rng.Bernoulli(0.7)) {
      const GeoPoint& ctr =
          lat.downtown_centers[rng.UniformInt(lat.downtown_centers.size())];
      return ClampToBox(
          GeoPoint{rng.Normal(ctr.lat, 2.0 * config.downtown_sigma_deg),
                   rng.Normal(ctr.lon, 2.0 * config.downtown_sigma_deg)},
          lat.box);
    }
    return GeoPoint{rng.Uniform(lat.box.min_lat, lat.box.max_lat),
                    rng.Uniform(lat.box.min_lon, lat.box.max_lon)};
  };

  // Emits `count` check-ins for `user` inside city `c`, mixing the user's
  // latent interests with POI attraction, downtown accessibility and
  // spatial locality around `anchor`.
  auto emit_checkins = [&](UserId user, size_t c, const GeoPoint& anchor,
                           const std::vector<double>& prefs, size_t count) {
    const auto& city_pois = ds.PoisInCity(static_cast<CityId>(c));
    if (city_pois.empty() || count == 0) return;
    std::vector<double> weights(city_pois.size());
    const double two_sigma2 =
        2.0 * config.travel_sigma_deg * config.travel_sigma_deg;
    for (size_t i = 0; i < city_pois.size(); ++i) {
      const PoiId v = city_pois[i];
      const size_t topic = world.truth.poi_topic[static_cast<size_t>(v)];
      double w = (prefs[topic] + 1e-4) *
                 world.truth.poi_attraction[static_cast<size_t>(v)];
      if (world.truth.poi_downtown[static_cast<size_t>(v)]) {
        w *= config.accessibility_boost;
      }
      w *= std::exp(-SquaredDeg(ds.poi(v).location, anchor) / two_sigma2);
      weights[i] = w;
    }
    AliasTable table(weights);
    for (size_t k = 0; k < count; ++k) {
      const PoiId v = city_pois[table.Sample(rng)];
      ds.AddCheckin(CheckinRecord{user, v, static_cast<CityId>(c), time});
      time += 1.0;
    }
  };

  auto add_user = [&](size_t home) {
    User u;
    u.id = static_cast<UserId>(ds.num_users());
    u.home_city = static_cast<CityId>(home);
    ds.AddUser(u);
    world.truth.user_topic_prefs.push_back(
        rng.Dirichlet(config.user_topic_alpha, num_topics));
    return u.id;
  };

  // Locals.
  for (size_t c = 0; c < config.cities.size(); ++c) {
    for (size_t i = 0; i < config.cities[c].num_local_users; ++i) {
      const UserId uid = add_user(c);
      const size_t n = static_cast<size_t>(rng.UniformInt(
          static_cast<int64_t>(config.min_user_checkins),
          static_cast<int64_t>(config.max_user_checkins) + 1));
      emit_checkins(uid, c, sample_anchor(c),
                    world.truth.user_topic_prefs.back(), n);
    }
  }

  // Crossing users: home in a source city, a handful of target check-ins.
  std::vector<size_t> source_cities;
  for (size_t c = 0; c < config.cities.size(); ++c) {
    if (static_cast<CityId>(c) != config.target_city) source_cities.push_back(c);
  }
  for (size_t i = 0; i < config.num_crossing_users; ++i) {
    const size_t home = source_cities[i % source_cities.size()];
    const UserId uid = add_user(home);
    const auto& prefs = world.truth.user_topic_prefs.back();
    const size_t n_home = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(config.min_user_checkins),
        static_cast<int64_t>(config.max_user_checkins) + 1));
    emit_checkins(uid, home, sample_anchor(home), prefs, n_home);
    const size_t n_target = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(config.min_crossing_target_checkins),
        static_cast<int64_t>(config.max_crossing_target_checkins) + 1));
    // Travellers anchor near downtown (the accessible part of a new city).
    emit_checkins(uid, static_cast<size_t>(config.target_city),
                  sample_anchor(static_cast<size_t>(config.target_city)),
                  prefs, n_target);
  }

  ds.BuildIndexes();
  return world;
}

}  // namespace sttr::synth
