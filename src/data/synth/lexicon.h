#ifndef STTR_DATA_SYNTH_LEXICON_H_
#define STTR_DATA_SYNTH_LEXICON_H_

#include <string>
#include <vector>

namespace sttr::synth {

/// One latent interest topic with a human-readable name and its
/// city-independent word list (disjoint across topics so the latent signal
/// is identifiable; mirrors Fig. 1a's "city-independent words").
struct Topic {
  std::string name;
  std::vector<std::string> words;
};

/// The built-in topic lexicon (13 topics, ~12 words each). Readable words
/// make the Table 3 case study meaningful.
const std::vector<Topic>& TopicLexicon();

/// City-dependent landmark words for a city, e.g. "los_angeles_boulevard".
/// These play the role of "golden gate bridge" / "hollywood sign" in
/// Fig. 1a: words that appear only in one city and poison naive matching.
std::vector<std::string> CityLandmarkWords(const std::string& city_name,
                                           size_t count);

}  // namespace sttr::synth

#endif  // STTR_DATA_SYNTH_LEXICON_H_
