#ifndef STTR_DATA_DATASET_H_
#define STTR_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/types.h"
#include "text/vocabulary.h"

namespace sttr {

/// Summary statistics in the shape of the paper's Table 1.
struct DatasetStats {
  size_t num_users = 0;
  size_t num_pois = 0;
  size_t num_words = 0;
  size_t num_checkins = 0;
  size_t num_crossing_users = 0;     ///< users with check-ins in >= 2 cities
  size_t num_crossing_checkins = 0;  ///< their check-ins outside the home city
};

/// In-memory check-in collection: users, POIs, cities, vocabulary and the
/// check-in table. Built once (via the synthetic generator or a loader) and
/// then read-only for models.
class Dataset {
 public:
  Dataset() = default;

  // -- Construction -----------------------------------------------------------

  /// Appends a city; its id must equal the current city count.
  void AddCity(City city);

  /// Appends a user; its id must equal the current user count.
  void AddUser(User user);

  /// Appends a POI; its id must equal the current POI count.
  void AddPoi(Poi poi);

  /// Appends a check-in referencing existing user/POI ids.
  void AddCheckin(CheckinRecord rec);

  Vocabulary& mutable_vocabulary() { return vocab_; }

  /// Rebuilds the per-user and per-city indexes; call after the last Add*.
  void BuildIndexes();

  // -- Access -------------------------------------------------------------------

  size_t num_users() const { return users_.size(); }
  size_t num_pois() const { return pois_.size(); }
  size_t num_cities() const { return cities_.size(); }
  size_t num_checkins() const { return checkins_.size(); }

  const User& user(UserId id) const;
  const Poi& poi(PoiId id) const;
  const City& city(CityId id) const;
  const Vocabulary& vocabulary() const { return vocab_; }

  const std::vector<CheckinRecord>& checkins() const { return checkins_; }
  const std::vector<Poi>& pois() const { return pois_; }
  const std::vector<User>& users() const { return users_; }
  const std::vector<City>& cities() const { return cities_; }

  /// Indexes of this user's check-ins in checkins(). Requires BuildIndexes().
  const std::vector<size_t>& CheckinsOfUser(UserId u) const;

  /// POI ids located in city `c`. Requires BuildIndexes().
  const std::vector<PoiId>& PoisInCity(CityId c) const;

  /// Table-1 style statistics. `target_city` defines "crossing" users as
  /// those with check-ins both inside and outside that city; pass -1 to
  /// count users spanning any two cities.
  DatasetStats ComputeStats(CityId target_city = -1) const;

 private:
  std::vector<User> users_;
  std::vector<Poi> pois_;
  std::vector<City> cities_;
  std::vector<CheckinRecord> checkins_;
  Vocabulary vocab_;

  bool poi_index_built_ = false;
  bool checkin_index_built_ = false;
  std::vector<std::vector<size_t>> user_checkins_;
  std::vector<std::vector<PoiId>> city_pois_;
};

}  // namespace sttr

#endif  // STTR_DATA_DATASET_H_
