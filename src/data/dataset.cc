#include "data/dataset.h"

#include <unordered_set>

#include "util/check.h"

namespace sttr {

void Dataset::AddCity(City city) {
  STTR_CHECK_EQ(static_cast<size_t>(city.id), cities_.size())
      << "city ids must be dense";
  cities_.push_back(std::move(city));
  poi_index_built_ = false;
}

void Dataset::AddUser(User user) {
  STTR_CHECK_EQ(static_cast<size_t>(user.id), users_.size())
      << "user ids must be dense";
  users_.push_back(user);
  checkin_index_built_ = false;
}

void Dataset::AddPoi(Poi poi) {
  STTR_CHECK_EQ(static_cast<size_t>(poi.id), pois_.size())
      << "poi ids must be dense";
  STTR_CHECK_GE(poi.city, 0);
  STTR_CHECK_LT(static_cast<size_t>(poi.city), cities_.size());
  pois_.push_back(std::move(poi));
  poi_index_built_ = false;
}

void Dataset::AddCheckin(CheckinRecord rec) {
  STTR_CHECK_GE(rec.user, 0);
  STTR_CHECK_LT(static_cast<size_t>(rec.user), users_.size());
  STTR_CHECK_GE(rec.poi, 0);
  STTR_CHECK_LT(static_cast<size_t>(rec.poi), pois_.size());
  checkins_.push_back(rec);
  checkin_index_built_ = false;
}

void Dataset::BuildIndexes() {
  user_checkins_.assign(users_.size(), {});
  city_pois_.assign(cities_.size(), {});
  for (size_t i = 0; i < checkins_.size(); ++i) {
    user_checkins_[static_cast<size_t>(checkins_[i].user)].push_back(i);
  }
  for (const Poi& p : pois_) {
    city_pois_[static_cast<size_t>(p.city)].push_back(p.id);
  }
  poi_index_built_ = true;
  checkin_index_built_ = true;
}

const User& Dataset::user(UserId id) const {
  STTR_CHECK_GE(id, 0);
  STTR_CHECK_LT(static_cast<size_t>(id), users_.size());
  return users_[static_cast<size_t>(id)];
}

const Poi& Dataset::poi(PoiId id) const {
  STTR_CHECK_GE(id, 0);
  STTR_CHECK_LT(static_cast<size_t>(id), pois_.size());
  return pois_[static_cast<size_t>(id)];
}

const City& Dataset::city(CityId id) const {
  STTR_CHECK_GE(id, 0);
  STTR_CHECK_LT(static_cast<size_t>(id), cities_.size());
  return cities_[static_cast<size_t>(id)];
}

const std::vector<size_t>& Dataset::CheckinsOfUser(UserId u) const {
  STTR_CHECK(checkin_index_built_) << "call BuildIndexes() first";
  STTR_CHECK_GE(u, 0);
  STTR_CHECK_LT(static_cast<size_t>(u), user_checkins_.size());
  return user_checkins_[static_cast<size_t>(u)];
}

const std::vector<PoiId>& Dataset::PoisInCity(CityId c) const {
  STTR_CHECK(poi_index_built_) << "call BuildIndexes() first";
  STTR_CHECK_GE(c, 0);
  STTR_CHECK_LT(static_cast<size_t>(c), city_pois_.size());
  return city_pois_[static_cast<size_t>(c)];
}

DatasetStats Dataset::ComputeStats(CityId target_city) const {
  STTR_CHECK(checkin_index_built_) << "call BuildIndexes() first";
  DatasetStats s;
  s.num_users = users_.size();
  s.num_pois = pois_.size();
  s.num_words = vocab_.size();
  s.num_checkins = checkins_.size();
  for (const User& u : users_) {
    bool in_target = false;
    bool in_source = false;
    std::unordered_set<CityId> cities_seen;
    for (size_t idx : CheckinsOfUser(u.id)) {
      const CityId c = checkins_[idx].city;
      cities_seen.insert(c);
      if (target_city >= 0) {
        (c == target_city ? in_target : in_source) = true;
      }
    }
    const bool crossing =
        target_city >= 0 ? (in_target && in_source) : cities_seen.size() > 1;
    if (!crossing) continue;
    s.num_crossing_users += 1;
    for (size_t idx : CheckinsOfUser(u.id)) {
      const bool counts =
          target_city >= 0
              ? checkins_[idx].city == target_city
              : checkins_[idx].city != u.home_city;
      if (counts) s.num_crossing_checkins += 1;
    }
  }
  return s;
}

}  // namespace sttr
