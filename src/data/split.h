#ifndef STTR_DATA_SPLIT_H_
#define STTR_DATA_SPLIT_H_

#include <vector>

#include "data/dataset.h"

namespace sttr {

/// The crossing-city evaluation split of §4.1 ("Dataset Construction").
///
/// One city is the target; crossing-city users (who checked in both inside
/// and outside the target) become test users and their target-city check-ins
/// become ground truth. Everything else trains: all source-city check-ins
/// (including the crossing users' source history) and the target-city
/// check-ins of local users.
struct CrossCitySplit {
  CityId target_city = -1;

  /// Training check-ins (indices into dataset.checkins()).
  std::vector<size_t> train;

  struct TestUser {
    UserId user = -1;
    /// Target-city POIs the user actually visited (deduplicated).
    std::vector<PoiId> ground_truth;
  };
  std::vector<TestUser> test_users;

  /// Check-ins held out as ground truth (count, for stats).
  size_t num_heldout_checkins = 0;
};

/// Builds the split. Users whose check-ins are exclusively in the target
/// city are treated as locals (their data trains the target side).
CrossCitySplit MakeCrossCitySplit(const Dataset& dataset, CityId target_city);

}  // namespace sttr

#endif  // STTR_DATA_SPLIT_H_
