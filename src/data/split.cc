#include "data/split.h"

#include <unordered_set>

#include "util/check.h"

namespace sttr {

CrossCitySplit MakeCrossCitySplit(const Dataset& dataset, CityId target_city) {
  STTR_CHECK_GE(target_city, 0);
  STTR_CHECK_LT(static_cast<size_t>(target_city), dataset.num_cities());

  CrossCitySplit split;
  split.target_city = target_city;

  for (const User& u : dataset.users()) {
    bool in_target = false;
    bool in_source = false;
    for (size_t idx : dataset.CheckinsOfUser(u.id)) {
      (dataset.checkins()[idx].city == target_city ? in_target : in_source) =
          true;
    }
    const bool crossing = in_target && in_source;

    if (!crossing) {
      for (size_t idx : dataset.CheckinsOfUser(u.id)) {
        split.train.push_back(idx);
      }
      continue;
    }

    CrossCitySplit::TestUser test;
    test.user = u.id;
    std::unordered_set<PoiId> seen;
    for (size_t idx : dataset.CheckinsOfUser(u.id)) {
      const CheckinRecord& rec = dataset.checkins()[idx];
      if (rec.city == target_city) {
        split.num_heldout_checkins += 1;
        if (seen.insert(rec.poi).second) test.ground_truth.push_back(rec.poi);
      } else {
        split.train.push_back(idx);
      }
    }
    split.test_users.push_back(std::move(test));
  }
  return split;
}

}  // namespace sttr
