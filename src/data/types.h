#ifndef STTR_DATA_TYPES_H_
#define STTR_DATA_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geo.h"

namespace sttr {

using UserId = int64_t;
using PoiId = int64_t;
using WordId = int64_t;
using CityId = int32_t;

/// A point of interest: identity, location, host city and the word ids of
/// its textual description (categories + tips after tokenisation).
struct Poi {
  PoiId id = -1;
  CityId city = -1;
  GeoPoint location;
  std::vector<WordId> words;
};

/// One check-in (Definition 1). The POI's location/words/city live on the
/// Poi record; keeping the tuple slim makes the check-in table cache-friendly.
struct CheckinRecord {
  UserId user = -1;
  PoiId poi = -1;
  CityId city = -1;
  /// Synthetic timestamp (ordering only).
  double time = 0.0;
};

/// A user; `home_city` is where most of their check-ins happen.
struct User {
  UserId id = -1;
  CityId home_city = -1;
};

/// A city with its bounding box.
struct City {
  CityId id = -1;
  std::string name;
  BoundingBox box;
};

}  // namespace sttr

#endif  // STTR_DATA_TYPES_H_
