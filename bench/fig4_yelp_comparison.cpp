// Figure 4: top-k performance comparison on the Yelp-like world (target
// city: las_vegas, source: phoenix). Paper reference: Recall@10 of
// ST-TransRec ~= 0.505 with improvements of 45.2/40.3/36.7/39.6/18.6/4.8/
// 5.9/3.3 % over ItemPop/LCE/CRCF/PR-UIDT/ST-LDA/CTLM/SH-CDL/PACE. The
// content-only baselines degrade more here than on Foursquare because the
// city-dependent vocabulary is heavier (3 landmark words per POI).

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("yelp", opts);
  std::printf("[fig4] yelp-like world: %zu users, %zu POIs, %zu check-ins; "
              "%zu test users\n",
              ws.world.dataset.num_users(), ws.world.dataset.num_pois(),
              ws.world.dataset.num_checkins(), ws.split.test_users.size());

  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("yelp", deep);

  const auto runs =
      bench::RunMethods(ws.world.dataset, ws.split,
                        baselines::ComparisonMethodNames(), deep,
                        opts.Eval(), opts.verbose);
  bench::PrintMetricTables(runs, opts.Eval().ks, opts.out_prefix);
  return 0;
}
