// Top-K selection and evaluation-protocol throughput: the seed's
// materialise+partial_sort selection vs the bounded heap behind
// RecommendTopK, and the ranking protocol run sequentially vs sharded
// across worker threads. With --out=<prefix>, emits
// <prefix>micro_topk.json for tools/summarize_bench.py.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "bench/bench_util.h"
#include "eval/protocol.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sttr::bench {
namespace {

using Entry = std::pair<int64_t, double>;

bool RanksBefore(const Entry& a, const Entry& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

/// Seed selection: build every (id, score) pair, partial_sort, truncate.
std::vector<Entry> TopKPartialSort(const std::vector<double>& scores,
                                   size_t k) {
  std::vector<Entry> scored;
  scored.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    scored.emplace_back(static_cast<int64_t>(i), scores[i]);
  }
  const size_t top = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(top),
                    scored.end(), RanksBefore);
  scored.resize(top);
  return scored;
}

/// The bounded-heap selection RecommendTopK now uses.
std::vector<Entry> TopKHeap(const std::vector<double>& scores, size_t k) {
  std::vector<Entry> heap;
  heap.reserve(std::min(k, scores.size()) + 1);
  for (size_t i = 0; i < scores.size(); ++i) {
    const Entry entry{static_cast<int64_t>(i), scores[i]};
    if (heap.size() < k) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), RanksBefore);
    } else if (RanksBefore(entry, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), RanksBefore);
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end(), RanksBefore);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), RanksBefore);
  return heap;
}

template <typename Fn>
double BestOf(size_t reps, const Fn& fn) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  if (flags.Has("threads")) {
    const std::string t = flags.GetString("threads", "");
    setenv("STTR_NUM_THREADS", t.c_str(), /*overwrite=*/1);
  }
  const BenchOptions opts = BenchOptions::Parse(argc, argv);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t threads = DefaultNumThreads();

  std::ostringstream json;
  json << "{\n  \"bench\": \"micro_topk\", \"threads\": " << threads
       << ",\n  \"results\": [\n";
  bool first = true;

  // ---- Part 1: selection kernel on synthetic score vectors. ------------------
  std::cout << "[micro_topk] threads=" << threads << " reps=" << reps << "\n";
  std::cout << "selection          n      k    seconds     items/s  speedup\n";
  Rng rng(opts.seed == 0 ? 42 : opts.seed);
  volatile int64_t sink = 0;
  for (const size_t n : {size_t{10000}, size_t{100000}, size_t{1000000}}) {
    std::vector<double> scores(n);
    for (double& s : scores) s = rng.Uniform();
    for (const size_t k : {size_t{10}, size_t{100}}) {
      STTR_CHECK(TopKHeap(scores, k) == TopKPartialSort(scores, k))
          << "heap and partial_sort top-k disagree";
      const double t_sort =
          BestOf(reps, [&] { sink = TopKPartialSort(scores, k)[0].first; });
      const double t_heap =
          BestOf(reps, [&] { sink = TopKHeap(scores, k)[0].first; });
      struct Row {
        const char* name;
        double seconds;
      };
      for (const Row& r : {Row{"partial_sort", t_sort}, Row{"heap", t_heap}}) {
        std::printf("%-14s %8zu %6zu %10.6f %11.3g %8.2fx\n", r.name, n, k,
                    r.seconds, static_cast<double>(n) / r.seconds,
                    t_sort / r.seconds);
        if (!first) json << ",\n";
        json << "    {\"kernel\": \"topk_" << r.name << "\", \"n\": " << n
             << ", \"k\": " << k << ", \"threads\": 1, \"seconds\": "
             << r.seconds << ", \"speedup_vs_seed\": " << t_sort / r.seconds
             << "}";
        first = false;
      }
    }
  }

  // ---- Part 2: the ranking protocol, sequential vs sharded. ------------------
  // ItemPop fits instantly, so this isolates protocol + scoring overheads.
  WorldAndSplit ws = MakeWorld("foursquare", opts);
  auto rec = baselines::MakeRecommender("ItemPop");
  STTR_CHECK_OK(rec.status());
  STTR_CHECK_OK((*rec)->Fit(ws.world.dataset, ws.split));

  EvalConfig serial_cfg = opts.Eval();
  serial_cfg.num_threads = 1;
  EvalConfig parallel_cfg = opts.Eval();
  parallel_cfg.num_threads = threads;

  const EvalResult r_serial =
      EvaluateRanking(ws.world.dataset, ws.split, **rec, serial_cfg);
  const EvalResult r_parallel =
      EvaluateRanking(ws.world.dataset, ws.split, **rec, parallel_cfg);
  STTR_CHECK_EQ(r_serial.num_users_evaluated, r_parallel.num_users_evaluated);
  for (const auto& [k, m] : r_serial.at_k) {
    STTR_CHECK_EQ(m.recall, r_parallel.At(k).recall)
        << "parallel eval diverged at k=" << k;
  }

  const double t_eval_serial = BestOf(reps, [&] {
    EvaluateRanking(ws.world.dataset, ws.split, **rec, serial_cfg);
  });
  const double t_eval_parallel = BestOf(reps, [&] {
    EvaluateRanking(ws.world.dataset, ws.split, **rec, parallel_cfg);
  });
  const double users = static_cast<double>(r_serial.num_users_evaluated);
  std::cout << "\nprotocol        threads    seconds     users/s  speedup\n";
  std::printf("eval_serial     %7d %10.6f %11.1f %8.2fx\n", 1, t_eval_serial,
              users / t_eval_serial, 1.0);
  std::printf("eval_parallel   %7zu %10.6f %11.1f %8.2fx\n", threads,
              t_eval_parallel, users / t_eval_parallel,
              t_eval_serial / t_eval_parallel);
  json << ",\n    {\"kernel\": \"eval_serial\", \"n\": "
       << r_serial.num_users_evaluated << ", \"threads\": 1, \"seconds\": "
       << t_eval_serial << ", \"speedup_vs_seed\": 1.0}";
  json << ",\n    {\"kernel\": \"eval_parallel\", \"n\": "
       << r_serial.num_users_evaluated << ", \"threads\": " << threads
       << ", \"seconds\": " << t_eval_parallel
       << ", \"speedup_vs_seed\": " << t_eval_serial / t_eval_parallel << "}";
  json << "\n  ]\n}\n";

  if (!opts.out_prefix.empty()) {
    const std::string path = opts.out_prefix + "micro_topk.json";
    std::ofstream out(path);
    out << json.str();
    std::cout << "wrote " << path << "\n";
  } else {
    std::cout << json.str();
  }
  (void)sink;
  return 0;
}

}  // namespace
}  // namespace sttr::bench

int main(int argc, char** argv) { return sttr::bench::Main(argc, argv); }
