// Delta hot-patch microbenchmark: StTransRec::ApplyDelta cost as a function
// of (a) the number of patched rows at a fixed table size and (b) the table
// size at a fixed patch size. The claim under test is the one the streaming
// design rests on: apply time scales with the DELTA size, not the TABLE
// size — patching 64 rows of a 10x larger model costs about the same, while
// patching 10x more rows costs ~10x. With --out=<prefix>, emits
// <prefix>micro_delta_apply.json — the source of the streaming row in
// EXPERIMENTS.md.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_util.h"
#include "core/delta.h"
#include "core/st_transrec.h"
#include "data/split.h"
#include "data/synth/world_generator.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sttr::bench {
namespace {

/// A synthetic cumulative delta of `rows` distinct user rows (plus a few POI
/// rows so all three sections exercise their code paths).
DeltaCheckpoint MakeDelta(const StTransRec& model, size_t num_user_rows,
                          size_t num_poi_rows, Rng& rng) {
  DeltaCheckpoint delta;
  delta.config_fingerprint = model.ConfigFingerprint();
  const auto fill = [&rng](EmbeddingRowDelta* t, const Tensor& table,
                           size_t n) {
    t->dim = table.cols();
    const size_t count = std::min(n, table.rows());
    std::vector<int64_t> ids(table.rows());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int64_t>(i);
    for (size_t i = 0; i < count; ++i) {  // partial Fisher-Yates
      std::swap(ids[i], ids[i + rng.UniformInt(ids.size() - i)]);
    }
    t->rows.assign(ids.begin(), ids.begin() + static_cast<long>(count));
    t->values.resize(count * t->dim);
    for (float& v : t->values) v = static_cast<float>(rng.Uniform()) - 0.5f;
  };
  // Parameters() order: user, POI, word embedding tables first (the sparse
  // set) — legal right after Prepare(), unlike the fitted-only accessors.
  const auto params = model.Parameters();
  fill(&delta.user, params[0].value(), num_user_rows);
  fill(&delta.poi, params[1].value(), num_poi_rows);
  delta.word.dim = params[2].value().cols();
  return delta;
}

double BestApplySeconds(StTransRec& model, const DeltaCheckpoint& delta,
                        size_t reps) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer t;
    STTR_CHECK_OK(model.ApplyDelta(delta));
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

struct Row {
  std::string label;
  size_t table_rows = 0;
  size_t delta_rows = 0;
  double micros = 0.0;
};

int Main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const BenchOptions opts = BenchOptions::Parse(argc, argv);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 20));
  Rng rng(42);

  std::vector<Row> rows;
  const auto bench_world = [&](synth::Scale scale, const char* scale_name) {
    auto cfg = synth::SynthWorldConfig::FoursquareLike(scale);
    synth::SynthWorld world = synth::GenerateWorld(cfg);
    CrossCitySplit split = MakeCrossCitySplit(world.dataset, cfg.target_city);
    StTransRecConfig mcfg = opts.DeepConfig();
    StTransRec model(mcfg);
    STTR_CHECK_OK(model.Prepare(world.dataset, split));
    const size_t table_rows =
        world.dataset.num_users() + world.dataset.num_pois();
    for (size_t n : {16UL, 64UL, 256UL, 1024UL}) {
      if (n > world.dataset.num_users()) continue;
      const DeltaCheckpoint delta = MakeDelta(model, n, n / 4, rng);
      const double secs = BestApplySeconds(model, delta, reps);
      rows.push_back({std::string(scale_name) + "/rows=" + std::to_string(n),
                      table_rows, delta.total_rows(), secs * 1e6});
    }
  };
  bench_world(synth::Scale::kTiny, "tiny");
  bench_world(synth::Scale::kSmall, "small");

  std::printf("%-24s %12s %12s %12s\n", "case", "table_rows", "delta_rows",
              "apply_us");
  for (const Row& r : rows) {
    std::printf("%-24s %12zu %12zu %12.2f\n", r.label.c_str(), r.table_rows,
                r.delta_rows, r.micros);
  }

  // The scaling claims, asserted so a regression fails the bench run:
  // growing the table ~10x at fixed delta size must not grow apply time
  // anywhere near 10x (allow 3x for cache effects), and within one table
  // the biggest delta must cost more than the smallest.
  const auto find = [&rows](const std::string& label) -> const Row* {
    for (const Row& r : rows) {
      if (r.label == label) return &r;
    }
    return nullptr;
  };
  const Row* tiny64 = find("tiny/rows=64");
  const Row* small64 = find("small/rows=64");
  if (tiny64 != nullptr && small64 != nullptr) {
    const double table_blowup = static_cast<double>(small64->table_rows) /
                                static_cast<double>(tiny64->table_rows);
    const double time_blowup = small64->micros / tiny64->micros;
    std::printf("table %.1fx larger -> apply %.2fx (delta-size scaling "
                "requires << table blowup)\n",
                table_blowup, time_blowup);
    STTR_CHECK_LT(time_blowup, std::max(3.0, table_blowup / 3.0))
        << "ApplyDelta no longer scales with delta size";
  }

  if (!opts.out_prefix.empty()) {
    std::ostringstream json;
    json << "{\"bench\": \"micro_delta_apply\", \"rows\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) json << ", ";
      json << "{\"case\": \"" << rows[i].label
           << "\", \"table_rows\": " << rows[i].table_rows
           << ", \"delta_rows\": " << rows[i].delta_rows
           << ", \"apply_us\": " << rows[i].micros << "}";
    }
    json << "]}\n";
    std::ofstream out(opts.out_prefix + "micro_delta_apply.json");
    out << json.str();
    std::cout << "wrote " << opts.out_prefix << "micro_delta_apply.json\n";
  }
  return 0;
}

}  // namespace
}  // namespace sttr::bench

int main(int argc, char** argv) { return sttr::bench::Main(argc, argv); }
