// Figure 9: performance vs dropout rate at k=10 on both worlds. Paper:
// interior optimum (0.1 on Foursquare, 0.2 on Yelp); large rates underfit.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  for (const char* dataset : {"foursquare", "yelp"}) {
    const auto ws = bench::MakeWorld(dataset, opts);
    StTransRecConfig deep = opts.DeepConfig();
    bench::ApplyPaperArchitecture(dataset, deep);
    // Sweeps retrain the model many times; default to a lighter epoch
    // budget unless --epochs overrides it.
    if (opts.epochs == 0) deep.num_epochs = 5;
    std::printf("\n[fig9] dropout sweep, %s-like world\n", dataset);
    bench::RunParameterSweep(
        ws.world.dataset, ws.split, deep, opts.Eval(), "dropout",
        {0.0, 0.1, 0.2, 0.35, 0.5},
        [](double v, StTransRecConfig& cfg) {
          cfg.dropout_rate = static_cast<float>(v);
        },
        {10}, opts.out_prefix.empty() ? "" : opts.out_prefix + "_" + dataset,
        opts.verbose);
  }
  return 0;
}
