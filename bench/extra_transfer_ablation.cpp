// Extra ablations of the transfer design choices called out in DESIGN.md:
//
//   A. weight lambda of the MMD term (Eq. 3 uses an unweighted sum;
//      lambda=0 degenerates to variant 1, large lambda over-regularises);
//   B. linear-time vs quadratic MMD estimator inside the training loop —
//      the paper adopts the O(D) form for cost (§3.2); this measures what
//      that choice trades away in quality and buys in time.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_util.h"
#include "util/timer.h"

using namespace sttr;

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("foursquare", opts);
  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("foursquare", deep);
  if (opts.epochs == 0) deep.num_epochs = 6;

  std::printf("[extra] A: MMD weight lambda sweep (foursquare-like)\n");
  bench::RunParameterSweep(
      ws.world.dataset, ws.split, deep, opts.Eval(), "lambda",
      {0.0, 0.1, 1.0, 10.0},
      [](double v, StTransRecConfig& cfg) {
        cfg.lambda_mmd = v;
        cfg.use_mmd = v > 0.0;
      },
      {10}, opts.out_prefix, opts.verbose);

  std::printf("\n[extra] B: linear-time vs quadratic MMD estimator\n");
  TextTable table({"estimator", "fit s", "Recall@10", "NDCG@10"});
  for (const bool linear : {true, false}) {
    StTransRecConfig cfg = deep;
    cfg.use_linear_mmd = linear;
    StTransRec model(cfg);
    Timer timer;
    STTR_CHECK_OK(model.Fit(ws.world.dataset, ws.split));
    const double secs = timer.ElapsedSeconds();
    EvalConfig ec = opts.Eval();
    const EvalResult r = EvaluateRanking(ws.world.dataset, ws.split, model, ec);
    table.AddRow({linear ? "linear O(D)" : "quadratic O(D^2)",
                  bench::FormatMetric(secs),
                  bench::FormatMetric(r.At(10).recall),
                  bench::FormatMetric(r.At(10).ndcg)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nexpected shape: comparable quality, the quadratic form "
              "costs more per step (grows with mmd_batch^2).\n");
  return 0;
}
