#include "bench/sweep_util.h"

#include <cstdio>

#include "core/st_transrec.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/svg_chart.h"
#include "util/timer.h"

namespace sttr::bench {

void RunParameterSweep(
    const Dataset& dataset, const CrossCitySplit& split,
    const StTransRecConfig& base, const EvalConfig& eval_config,
    const std::string& param_label, const std::vector<double>& values,
    const std::function<void(double, StTransRecConfig&)>& mutate,
    const std::vector<size_t>& ks, const std::string& out_prefix,
    bool verbose) {
  struct Row {
    double value;
    EvalResult result;
  };
  std::vector<Row> rows;
  for (double v : values) {
    StTransRecConfig cfg = base;
    mutate(v, cfg);
    StTransRec model(cfg);
    Timer timer;
    STTR_CHECK_OK(model.Fit(dataset, split));
    EvalConfig ec = eval_config;
    ec.ks = ks;
    rows.push_back({v, EvaluateRanking(dataset, split, model, ec)});
    if (verbose) {
      STTR_LOG(Info) << param_label << "=" << v << " fit "
                     << timer.ElapsedSeconds() << "s Recall@" << ks.back()
                     << "=" << rows.back().result.At(ks.back()).recall;
    }
  }

  struct MetricDef {
    const char* label;
    double RankingMetrics::*field;
  };
  const MetricDef defs[] = {{"Recall", &RankingMetrics::recall},
                            {"Precision", &RankingMetrics::precision},
                            {"NDCG", &RankingMetrics::ndcg},
                            {"MAP", &RankingMetrics::map}};

  std::vector<std::string> header{param_label};
  for (const auto& def : defs) {
    for (size_t k : ks) {
      header.push_back(std::string(def.label) + "@" + std::to_string(k));
    }
  }
  TextTable table(header);
  for (const Row& row : rows) {
    std::vector<std::string> cells{StrFormat("%.2f", row.value)};
    for (const auto& def : defs) {
      for (size_t k : ks) {
        cells.push_back(FormatMetric(row.result.At(k).*(def.field)));
      }
    }
    table.AddRow(std::move(cells));
  }
  std::printf("%s", table.ToString().c_str());

  // Argmax summary per metric at the largest k.
  const size_t k = ks.back();
  std::printf("\nbest %s per metric (at k=%zu):\n", param_label.c_str(), k);
  for (const auto& def : defs) {
    double best_v = rows.front().value;
    double best_m = rows.front().result.At(k).*(def.field);
    for (const Row& row : rows) {
      const double m = row.result.At(k).*(def.field);
      if (m > best_m) {
        best_m = m;
        best_v = row.value;
      }
    }
    std::printf("  %-10s %.2f (%.4f)\n", def.label, best_v, best_m);
  }
  if (!out_prefix.empty()) {
    STTR_CHECK_OK(table.WriteCsv(out_prefix + "_sweep.csv"));
    // Render the figure itself: one SVG per metric, one line per cutoff.
    for (const auto& def : defs) {
      SvgLineChart chart(std::string(def.label) + " vs " + param_label,
                         param_label, def.label);
      for (size_t cutoff : ks) {
        std::vector<double> xs, ys;
        for (const Row& row : rows) {
          xs.push_back(row.value);
          ys.push_back(row.result.At(cutoff).*(def.field));
        }
        chart.AddSeries("k=" + std::to_string(cutoff), std::move(xs),
                        std::move(ys));
      }
      STTR_CHECK_OK(chart.WriteTo(out_prefix + "_" +
                                  ToLower(def.label) + ".svg"));
    }
  }
}

}  // namespace sttr::bench
