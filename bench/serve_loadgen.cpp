// Load generator for the online serving subsystem. Spins the full serving
// stack (ModelBundle + CandidateIndex + ScoreBatcher + ResultCache +
// RecommendServer) in-process on an ephemeral loopback port, then drives it
// with real HTTP clients over persistent keep-alive connections and measures
// client-side latency and throughput:
//
//   serve_nobatch     closed-loop, no batcher at all (handlers score
//                     inline), cache bypassed — the per-request baseline
//   serve_batched     same traffic with micro-batching on — the tentpole
//                     throughput win
//   serve_cache_cold  single client, distinct (user, cell) per request,
//                     cache bypassed — cold-path latency
//   serve_cache_hit   same requests repeated against a warm cache — the
//                     zero-allocation hot path
//
// --mode=epoll|blocking|both selects the serving core; every row carries its
// mode so the two cores can be compared from one run. --connections=N holds
// N-clients extra idle keep-alive connections open through the closed-loop
// scenarios (the many-idle-few-loaded shape the epoll core exists for) and
// adds a `serve_idle_conns` row.
//
// With --open_qps=N an open-loop scenario is added: senders fire on a fixed
// arrival schedule *without waiting for prior responses* (requests pipeline
// behind a slow server), so offered load is honest; sends that would block
// are counted as dropped and senders that fall behind schedule as late.
//
// Each timed window also snapshots the in-process ServeStats — the same
// counters /statz serves — and reports allocations and syscalls per request.
// --assert_zero_alloc (implied by --smoke, the CI entry point) fails the run
// unless warmed cache-hit requests allocate exactly nothing.
//
// With --out=<prefix>, emits <prefix>serve_loadgen.json for
// tools/summarize_bench.py. A checkpoint is trained into --ckpt_dir (a temp
// directory by default) unless one is already there.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <unordered_set>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "serve/batcher.h"
#include "serve/candidate_index.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace sttr::bench {
namespace {

// -- Minimal blocking HTTP client over a persistent loopback connection. -------

class HttpClient {
 public:
  explicit HttpClient(int port) : port_(port) { Connect(); }
  ~HttpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// One GET round-trip; returns the response body. Reconnects on a dropped
  /// connection.
  std::string Get(const std::string& target) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (fd_ < 0) Connect();
      const std::string request = "GET " + target +
                                  " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
      if (!SendAll(request)) {
        Disconnect();
        continue;
      }
      std::string body;
      if (ReadResponse(&body)) return body;
      Disconnect();
    }
    STTR_CHECK(false) << "HTTP request failed twice: " << target;
    return "";
  }

  enum class SendStatus { kOk, kWouldBlock, kError };

  /// Nonblocking-first send for the open-loop sender: if the socket buffer
  /// cannot take the first byte the request is droppable (the server is not
  /// draining this connection), but once any byte is on the wire the rest
  /// must follow — a torn request would corrupt the HTTP stream — so the
  /// remainder goes out blocking.
  SendStatus TrySend(const std::string& data) {
    const ssize_t first = ::send(fd_, data.data(), data.size(),
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
    if (first < 0) {
      return (errno == EAGAIN || errno == EWOULDBLOCK) ? SendStatus::kWouldBlock
                                                       : SendStatus::kError;
    }
    size_t off = static_cast<size_t>(first);
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return SendStatus::kError;
      off += static_cast<size_t>(n);
    }
    return SendStatus::kOk;
  }

  /// Reads the next pipelined response off the connection. Safe to call from
  /// a different thread than TrySend(): the two touch disjoint state
  /// (receive buffer vs. send path) and full-duplex sockets allow it.
  bool ReadBody(std::string* body) { return ReadResponse(body); }

 private:
  void Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    STTR_CHECK_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    STTR_CHECK_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << "cannot connect to loopback server on port " << port_;
  }

  void Disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool SendAll(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadResponse(std::string* body) {
    // Headers, then Content-Length bytes of body.
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    const std::string head = ToLower(buffer_.substr(0, header_end));
    const size_t cl = head.find("content-length:");
    STTR_CHECK_NE(cl, std::string::npos);
    const size_t length = static_cast<size_t>(
        std::strtoull(head.c_str() + cl + 15, nullptr, 10));
    const size_t total = header_end + 4 + length;
    while (buffer_.size() < total) {
      if (!Fill()) return false;
    }
    *body = buffer_.substr(header_end + 4, length);
    buffer_.erase(0, total);
    return true;
  }

  bool Fill() {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int port_;
  int fd_ = -1;
  std::string buffer_;
};

// -- Workload -------------------------------------------------------------------

/// One pre-generated query: a user at a POI's location in the target city.
struct Query {
  UserId user;
  double lat;
  double lon;
};

std::vector<Query> MakeQueries(const Dataset& dataset, CityId city,
                               size_t count, Rng& rng) {
  const auto& pois = dataset.PoisInCity(city);
  STTR_CHECK(!pois.empty());
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const Poi& poi =
        dataset.poi(pois[rng.UniformInt(static_cast<uint64_t>(pois.size()))]);
    queries.push_back(Query{
        static_cast<UserId>(
            rng.UniformInt(static_cast<uint64_t>(dataset.num_users()))),
        poi.location.lat, poi.location.lon});
  }
  return queries;
}

std::string QueryTarget(const Query& q, size_t k, bool nocache) {
  std::string target = "/recommend?user=" + std::to_string(q.user) +
                       "&lat=" + StrFormat("%.8f", q.lat) +
                       "&lon=" + StrFormat("%.8f", q.lon) +
                       "&k=" + std::to_string(k);
  if (nocache) target += "&nocache=1";
  return target;
}

struct LoadResult {
  size_t requests = 0;
  double seconds = 0.0;
  std::vector<double> latencies_ms;  // sorted after the run

  // Open-loop accounting: departures that left on schedule, departures the
  // full socket buffer refused (dropped), and departures whose send slipped
  // more than one interval past its timestamp (late).
  bool open_loop = false;
  size_t dropped = 0;
  size_t late = 0;

  double qps() const { return static_cast<double>(requests) / seconds; }
  double PercentileMs(double p) const {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = std::min(
        latencies_ms.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_ms.size())));
    return latencies_ms[idx];
  }
  double MeanMs() const {
    double sum = 0;
    for (double v : latencies_ms) sum += v;
    return latencies_ms.empty() ? 0.0
                                : sum / static_cast<double>(latencies_ms.size());
  }
};

/// Closed loop: `num_clients` threads issue back-to-back requests from their
/// slice of `queries` for `duration_s` seconds.
LoadResult RunClosedLoop(int port, const std::vector<Query>& queries, size_t k,
                         bool nocache, size_t num_clients, double duration_s) {
  std::atomic<size_t> total_requests{0};
  std::vector<std::vector<double>> latencies(num_clients);
  std::vector<std::thread> clients;
  Timer wall;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client(port);
      auto& lat = latencies[c];
      size_t i = c;  // interleaved slices, so clients hit different users
      const auto stop_at =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(duration_s));
      while (std::chrono::steady_clock::now() < stop_at) {
        const Query& q = queries[i % queries.size()];
        i += num_clients;
        Timer t;
        const std::string body = client.Get(QueryTarget(q, k, nocache));
        lat.push_back(t.ElapsedSeconds() * 1e3);
        STTR_CHECK_NE(body.find("\"results\""), std::string::npos) << body;
        total_requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  LoadResult result;
  result.seconds = wall.ElapsedSeconds();
  result.requests = total_requests.load();
  for (auto& lat : latencies) {
    result.latencies_ms.insert(result.latencies_ms.end(), lat.begin(),
                               lat.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

/// Open loop: requests depart on a fixed arrival schedule of `qps` spread
/// over `num_clients` keep-alive connections. Each connection runs a sender
/// thread that fires at the scheduled timestamps *without waiting for prior
/// responses* — requests pipeline behind a slow server — and a receiver
/// thread that matches in-order responses to their scheduled departures, so
/// latency includes all queueing delay (no coordinated omission). A send the
/// socket buffer refuses outright is dropped (and counted); a sender running
/// more than one interval behind schedule counts its departure as late.
LoadResult RunOpenLoop(int port, const std::vector<Query>& queries, size_t k,
                       bool nocache, size_t num_clients, double duration_s,
                       double qps) {
  using Clock = std::chrono::steady_clock;
  std::atomic<size_t> total_requests{0};
  std::atomic<size_t> total_dropped{0};
  std::atomic<size_t> total_late{0};
  std::vector<std::vector<double>> latencies(num_clients);

  struct ConnState {
    std::unique_ptr<HttpClient> client;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Clock::time_point> pending;  // scheduled departures in flight
    bool done = false;
  };
  std::vector<std::unique_ptr<ConnState>> conns;
  conns.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    conns.push_back(std::make_unique<ConnState>());
    conns.back()->client = std::make_unique<HttpClient>(port);
  }

  const auto interval =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          static_cast<double>(num_clients) / qps));
  std::vector<std::thread> threads;
  Timer wall;
  for (size_t c = 0; c < num_clients; ++c) {
    ConnState& conn = *conns[c];
    // Sender: fires on the arrival schedule, never gated on responses.
    threads.emplace_back([&, c] {
      size_t i = c;
      size_t dropped = 0, late = 0;
      const auto start = Clock::now();
      auto next_departure = start + (interval * static_cast<int>(c)) /
                                        static_cast<int>(num_clients);
      const auto stop_at =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(duration_s));
      while (next_departure < stop_at) {
        std::this_thread::sleep_until(next_departure);
        const auto scheduled = next_departure;
        next_departure += interval;
        const Query& q = queries[i % queries.size()];
        i += num_clients;
        const std::string request = "GET " + QueryTarget(q, k, nocache) +
                                    " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
        if (Clock::now() > scheduled + interval) ++late;
        switch (conn.client->TrySend(request)) {
          case HttpClient::SendStatus::kOk: {
            {
              std::lock_guard<std::mutex> lock(conn.mu);
              conn.pending.push_back(scheduled);
            }
            conn.cv.notify_one();
            break;
          }
          case HttpClient::SendStatus::kWouldBlock:
            ++dropped;
            break;
          case HttpClient::SendStatus::kError:
            STTR_CHECK(false) << "open-loop send failed";
        }
      }
      {
        std::lock_guard<std::mutex> lock(conn.mu);
        conn.done = true;
      }
      conn.cv.notify_one();
      total_dropped.fetch_add(dropped, std::memory_order_relaxed);
      total_late.fetch_add(late, std::memory_order_relaxed);
    });
    // Receiver: drains responses in order, charging each from its scheduled
    // departure.
    threads.emplace_back([&, c] {
      auto& lat = latencies[c];
      while (true) {
        Clock::time_point scheduled;
        {
          std::unique_lock<std::mutex> lock(conn.mu);
          conn.cv.wait(lock,
                       [&] { return !conn.pending.empty() || conn.done; });
          if (conn.pending.empty()) break;
          scheduled = conn.pending.front();
          conn.pending.pop_front();
        }
        std::string body;
        STTR_CHECK(conn.client->ReadBody(&body))
            << "connection closed with responses outstanding";
        lat.push_back(
            std::chrono::duration<double>(Clock::now() - scheduled).count() *
            1e3);
        STTR_CHECK_NE(body.find("\"results\""), std::string::npos) << body;
        total_requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult result;
  result.open_loop = true;
  result.seconds = wall.ElapsedSeconds();
  result.requests = total_requests.load();
  result.dropped = total_dropped.load();
  result.late = total_late.load();
  for (auto& lat : latencies) {
    result.latencies_ms.insert(result.latencies_ms.end(), lat.begin(),
                               lat.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

// -- Stats deltas over a timed window. ------------------------------------------

/// Snapshot of the ServeStats counters the bench reports as per-request
/// rates — the same numbers /statz serves, read in-process.
struct StatsSnap {
  uint64_t requests = 0;
  uint64_t recommend_allocs = 0;
  uint64_t hot_requests = 0;
  uint64_t hot_allocs = 0;
  uint64_t loop_allocs = 0;
  uint64_t sys_reads = 0;
  uint64_t sys_writes = 0;
  uint64_t sys_epoll_waits = 0;

  static StatsSnap Of(const serve::ServeStats& s) {
    StatsSnap snap;
    snap.requests = s.requests.load(std::memory_order_relaxed);
    snap.recommend_allocs = s.recommend_allocs.load(std::memory_order_relaxed);
    snap.hot_requests = s.hot_requests.load(std::memory_order_relaxed);
    snap.hot_allocs = s.hot_allocs.load(std::memory_order_relaxed);
    snap.loop_allocs = s.loop_allocs.load(std::memory_order_relaxed);
    snap.sys_reads = s.sys_reads.load(std::memory_order_relaxed);
    snap.sys_writes = s.sys_writes.load(std::memory_order_relaxed);
    snap.sys_epoll_waits = s.sys_epoll_waits.load(std::memory_order_relaxed);
    return snap;
  }

  StatsSnap Minus(const StatsSnap& before) const {
    StatsSnap d;
    d.requests = requests - before.requests;
    d.recommend_allocs = recommend_allocs - before.recommend_allocs;
    d.hot_requests = hot_requests - before.hot_requests;
    d.hot_allocs = hot_allocs - before.hot_allocs;
    d.loop_allocs = loop_allocs - before.loop_allocs;
    d.sys_reads = sys_reads - before.sys_reads;
    d.sys_writes = sys_writes - before.sys_writes;
    d.sys_epoll_waits = sys_epoll_waits - before.sys_epoll_waits;
    return d;
  }
};

// -- Serving stack assembled per scenario. --------------------------------------

struct ServeStack {
  serve::ServeStats stats;
  std::unique_ptr<serve::ModelBundle> bundle;
  std::unique_ptr<serve::CandidateIndex> index;
  std::unique_ptr<serve::ScoreBatcher> batcher;
  std::unique_ptr<serve::ResultCache> cache;
  std::unique_ptr<serve::RecommendServer> server;

  ~ServeStack() {
    if (server != nullptr) server->Shutdown();
    if (batcher != nullptr) batcher->Stop();
  }
};

struct StackOptions {
  serve::ServeMode mode = serve::ServeMode::kEventLoop;
  size_t batch_pairs = 0;
  size_t workers = 8;
  size_t io_threads = 1;
  size_t min_candidates = 200;
  size_t max_connections = 4096;
};

std::unique_ptr<ServeStack> StartStack(const Dataset& dataset,
                                       const CrossCitySplit& split,
                                       const StTransRecConfig& model_cfg,
                                       const std::string& ckpt_dir,
                                       const StackOptions& options) {
  auto stack = std::make_unique<ServeStack>();

  serve::ModelBundleConfig bundle_cfg;
  bundle_cfg.checkpoint_dir = ckpt_dir;
  bundle_cfg.model = model_cfg;
  stack->bundle =
      std::make_unique<serve::ModelBundle>(dataset, split, bundle_cfg);
  STTR_CHECK_OK(stack->bundle->LoadInitial());

  serve::CandidateIndexConfig index_cfg;
  index_cfg.min_candidates = options.min_candidates;
  stack->index =
      std::make_unique<serve::CandidateIndex>(dataset, &split, index_cfg);

  // batch_pairs == 0 disables the batcher entirely: workers score inline,
  // the honest per-request baseline.
  if (options.batch_pairs > 0) {
    serve::BatcherConfig batcher_cfg;
    batcher_cfg.max_batch_pairs = options.batch_pairs;
    batcher_cfg.max_wait = std::chrono::microseconds(300);
    stack->batcher =
        std::make_unique<serve::ScoreBatcher>(batcher_cfg, &stack->stats);
    stack->batcher->Start();
  }

  serve::ResultCacheConfig cache_cfg;
  cache_cfg.ttl = std::chrono::milliseconds(0);  // no expiry during the run
  stack->cache = std::make_unique<serve::ResultCache>(cache_cfg);

  serve::ServerConfig server_cfg;
  server_cfg.mode = options.mode;
  server_cfg.num_workers = options.workers;
  server_cfg.num_io_threads = options.io_threads;
  server_cfg.default_city = split.target_city;
  server_cfg.max_connections = options.max_connections;
  server_cfg.max_pending_connections =
      std::max<size_t>(64, options.max_connections);
  // Idle keep-alive connections must survive the timed window.
  server_cfg.request_timeout = std::chrono::milliseconds(60000);
  stack->server = std::make_unique<serve::RecommendServer>(
      server_cfg, dataset, stack->bundle.get(), stack->index.get(),
      stack->batcher.get(), stack->cache.get(), &stack->stats);
  STTR_CHECK_OK(stack->server->Start());
  return stack;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.Define("dataset", "world preset: foursquare | yelp", "foursquare");
  flags.Define("scale", "world size: tiny | small | paper", "small");
  flags.Define("seed", "world seed override (0 = preset default)", "0");
  flags.Define("epochs", "training epochs for the served model", "1");
  flags.Define("ckpt_dir",
               "checkpoint directory (default: fresh temp dir; reused when "
               "it already holds a matching checkpoint)");
  flags.Define("mode", "serving core: epoll | blocking | both", "epoll");
  flags.Define("clients", "concurrent loaded client connections", "8");
  flags.Define("connections",
               "total keep-alive connections held through the closed-loop "
               "scenarios; the surplus over --clients sits idle "
               "(0 = just the loaded clients)", "0");
  flags.Define("duration_s", "seconds per scenario", "3");
  flags.Define("k", "top-K per request", "10");
  flags.Define("min_candidates", "candidate list size target", "200");
  flags.Define("batch_pairs", "micro-batch flush threshold", "512");
  flags.Define("server_workers", "scoring worker threads", "8");
  flags.Define("io_threads", "epoll event-loop threads", "1");
  flags.Define("open_qps", "extra open-loop scenario at this arrival rate "
               "(0 = off)", "0");
  flags.Define("cache_probes", "requests in the cold/hit comparison", "64");
  flags.Define("assert_zero_alloc",
               "fail unless warmed cache hits allocate exactly nothing");
  flags.Define("smoke",
               "CI smoke run: 1s scenarios and implies --assert_zero_alloc");
  flags.Define("out", "JSON output path prefix");
  STTR_CHECK_OK(flags.Parse(argc, argv));
  if (flags.Has("help")) {
    std::fputs(flags.HelpText("serve_loadgen", "[flags]",
                              "Open/closed-loop load generator for the "
                              "serving subsystem.")
                   .c_str(),
               stdout);
    return 0;
  }

  const BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::string dataset_name = flags.GetString("dataset", "foursquare");
  WorldAndSplit ws = MakeWorld(dataset_name, opts);

  StTransRecConfig model_cfg = opts.DeepConfig();
  if (opts.epochs == 0) model_cfg.num_epochs = 1;  // serving, not accuracy
  ApplyPaperArchitecture(dataset_name, model_cfg);

  std::string ckpt_dir = flags.GetString("ckpt_dir", "");
  if (ckpt_dir.empty()) {
    ckpt_dir = (std::filesystem::temp_directory_path() /
                ("sttr_serve_loadgen_" + std::to_string(::getpid())))
                   .string();
  }
  if (!FindLatestValidCheckpoint(*Env::Default(), ckpt_dir).ok()) {
    std::printf("[serve_loadgen] training %zu epoch(s) into %s ...\n",
                model_cfg.num_epochs, ckpt_dir.c_str());
    StTransRecConfig train_cfg = model_cfg;
    train_cfg.checkpoint_dir = ckpt_dir;
    StTransRec trainer(train_cfg);
    STTR_CHECK_OK(trainer.Fit(ws.world.dataset, ws.split));
  }

  const bool smoke = flags.GetBool("smoke", false);
  const bool assert_zero_alloc =
      smoke || flags.GetBool("assert_zero_alloc", false);
  const size_t clients =
      static_cast<size_t>(flags.GetInt("clients", 8));
  const size_t connections =
      static_cast<size_t>(flags.GetInt("connections", 0));
  const double duration_s =
      smoke ? 1.0 : flags.GetDouble("duration_s", 3.0);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const size_t min_candidates =
      static_cast<size_t>(flags.GetInt("min_candidates", 200));
  const size_t batch_pairs =
      static_cast<size_t>(flags.GetInt("batch_pairs", 512));
  const size_t server_workers =
      static_cast<size_t>(flags.GetInt("server_workers", 8));
  const size_t io_threads =
      static_cast<size_t>(flags.GetInt("io_threads", 1));
  const double open_qps = flags.GetDouble("open_qps", 0.0);
  const size_t cache_probes = std::min<size_t>(
      smoke ? 32 : 4096,
      static_cast<size_t>(flags.GetInt("cache_probes", 64)));

  std::vector<std::pair<serve::ServeMode, std::string>> modes;
  const std::string mode_flag = flags.GetString("mode", "epoll");
  if (mode_flag == "epoll" || mode_flag == "both") {
    modes.emplace_back(serve::ServeMode::kEventLoop, "epoll");
  }
  if (mode_flag == "blocking" || mode_flag == "both") {
    modes.emplace_back(serve::ServeMode::kBlocking, "blocking");
  }
  if (modes.empty()) {
    std::fprintf(stderr, "unknown --mode=%s (epoll | blocking | both)\n",
                 mode_flag.c_str());
    return 2;
  }

  Rng rng(opts.seed == 0 ? 1234 : opts.seed);
  const std::vector<Query> queries =
      MakeQueries(ws.world.dataset, ws.split.target_city, 4096, rng);

  struct Row {
    std::string kernel;
    std::string mode;
    size_t n;
    size_t clients;
    size_t connections;
    double seconds;
    double qps;
    double mean_ms, p50_ms, p99_ms;
    double allocs_per_req = -1.0;     // recommend-path allocs / request
    double hot_allocs_per_hit = -1.0; // allocs / warmed cache-hit request
    double sys_per_req = -1.0;        // read+write+epoll_wait / request
    long dropped = -1, late = -1;     // open-loop only
    double speedup_vs_nobatch = 0.0;
  };
  std::vector<Row> rows;
  bool zero_alloc_failed = false;

  const auto record = [&](const std::string& kernel, const std::string& mode,
                          const LoadResult& r, size_t n_clients,
                          size_t n_connections, const StatsSnap& d) {
    Row row{kernel, mode,  r.requests,   n_clients,
            n_connections, r.seconds,    r.qps(),
            r.MeanMs(),    r.PercentileMs(0.50), r.PercentileMs(0.99)};
    // Only the epoll core meters allocations and syscalls; a blocking-mode
    // zero would be "unmeasured", not "free".
    if (mode == "epoll" && d.requests > 0) {
      row.allocs_per_req = static_cast<double>(d.recommend_allocs) /
                           static_cast<double>(d.requests);
      row.sys_per_req =
          static_cast<double>(d.sys_reads + d.sys_writes + d.sys_epoll_waits) /
          static_cast<double>(d.requests);
    }
    if (d.hot_requests > 0) {
      row.hot_allocs_per_hit = static_cast<double>(d.hot_allocs) /
                               static_cast<double>(d.hot_requests);
    }
    if (r.open_loop) {
      row.dropped = static_cast<long>(r.dropped);
      row.late = static_cast<long>(r.late);
    }
    rows.push_back(row);
    std::printf("%-18s [%-8s] conns=%-5zu %6zu req  %8.1f qps  "
                "mean %7.3fms  p50 %7.3fms  p99 %7.3fms",
                kernel.c_str(), mode.c_str(), n_connections, r.requests,
                r.qps(), r.MeanMs(), r.PercentileMs(0.50),
                r.PercentileMs(0.99));
    if (row.allocs_per_req >= 0) {
      std::printf("  %6.1f alloc/req  %5.2f sys/req", row.allocs_per_req,
                  row.sys_per_req);
    }
    if (r.open_loop) {
      std::printf("  dropped=%zu late=%zu", r.dropped, r.late);
    }
    std::printf("\n");
  };

  // Untimed warmup ahead of each timed window: faults in the model pages,
  // grows the heap, arenas and connection buffers and warms the TCP path,
  // so scenario 1 doesn't pay the process's one-time costs and bias the
  // comparison.
  const auto warmup = [&](int port) {
    RunClosedLoop(port, queries, k, /*nocache=*/true, clients,
                  std::min(1.0, duration_s / 4.0));
  };

  for (const auto& [mode, mode_name] : modes) {
    StackOptions base;
    base.mode = mode;
    base.workers = server_workers;
    base.io_threads = io_threads;
    base.min_candidates = min_candidates;
    base.max_connections = std::max<size_t>(4096, connections + clients + 64);
    size_t nobatch_row = 0;

    // ---- Scenario 1: per-request scoring (no batcher, cache bypassed). ----
    {
      StackOptions so = base;
      so.batch_pairs = 0;
      auto stack =
          StartStack(ws.world.dataset, ws.split, model_cfg, ckpt_dir, so);
      warmup(stack->server->port());
      const StatsSnap before = StatsSnap::Of(stack->stats);
      const LoadResult r = RunClosedLoop(stack->server->port(), queries, k,
                                         /*nocache=*/true, clients,
                                         duration_s);
      nobatch_row = rows.size();
      record("serve_nobatch", mode_name, r, clients, clients,
             StatsSnap::Of(stack->stats).Minus(before));
    }

    // ---- Scenario 2: micro-batched scoring (cache still bypassed). --------
    {
      StackOptions so = base;
      so.batch_pairs = batch_pairs;
      auto stack =
          StartStack(ws.world.dataset, ws.split, model_cfg, ckpt_dir, so);
      warmup(stack->server->port());
      const StatsSnap before = StatsSnap::Of(stack->stats);
      const LoadResult r = RunClosedLoop(stack->server->port(), queries, k,
                                         /*nocache=*/true, clients,
                                         duration_s);
      record("serve_batched", mode_name, r, clients, clients,
             StatsSnap::Of(stack->stats).Minus(before));
      const uint64_t batches = stack->stats.batches.load();
      const uint64_t batched = stack->stats.batched_requests.load();
      std::printf("  (batch occupancy: %.2f requests/flush over %llu "
                  "flushes)\n",
                  batches == 0 ? 0.0
                               : static_cast<double>(batched) /
                                     static_cast<double>(batches),
                  static_cast<unsigned long long>(batches));
    }
    rows.back().speedup_vs_nobatch = rows.back().qps / rows[nobatch_row].qps;
    rows[nobatch_row].speedup_vs_nobatch = 1.0;

    // ---- Scenario 3: cache cold vs hit, single client. --------------------
    {
      StackOptions so = base;
      so.batch_pairs = batch_pairs;
      // One worker: a single serial client never has two requests in
      // flight, and one worker means one scratch to warm, so the zero-alloc
      // window below is deterministic.
      so.workers = 1;
      auto stack =
          StartStack(ws.world.dataset, ws.split, model_cfg, ckpt_dir, so);
      HttpClient client(stack->server->port());
      // Probe with distinct users so every cold probe is a genuine first
      // touch of its (user, cell, k) cache key — random queries collide on
      // small worlds.
      std::vector<Query> probe_queries;
      {
        std::unordered_set<UserId> seen_users;
        for (const Query& q : queries) {
          if (probe_queries.size() >= cache_probes) break;
          if (seen_users.insert(q.user).second) probe_queries.push_back(q);
        }
      }
      const size_t probes = probe_queries.size();
      // Cold: first touch of each (user, cell, k) key populates the cache.
      std::vector<double> cold_ms, hit_ms;
      const StatsSnap cold_before = StatsSnap::Of(stack->stats);
      for (size_t i = 0; i < probes; ++i) {
        Timer t;
        const std::string body =
            client.Get(QueryTarget(probe_queries[i], k, /*nocache=*/false));
        cold_ms.push_back(t.ElapsedSeconds() * 1e3);
        STTR_CHECK_NE(body.find("\"cached\": false"), std::string::npos);
      }
      const StatsSnap cold_delta =
          StatsSnap::Of(stack->stats).Minus(cold_before);
      // One untimed warm pass: the first cache hit grows the worker's reused
      // result vector, the steady state starts at the second.
      for (size_t i = 0; i < probes; ++i) {
        const std::string body =
            client.Get(QueryTarget(probe_queries[i], k, /*nocache=*/false));
        STTR_CHECK_NE(body.find("\"cached\": true"), std::string::npos);
      }
      // Hit: identical requests again, now answered from the cache — the
      // arena, worker scratch and connection buffers are warm, so the epoll
      // core must not allocate at all from here on.
      const StatsSnap hit_before = StatsSnap::Of(stack->stats);
      for (size_t i = 0; i < probes; ++i) {
        Timer t;
        const std::string body =
            client.Get(QueryTarget(probe_queries[i], k, /*nocache=*/false));
        hit_ms.push_back(t.ElapsedSeconds() * 1e3);
        STTR_CHECK_NE(body.find("\"cached\": true"), std::string::npos);
      }
      const StatsSnap hit_delta = StatsSnap::Of(stack->stats).Minus(hit_before);
      std::sort(cold_ms.begin(), cold_ms.end());
      std::sort(hit_ms.begin(), hit_ms.end());
      const auto mean = [](const std::vector<double>& v) {
        double s = 0;
        for (double x : v) s += x;
        return v.empty() ? 0.0 : s / static_cast<double>(v.size());
      };
      LoadResult cold, hit;
      cold.requests = hit.requests = probes;
      cold.latencies_ms = cold_ms;
      hit.latencies_ms = hit_ms;
      cold.seconds = mean(cold_ms) * static_cast<double>(probes) / 1e3;
      hit.seconds = mean(hit_ms) * static_cast<double>(probes) / 1e3;
      record("serve_cache_cold", mode_name, cold, 1, 1, cold_delta);
      record("serve_cache_hit", mode_name, hit, 1, 1, hit_delta);
      std::printf("  (cache speedup: %.1fx mean;  hot path: %llu allocs / "
                  "%llu warmed hits)\n",
                  mean(cold_ms) / mean(hit_ms),
                  static_cast<unsigned long long>(hit_delta.hot_allocs),
                  static_cast<unsigned long long>(hit_delta.hot_requests));
      if (assert_zero_alloc && mode == serve::ServeMode::kEventLoop) {
        if (hit_delta.hot_requests != probes || hit_delta.hot_allocs != 0 ||
            hit_delta.loop_allocs != 0) {
          std::fprintf(stderr,
                       "[serve_loadgen] ZERO-ALLOC VIOLATION: %llu warmed "
                       "cache hits performed %llu worker allocs and %llu "
                       "event-loop allocs (expected %zu hits, 0 allocs)\n",
                       static_cast<unsigned long long>(hit_delta.hot_requests),
                       static_cast<unsigned long long>(hit_delta.hot_allocs),
                       static_cast<unsigned long long>(hit_delta.loop_allocs),
                       probes);
          zero_alloc_failed = true;
        } else {
          std::printf("  (zero-alloc assertion: %zu warmed hits, 0 allocs — "
                      "ok)\n",
                      probes);
        }
      }
    }

    // ---- Scenario 4: many idle connections, few loaded. -------------------
    // The shape the epoll core exists for: the surplus over --clients sits
    // in established keep-alive connections doing nothing while the loaded
    // clients run the closed loop. The blocking core pins a thread per
    // connection, so its stack gets one worker per connection — the price
    // thread-per-connection pays to merely hold them.
    if (connections > clients) {
      StackOptions so = base;
      so.batch_pairs = batch_pairs;
      if (mode == serve::ServeMode::kBlocking) {
        so.workers = std::max(server_workers, connections + clients);
        std::printf("  (blocking mode: %zu worker threads to hold %zu "
                    "connections)\n",
                    so.workers, connections);
      }
      auto stack =
          StartStack(ws.world.dataset, ws.split, model_cfg, ckpt_dir, so);
      std::vector<std::unique_ptr<HttpClient>> idle;
      idle.reserve(connections - clients);
      for (size_t i = 0; i < connections - clients; ++i) {
        idle.push_back(std::make_unique<HttpClient>(stack->server->port()));
        // One round-trip pins the connection as established keep-alive.
        idle.back()->Get("/healthz");
      }
      warmup(stack->server->port());
      const StatsSnap before = StatsSnap::Of(stack->stats);
      const LoadResult r = RunClosedLoop(stack->server->port(), queries, k,
                                         /*nocache=*/true, clients,
                                         duration_s);
      record("serve_idle_conns", mode_name, r, clients, connections,
             StatsSnap::Of(stack->stats).Minus(before));
    }

    // ---- Optional scenario 5: open loop at a fixed arrival rate. ----------
    if (open_qps > 0) {
      StackOptions so = base;
      so.batch_pairs = batch_pairs;
      auto stack =
          StartStack(ws.world.dataset, ws.split, model_cfg, ckpt_dir, so);
      warmup(stack->server->port());
      const StatsSnap before = StatsSnap::Of(stack->stats);
      const LoadResult r =
          RunOpenLoop(stack->server->port(), queries, k, /*nocache=*/true,
                      clients, duration_s, open_qps);
      record(StrFormat("serve_open_%.0fqps", open_qps), mode_name, r, clients,
             clients, StatsSnap::Of(stack->stats).Minus(before));
    }
  }

  // ---- JSON emission for tools/summarize_bench.py. ------------------------
  std::ostringstream json;
  json << "{\n  \"bench\": \"serve_loadgen\", \"threads\": "
       << server_workers << ",\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"kernel\": \"" << r.kernel << "\", \"mode\": \"" << r.mode
         << "\", \"n\": " << r.n << ", \"clients\": " << r.clients
         << ", \"connections\": " << r.connections
         << ", \"seconds\": " << r.seconds
         << ", \"qps\": " << StrFormat("%.1f", r.qps)
         << ", \"mean_ms\": " << StrFormat("%.4f", r.mean_ms)
         << ", \"p50_ms\": " << StrFormat("%.4f", r.p50_ms)
         << ", \"p99_ms\": " << StrFormat("%.4f", r.p99_ms);
    if (r.allocs_per_req >= 0) {
      json << ", \"allocs_per_req\": " << StrFormat("%.2f", r.allocs_per_req)
           << ", \"sys_per_req\": " << StrFormat("%.2f", r.sys_per_req);
    }
    if (r.hot_allocs_per_hit >= 0) {
      json << ", \"hot_allocs_per_hit\": "
           << StrFormat("%.2f", r.hot_allocs_per_hit);
    }
    if (r.dropped >= 0) {
      json << ", \"dropped\": " << r.dropped << ", \"late\": " << r.late;
    }
    if (r.speedup_vs_nobatch > 0) {
      json << ", \"speedup_vs_nobatch\": "
           << StrFormat("%.3f", r.speedup_vs_nobatch);
    }
    json << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  const std::string out_prefix = flags.GetString("out", "");
  if (!out_prefix.empty()) {
    const std::string path = out_prefix + "serve_loadgen.json";
    std::ofstream out(path);
    out << json.str();
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::cout << json.str();
  }

  if (zero_alloc_failed) return 1;
  if (assert_zero_alloc) {
    for (const Row& r : rows) {
      if (r.qps <= 0.0) {
        std::fprintf(stderr, "[serve_loadgen] %s [%s]: zero qps\n",
                     r.kernel.c_str(), r.mode.c_str());
        return 1;
      }
    }
    std::printf("[serve_loadgen] smoke checks passed\n");
  }
  return 0;
}

}  // namespace
}  // namespace sttr::bench

int main(int argc, char** argv) { return sttr::bench::Main(argc, argv); }
