// Load generator for the online serving subsystem. Spins the full serving
// stack (ModelBundle + CandidateIndex + ScoreBatcher + ResultCache +
// RecommendServer) in-process on an ephemeral loopback port, then drives it
// with real HTTP clients over persistent connections and measures
// client-side latency and throughput:
//
//   serve_nobatch     closed-loop, no batcher at all (handlers score
//                     inline), cache bypassed — the per-request baseline
//   serve_batched     same traffic with micro-batching on — the tentpole
//                     throughput win
//   serve_cache_cold  single client, distinct (user, cell) per request,
//                     cache bypassed — cold-path latency
//   serve_cache_hit   same requests repeated against a warm cache
//
// With --open_qps=N an open-loop scenario is added: clients fire at a fixed
// schedule regardless of completions, the honest way to measure latency
// under a target arrival rate.
//
// With --out=<prefix>, emits <prefix>serve_loadgen.json for
// tools/summarize_bench.py. A checkpoint is trained into --ckpt_dir (a temp
// directory by default) unless one is already there.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "serve/batcher.h"
#include "serve/candidate_index.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace sttr::bench {
namespace {

// -- Minimal blocking HTTP client over a persistent loopback connection. -------

class HttpClient {
 public:
  explicit HttpClient(int port) : port_(port) { Connect(); }
  ~HttpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// One GET round-trip; returns the response body. Reconnects on a dropped
  /// connection.
  std::string Get(const std::string& target) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (fd_ < 0) Connect();
      const std::string request = "GET " + target +
                                  " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
      if (!SendAll(request)) {
        Disconnect();
        continue;
      }
      std::string body;
      if (ReadResponse(&body)) return body;
      Disconnect();
    }
    STTR_CHECK(false) << "HTTP request failed twice: " << target;
    return "";
  }

 private:
  void Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    STTR_CHECK_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    STTR_CHECK_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << "cannot connect to loopback server on port " << port_;
  }

  void Disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool SendAll(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadResponse(std::string* body) {
    // Headers, then Content-Length bytes of body.
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    const std::string head = ToLower(buffer_.substr(0, header_end));
    const size_t cl = head.find("content-length:");
    STTR_CHECK_NE(cl, std::string::npos);
    const size_t length = static_cast<size_t>(
        std::strtoull(head.c_str() + cl + 15, nullptr, 10));
    const size_t total = header_end + 4 + length;
    while (buffer_.size() < total) {
      if (!Fill()) return false;
    }
    *body = buffer_.substr(header_end + 4, length);
    buffer_.erase(0, total);
    return true;
  }

  bool Fill() {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int port_;
  int fd_ = -1;
  std::string buffer_;
};

// -- Workload -------------------------------------------------------------------

/// One pre-generated query: a user at a POI's location in the target city.
struct Query {
  UserId user;
  double lat;
  double lon;
};

std::vector<Query> MakeQueries(const Dataset& dataset, CityId city,
                               size_t count, Rng& rng) {
  const auto& pois = dataset.PoisInCity(city);
  STTR_CHECK(!pois.empty());
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const Poi& poi =
        dataset.poi(pois[rng.UniformInt(static_cast<uint64_t>(pois.size()))]);
    queries.push_back(Query{
        static_cast<UserId>(
            rng.UniformInt(static_cast<uint64_t>(dataset.num_users()))),
        poi.location.lat, poi.location.lon});
  }
  return queries;
}

std::string QueryTarget(const Query& q, size_t k, bool nocache) {
  std::string target = "/recommend?user=" + std::to_string(q.user) +
                       "&lat=" + StrFormat("%.8f", q.lat) +
                       "&lon=" + StrFormat("%.8f", q.lon) +
                       "&k=" + std::to_string(k);
  if (nocache) target += "&nocache=1";
  return target;
}

struct LoadResult {
  size_t requests = 0;
  double seconds = 0.0;
  std::vector<double> latencies_ms;  // sorted after the run

  double qps() const { return static_cast<double>(requests) / seconds; }
  double PercentileMs(double p) const {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = std::min(
        latencies_ms.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_ms.size())));
    return latencies_ms[idx];
  }
  double MeanMs() const {
    double sum = 0;
    for (double v : latencies_ms) sum += v;
    return latencies_ms.empty() ? 0.0
                                : sum / static_cast<double>(latencies_ms.size());
  }
};

/// Closed loop: `num_clients` threads issue back-to-back requests from their
/// slice of `queries` for `duration_s` seconds.
LoadResult RunClosedLoop(int port, const std::vector<Query>& queries, size_t k,
                         bool nocache, size_t num_clients, double duration_s) {
  std::atomic<size_t> total_requests{0};
  std::vector<std::vector<double>> latencies(num_clients);
  std::vector<std::thread> clients;
  Timer wall;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client(port);
      auto& lat = latencies[c];
      size_t i = c;  // interleaved slices, so clients hit different users
      const auto stop_at =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(duration_s));
      while (std::chrono::steady_clock::now() < stop_at) {
        const Query& q = queries[i % queries.size()];
        i += num_clients;
        Timer t;
        const std::string body = client.Get(QueryTarget(q, k, nocache));
        lat.push_back(t.ElapsedSeconds() * 1e3);
        STTR_CHECK_NE(body.find("\"results\""), std::string::npos) << body;
        total_requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  LoadResult result;
  result.seconds = wall.ElapsedSeconds();
  result.requests = total_requests.load();
  for (auto& lat : latencies) {
    result.latencies_ms.insert(result.latencies_ms.end(), lat.begin(),
                               lat.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

/// Open loop: requests depart on a fixed schedule of `qps` spread over
/// `num_clients` connections; latency includes any queueing behind a slow
/// server (no coordinated omission).
LoadResult RunOpenLoop(int port, const std::vector<Query>& queries, size_t k,
                       bool nocache, size_t num_clients, double duration_s,
                       double qps) {
  std::atomic<size_t> total_requests{0};
  std::vector<std::vector<double>> latencies(num_clients);
  std::vector<std::thread> clients;
  const double per_client_interval_s =
      static_cast<double>(num_clients) / qps;
  Timer wall;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client(port);
      auto& lat = latencies[c];
      size_t i = c;
      const auto start = std::chrono::steady_clock::now();
      const auto interval =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(per_client_interval_s));
      auto next_departure = start;
      const auto stop_at =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(duration_s));
      while (next_departure < stop_at) {
        std::this_thread::sleep_until(next_departure);
        const Query& q = queries[i % queries.size()];
        i += num_clients;
        // Latency is measured from the scheduled departure, so server-side
        // queueing delay is charged to the request.
        const auto scheduled = next_departure;
        next_departure += interval;
        const std::string body = client.Get(QueryTarget(q, k, nocache));
        lat.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - scheduled)
                          .count() *
                      1e3);
        STTR_CHECK_NE(body.find("\"results\""), std::string::npos) << body;
        total_requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  LoadResult result;
  result.seconds = wall.ElapsedSeconds();
  result.requests = total_requests.load();
  for (auto& lat : latencies) {
    result.latencies_ms.insert(result.latencies_ms.end(), lat.begin(),
                               lat.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

// -- Serving stack assembled per scenario. --------------------------------------

struct ServeStack {
  serve::ServeStats stats;
  std::unique_ptr<serve::ModelBundle> bundle;
  std::unique_ptr<serve::CandidateIndex> index;
  std::unique_ptr<serve::ScoreBatcher> batcher;
  std::unique_ptr<serve::ResultCache> cache;
  std::unique_ptr<serve::RecommendServer> server;

  ~ServeStack() {
    if (server != nullptr) server->Shutdown();
    if (batcher != nullptr) batcher->Stop();
  }
};

std::unique_ptr<ServeStack> StartStack(const Dataset& dataset,
                                       const CrossCitySplit& split,
                                       const StTransRecConfig& model_cfg,
                                       const std::string& ckpt_dir,
                                       size_t batch_pairs, size_t workers,
                                       size_t min_candidates) {
  auto stack = std::make_unique<ServeStack>();

  serve::ModelBundleConfig bundle_cfg;
  bundle_cfg.checkpoint_dir = ckpt_dir;
  bundle_cfg.model = model_cfg;
  stack->bundle =
      std::make_unique<serve::ModelBundle>(dataset, split, bundle_cfg);
  STTR_CHECK_OK(stack->bundle->LoadInitial());

  serve::CandidateIndexConfig index_cfg;
  index_cfg.min_candidates = min_candidates;
  stack->index =
      std::make_unique<serve::CandidateIndex>(dataset, &split, index_cfg);

  // batch_pairs == 0 disables the batcher entirely: handlers score inline,
  // the honest per-request baseline.
  if (batch_pairs > 0) {
    serve::BatcherConfig batcher_cfg;
    batcher_cfg.max_batch_pairs = batch_pairs;
    batcher_cfg.max_wait = std::chrono::microseconds(300);
    stack->batcher =
        std::make_unique<serve::ScoreBatcher>(batcher_cfg, &stack->stats);
    stack->batcher->Start();
  }

  serve::ResultCacheConfig cache_cfg;
  cache_cfg.ttl = std::chrono::milliseconds(0);  // no expiry during the run
  stack->cache = std::make_unique<serve::ResultCache>(cache_cfg);

  serve::ServerConfig server_cfg;
  server_cfg.num_workers = workers;
  server_cfg.default_city = split.target_city;
  stack->server = std::make_unique<serve::RecommendServer>(
      server_cfg, dataset, stack->bundle.get(), stack->index.get(),
      stack->batcher.get(), stack->cache.get(), &stack->stats);
  STTR_CHECK_OK(stack->server->Start());
  return stack;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.Define("dataset", "world preset: foursquare | yelp", "foursquare");
  flags.Define("scale", "world size: tiny | small | paper", "small");
  flags.Define("seed", "world seed override (0 = preset default)", "0");
  flags.Define("epochs", "training epochs for the served model", "1");
  flags.Define("ckpt_dir",
               "checkpoint directory (default: fresh temp dir; reused when "
               "it already holds a matching checkpoint)");
  flags.Define("clients", "concurrent closed-loop client connections", "8");
  flags.Define("duration_s", "seconds per scenario", "3");
  flags.Define("k", "top-K per request", "10");
  flags.Define("min_candidates", "candidate list size target", "200");
  flags.Define("batch_pairs", "micro-batch flush threshold", "512");
  flags.Define("server_workers", "HTTP handler threads", "8");
  flags.Define("open_qps", "extra open-loop scenario at this arrival rate "
               "(0 = off)", "0");
  flags.Define("cache_probes", "requests in the cold/hit comparison", "64");
  flags.Define("out", "JSON output path prefix");
  STTR_CHECK_OK(flags.Parse(argc, argv));
  if (flags.Has("help")) {
    std::fputs(flags.HelpText("serve_loadgen", "[flags]",
                              "Open/closed-loop load generator for the "
                              "serving subsystem.")
                   .c_str(),
               stdout);
    return 0;
  }

  const BenchOptions opts = BenchOptions::Parse(argc, argv);
  const std::string dataset_name = flags.GetString("dataset", "foursquare");
  WorldAndSplit ws = MakeWorld(dataset_name, opts);

  StTransRecConfig model_cfg = opts.DeepConfig();
  if (opts.epochs == 0) model_cfg.num_epochs = 1;  // serving, not accuracy
  ApplyPaperArchitecture(dataset_name, model_cfg);

  std::string ckpt_dir = flags.GetString("ckpt_dir", "");
  if (ckpt_dir.empty()) {
    ckpt_dir = (std::filesystem::temp_directory_path() /
                ("sttr_serve_loadgen_" + std::to_string(::getpid())))
                   .string();
  }
  if (!FindLatestValidCheckpoint(*Env::Default(), ckpt_dir).ok()) {
    std::printf("[serve_loadgen] training %zu epoch(s) into %s ...\n",
                model_cfg.num_epochs, ckpt_dir.c_str());
    StTransRecConfig train_cfg = model_cfg;
    train_cfg.checkpoint_dir = ckpt_dir;
    StTransRec trainer(train_cfg);
    STTR_CHECK_OK(trainer.Fit(ws.world.dataset, ws.split));
  }

  const size_t clients =
      static_cast<size_t>(flags.GetInt("clients", 8));
  const double duration_s = flags.GetDouble("duration_s", 3.0);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const size_t min_candidates =
      static_cast<size_t>(flags.GetInt("min_candidates", 200));
  const size_t batch_pairs =
      static_cast<size_t>(flags.GetInt("batch_pairs", 512));
  const size_t server_workers =
      static_cast<size_t>(flags.GetInt("server_workers", 8));
  const double open_qps = flags.GetDouble("open_qps", 0.0);
  const size_t cache_probes =
      static_cast<size_t>(flags.GetInt("cache_probes", 64));

  Rng rng(opts.seed == 0 ? 1234 : opts.seed);
  const std::vector<Query> queries =
      MakeQueries(ws.world.dataset, ws.split.target_city, 4096, rng);

  struct Row {
    std::string kernel;
    size_t n;
    size_t clients;
    double seconds;
    double qps;
    double mean_ms, p50_ms, p99_ms;
    double speedup_vs_nobatch = 0.0;
  };
  std::vector<Row> rows;
  const auto record = [&](const std::string& kernel, const LoadResult& r,
                          size_t n_clients) {
    rows.push_back(Row{kernel, r.requests, n_clients, r.seconds, r.qps(),
                       r.MeanMs(), r.PercentileMs(0.50),
                       r.PercentileMs(0.99)});
    std::printf("%-18s clients=%zu  %6zu req  %8.1f qps  mean %7.3fms  "
                "p50 %7.3fms  p99 %7.3fms\n",
                kernel.c_str(), n_clients, r.requests, r.qps(), r.MeanMs(),
                r.PercentileMs(0.50), r.PercentileMs(0.99));
  };

  // Untimed warmup ahead of each timed window: faults in the model pages,
  // grows the heap and warms the TCP path, so scenario 1 doesn't pay the
  // process's one-time costs and bias the comparison.
  const auto warmup = [&](int port) {
    RunClosedLoop(port, queries, k, /*nocache=*/true, clients,
                  std::min(1.0, duration_s / 4.0));
  };

  // ---- Scenario 1: per-request scoring (no batcher, cache bypassed). ------
  {
    auto stack = StartStack(ws.world.dataset, ws.split, model_cfg, ckpt_dir,
                            /*batch_pairs=*/0, server_workers,
                            min_candidates);
    warmup(stack->server->port());
    record("serve_nobatch",
           RunClosedLoop(stack->server->port(), queries, k, /*nocache=*/true,
                         clients, duration_s),
           clients);
  }

  // ---- Scenario 2: micro-batched scoring (cache still bypassed). ----------
  {
    auto stack = StartStack(ws.world.dataset, ws.split, model_cfg, ckpt_dir,
                            batch_pairs, server_workers, min_candidates);
    warmup(stack->server->port());
    record("serve_batched",
           RunClosedLoop(stack->server->port(), queries, k, /*nocache=*/true,
                         clients, duration_s),
           clients);
    const uint64_t batches = stack->stats.batches.load();
    const uint64_t batched = stack->stats.batched_requests.load();
    std::printf("  (batch occupancy: %.2f requests/flush over %llu "
                "flushes)\n",
                batches == 0 ? 0.0
                             : static_cast<double>(batched) /
                                   static_cast<double>(batches),
                static_cast<unsigned long long>(batches));
  }
  rows[1].speedup_vs_nobatch = rows[1].qps / rows[0].qps;
  rows[0].speedup_vs_nobatch = 1.0;

  // ---- Scenario 3: cache cold vs hit, single client. ----------------------
  {
    auto stack = StartStack(ws.world.dataset, ws.split, model_cfg, ckpt_dir,
                            batch_pairs, server_workers, min_candidates);
    HttpClient client(stack->server->port());
    const size_t probes = std::min(cache_probes, queries.size());
    // Cold: first touch of each (user, cell, k) key populates the cache.
    std::vector<double> cold_ms, hit_ms;
    for (size_t i = 0; i < probes; ++i) {
      Timer t;
      const std::string body =
          client.Get(QueryTarget(queries[i], k, /*nocache=*/false));
      cold_ms.push_back(t.ElapsedSeconds() * 1e3);
      STTR_CHECK_NE(body.find("\"cached\": false"), std::string::npos);
    }
    // Hit: identical requests again, now answered from the cache.
    for (size_t i = 0; i < probes; ++i) {
      Timer t;
      const std::string body =
          client.Get(QueryTarget(queries[i], k, /*nocache=*/false));
      hit_ms.push_back(t.ElapsedSeconds() * 1e3);
      STTR_CHECK_NE(body.find("\"cached\": true"), std::string::npos);
    }
    std::sort(cold_ms.begin(), cold_ms.end());
    std::sort(hit_ms.begin(), hit_ms.end());
    const auto mean = [](const std::vector<double>& v) {
      double s = 0;
      for (double x : v) s += x;
      return v.empty() ? 0.0 : s / static_cast<double>(v.size());
    };
    LoadResult cold, hit;
    cold.requests = hit.requests = probes;
    cold.latencies_ms = cold_ms;
    hit.latencies_ms = hit_ms;
    cold.seconds = mean(cold_ms) * static_cast<double>(probes) / 1e3;
    hit.seconds = mean(hit_ms) * static_cast<double>(probes) / 1e3;
    record("serve_cache_cold", cold, 1);
    record("serve_cache_hit", hit, 1);
    std::printf("  (cache speedup: %.1fx mean)\n",
                mean(cold_ms) / mean(hit_ms));
  }

  // ---- Optional scenario 4: open loop at a fixed arrival rate. ------------
  if (open_qps > 0) {
    auto stack = StartStack(ws.world.dataset, ws.split, model_cfg, ckpt_dir,
                            batch_pairs, server_workers, min_candidates);
    record(StrFormat("serve_open_%.0fqps", open_qps),
           RunOpenLoop(stack->server->port(), queries, k, /*nocache=*/true,
                       clients, duration_s, open_qps),
           clients);
  }

  // ---- JSON emission for tools/summarize_bench.py. ------------------------
  std::ostringstream json;
  json << "{\n  \"bench\": \"serve_loadgen\", \"threads\": "
       << server_workers << ",\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"kernel\": \"" << r.kernel << "\", \"n\": " << r.n
         << ", \"clients\": " << r.clients << ", \"seconds\": " << r.seconds
         << ", \"qps\": " << StrFormat("%.1f", r.qps)
         << ", \"mean_ms\": " << StrFormat("%.4f", r.mean_ms)
         << ", \"p50_ms\": " << StrFormat("%.4f", r.p50_ms)
         << ", \"p99_ms\": " << StrFormat("%.4f", r.p99_ms);
    if (r.speedup_vs_nobatch > 0) {
      json << ", \"speedup_vs_nobatch\": "
           << StrFormat("%.3f", r.speedup_vs_nobatch);
    }
    json << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  const std::string out_prefix = flags.GetString("out", "");
  if (!out_prefix.empty()) {
    const std::string path = out_prefix + "serve_loadgen.json";
    std::ofstream out(path);
    out << json.str();
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::cout << json.str();
  }
  return 0;
}

}  // namespace
}  // namespace sttr::bench

int main(int argc, char** argv) { return sttr::bench::Main(argc, argv); }
