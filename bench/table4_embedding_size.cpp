// Table 4: recommendation performance vs embedding size {16, 32, 64, 128}
// at k in {2, 4}, on both worlds. The MLP tower scales with the embedding
// (first hidden = 2x embedding, halving per layer, as in the paper's
// architectures). Paper: optimum 64 on Foursquare (overfit past it),
// 128 on Yelp.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  for (const char* dataset : {"foursquare", "yelp"}) {
    const auto ws = bench::MakeWorld(dataset, opts);
    StTransRecConfig deep = opts.DeepConfig();
    bench::ApplyPaperArchitecture(dataset, deep);
    // Sweeps retrain the model many times; default to a lighter epoch
    // budget unless --epochs overrides it.
    if (opts.epochs == 0) deep.num_epochs = 5;
    std::printf("\n[table4] embedding-size sweep, %s-like world\n", dataset);
    bench::RunParameterSweep(
        ws.world.dataset, ws.split, deep, opts.Eval(), "dim",
        {16, 32, 64, 128},
        [](double v, StTransRecConfig& cfg) {
          const size_t d = static_cast<size_t>(v);
          cfg.embedding_dim = d;
          cfg.hidden_dims = {2 * d, d, d / 2, d / 4};
        },
        {2, 4}, opts.out_prefix.empty() ? "" : opts.out_prefix + "_" + dataset,
        opts.verbose);
  }
  return 0;
}
