// Table 5: recommendation performance vs number of hidden layers
// {1, 2, 3, 4} at k in {2, 4}. Deeper towers model the user-POI
// interaction better; the paper finds 4 layers best on both datasets.
// Layer widths follow the paper's tower: depth L keeps the last L widths
// of the full pyramid (e.g. Foursquare depth 2 -> 32 -> 16).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  for (const char* dataset : {"foursquare", "yelp"}) {
    const auto ws = bench::MakeWorld(dataset, opts);
    StTransRecConfig deep = opts.DeepConfig();
    bench::ApplyPaperArchitecture(dataset, deep);
    // Sweeps retrain the model many times; default to a lighter epoch
    // budget unless --epochs overrides it.
    if (opts.epochs == 0) deep.num_epochs = 5;
    const std::vector<size_t> full = deep.hidden_dims;
    std::printf("\n[table5] hidden-layer-depth sweep, %s-like world\n",
                dataset);
    bench::RunParameterSweep(
        ws.world.dataset, ws.split, deep, opts.Eval(), "layers",
        {1, 2, 3, 4},
        [full](double v, StTransRecConfig& cfg) {
          const size_t depth = static_cast<size_t>(v);
          cfg.hidden_dims.assign(full.end() - static_cast<long>(depth),
                                 full.end());
        },
        {2, 4}, opts.out_prefix.empty() ? "" : opts.out_prefix + "_" + dataset,
        opts.verbose);
  }
  return 0;
}
