// Sharded-gather microbenchmark: fan-out latency of the ShardedEmbeddingStore
// against in-process ShardServers as the shard count grows, with every
// gathered batch verified byte-for-byte against the InProcessEmbeddingStore
// oracle; plus a kill-a-shard availability drill — the failure/fail-fast/
// recovery timeline a production outage would trace through the circuit
// breaker. With --out=<prefix>, emits <prefix>micro_shard_gather.json for
// tools/summarize_bench.py — the source of the sharded-store rows in
// EXPERIMENTS.md.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/st_transrec.h"
#include "serve/embedding_store.h"
#include "serve/shard_server.h"
#include "serve/sharded_store.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sttr::bench {
namespace {

using serve::EmbeddingTable;

double PercentileUs(std::vector<double>& us, double p) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(us.size() - 1));
  return us[i];
}

struct Fleet {
  std::vector<std::unique_ptr<serve::ShardServer>> servers;
  std::vector<int> ports;

  Fleet(const StTransRec& model, size_t num_shards) {
    for (size_t s = 0; s < num_shards; ++s) {
      servers.push_back(std::make_unique<serve::ShardServer>(
          serve::ShardServerConfig{}, serve::BuildShardSlice(model, s,
                                                             num_shards)));
      STTR_CHECK_OK(servers.back()->Start());
      ports.push_back(servers.back()->port());
    }
  }
  ~Fleet() {
    for (auto& s : servers) s->Shutdown();
  }
};

int Main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const BenchOptions opts = BenchOptions::Parse(argc, argv);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 200));

  WorldAndSplit ws = MakeWorld("foursquare", opts);
  StTransRecConfig cfg = opts.DeepConfig();
  ApplyPaperArchitecture("foursquare", cfg);
  // Gather latency depends on table shapes, not model quality: one epoch.
  if (opts.epochs == 0) cfg.num_epochs = 1;
  auto model = std::make_shared<StTransRec>(cfg);
  STTR_CHECK_OK(model->Fit(ws.world.dataset, ws.split));

  const size_t num_pois = ws.world.dataset.num_pois();
  const size_t num_users = ws.world.dataset.num_users();
  const size_t dim = model->PoiEmbeddingTable().cols();
  serve::InProcessEmbeddingStore oracle(model);

  Rng rng(opts.seed == 0 ? 42 : opts.seed);
  std::cout << "[micro_shard_gather] users=" << num_users
            << " pois=" << num_pois << " dim=" << dim << " reps=" << reps
            << "\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"micro_shard_gather\", \"dim\": " << dim
       << ", \"pois\": " << num_pois << ",\n  \"latency\": [\n";
  bool first = true;

  // ---- Fan-out latency vs shard count, verified against the oracle. ------
  std::cout << "\nbackend       shards    batch   p50_us    p99_us   Mrows/s"
            << "  mismatches\n";
  size_t total_mismatches = 0;
  for (const size_t num_shards : {size_t{0}, size_t{1}, size_t{2}, size_t{4}}) {
    std::unique_ptr<Fleet> fleet;
    std::unique_ptr<serve::ShardedEmbeddingStore> sharded;
    serve::EmbeddingStore* store = &oracle;
    if (num_shards > 0) {
      fleet = std::make_unique<Fleet>(*model, num_shards);
      serve::ShardedStoreOptions sopts;
      sopts.shard_ports = fleet->ports;
      sopts.default_deadline = std::chrono::milliseconds(1000);
      sharded = std::make_unique<serve::ShardedEmbeddingStore>(
          sopts, dim, num_users, num_pois);
      store = sharded.get();
    }
    for (const size_t batch : {size_t{16}, size_t{128}, size_t{1024}}) {
      std::vector<int64_t> ids(batch);
      std::vector<float> rows(batch * dim);
      std::vector<float> want(batch * dim);
      std::vector<double> us;
      us.reserve(reps);
      size_t mismatches = 0;
      for (size_t r = 0; r < reps + 10; ++r) {
        for (auto& id : ids) {
          id = static_cast<int64_t>(rng.UniformInt(num_pois));
        }
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(1);
        Timer t;
        const Status st =
            store->Gather(EmbeddingTable::kPoi, ids, rows.data(), deadline);
        const double elapsed_us = t.ElapsedSeconds() * 1e6;
        STTR_CHECK_OK(st);
        if (r < 10) continue;  // warmup: connection pools fill
        us.push_back(elapsed_us);
        STTR_CHECK_OK(oracle.Gather(EmbeddingTable::kPoi, ids, want.data(),
                                    deadline));
        if (std::memcmp(rows.data(), want.data(),
                        want.size() * sizeof(float)) != 0) {
          ++mismatches;
        }
      }
      total_mismatches += mismatches;
      const double p50 = PercentileUs(us, 0.50);
      const double p99 = PercentileUs(us, 0.99);
      std::printf("%-12s %7zu %8zu %8.1f %9.1f %9.2f %11zu\n",
                  num_shards == 0 ? "in-process" : "sharded", num_shards,
                  batch, p50, p99,
                  static_cast<double>(batch) / p50, mismatches);
      if (!first) json << ",\n";
      json << "    {\"backend\": \""
           << (num_shards == 0 ? "in_process" : "sharded")
           << "\", \"shards\": " << num_shards << ", \"batch\": " << batch
           << ", \"p50_us\": " << p50 << ", \"p99_us\": " << p99
           << ", \"mismatches\": " << mismatches << "}";
      first = false;
    }
  }
  STTR_CHECK_EQ(total_mismatches, 0u)
      << "sharded gather diverged from the in-process oracle";
  json << "\n  ],\n";

  // ---- Kill-a-shard availability drill (4 shards). -----------------------
  // Phase "up": all shards healthy. Phase "killed": shard 0 shut down —
  // requests fail (every batch spans all residues), first paying the
  // retry+reconnect path, then failing fast once the breaker trips. Phase
  // "restarted": shard back up, breaker cooldown passed — the half-open
  // probe heals the path and availability returns to 100%.
  constexpr size_t kDrillShards = 4;
  constexpr size_t kDrillBatch = 64;
  auto fleet = std::make_unique<Fleet>(*model, kDrillShards);
  serve::ShardedStoreOptions sopts;
  sopts.shard_ports = fleet->ports;
  sopts.default_deadline = std::chrono::milliseconds(50);
  sopts.max_retries = 1;
  sopts.backoff_base = std::chrono::milliseconds(1);
  sopts.trip_threshold = 3;
  sopts.open_duration = std::chrono::milliseconds(100);
  serve::ShardedEmbeddingStore store(sopts, dim, num_users, num_pois);

  std::cout << "\nkill-a-shard drill (shards=" << kDrillShards
            << ", batch=" << kDrillBatch << ", deadline=50ms)\n";
  std::cout << "phase       gathers      ok  failed   p50_us    p99_us"
            << "  shards_down\n";
  json << "  \"drill\": [\n";
  first = true;
  const auto run_phase = [&](const char* phase) {
    std::vector<int64_t> ids(kDrillBatch);
    std::vector<float> rows(kDrillBatch * dim);
    std::vector<double> us;
    size_t ok = 0;
    size_t failed = 0;
    for (size_t r = 0; r < reps; ++r) {
      for (auto& id : ids) {
        id = static_cast<int64_t>(rng.UniformInt(num_pois));
      }
      Timer t;
      const Status st =
          store.Gather(EmbeddingTable::kPoi, ids, rows.data(),
                       std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(50));
      us.push_back(t.ElapsedSeconds() * 1e6);
      st.ok() ? ++ok : ++failed;
    }
    const double p50 = PercentileUs(us, 0.50);
    const double p99 = PercentileUs(us, 0.99);
    std::printf("%-10s %8zu %7zu %7zu %8.1f %9.1f %12zu\n", phase, reps, ok,
                failed, p50, p99, store.shards_down());
    if (!first) json << ",\n";
    json << "    {\"phase\": \"" << phase << "\", \"gathers\": " << reps
         << ", \"ok\": " << ok << ", \"failed\": " << failed
         << ", \"p50_us\": " << p50 << ", \"p99_us\": " << p99
         << ", \"shards_down\": " << store.shards_down() << "}";
    first = false;
  };

  run_phase("up");
  fleet->servers[0]->Shutdown();
  run_phase("killed");
  fleet->servers[0] = std::make_unique<serve::ShardServer>(
      serve::ShardServerConfig{.port = fleet->ports[0]},
      serve::BuildShardSlice(*model, 0, kDrillShards));
  STTR_CHECK_OK(fleet->servers[0]->Start());
  std::this_thread::sleep_for(sopts.open_duration +
                              std::chrono::milliseconds(20));
  run_phase("restarted");
  json << "\n  ]\n}\n";

  if (!opts.out_prefix.empty()) {
    const std::string path = opts.out_prefix + "micro_shard_gather.json";
    std::ofstream out(path);
    out << json.str();
    std::cout << "wrote " << path << "\n";
  } else {
    std::cout << json.str();
  }
  return 0;
}

}  // namespace
}  // namespace sttr::bench

int main(int argc, char** argv) { return sttr::bench::Main(argc, argv); }
