// Serial-vs-blocked-vs-parallel GEMM throughput on the shapes the inference
// and training paths actually run (plus the canonical 512^3). Prints a table
// and, with --out=<prefix>, emits <prefix>micro_matmul.json for
// tools/summarize_bench.py.
//
// Flags (on top of the shared bench flags): --threads=N pins the worker
// count of the shared pool (must be set before the first parallel call),
// --reps=N timing repetitions (best-of).

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_util.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sttr::bench {
namespace {

/// The seed repository's GEMM: plain i-k-j with no blocking. Kept verbatim
/// as the baseline the speedup criterion is defined against.
Tensor SeedMatMul(const Tensor& a, const Tensor& b) {
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  STTR_CHECK_EQ(k, b.rows());
  Tensor c({n, m});
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.row(kk);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

struct GemmResult {
  std::string kernel;
  size_t n, k, m, threads;
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup_vs_seed = 1.0;
};

template <typename Fn>
double BestOf(size_t reps, const Fn& fn) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

void AppendJson(std::ostringstream& json, const GemmResult& r, bool first) {
  if (!first) json << ",\n";
  json << "    {\"kernel\": \"" << r.kernel << "\", \"n\": " << r.n
       << ", \"k\": " << r.k << ", \"m\": " << r.m
       << ", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
       << ", \"gflops\": " << r.gflops
       << ", \"speedup_vs_seed\": " << r.speedup_vs_seed << "}";
}

int Main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  // Pin the shared pool's size before anything instantiates it.
  if (flags.Has("threads")) {
    const std::string t = flags.GetString("threads", "");
    setenv("STTR_NUM_THREADS", t.c_str(), /*overwrite=*/1);
  }
  const BenchOptions opts = BenchOptions::Parse(argc, argv);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t threads = GlobalThreadPool().num_threads();

  struct Shape {
    size_t n, k, m;
  };
  // 512^3 is the acceptance shape; the others are the MLP tower's first
  // layer on a ~100-candidate eval batch and a training-sized batch.
  const std::vector<Shape> shapes = {
      {106, 128, 128}, {640, 128, 128}, {256, 256, 256}, {512, 512, 512}};

  std::cout << "[micro_matmul] threads=" << threads << " reps=" << reps
            << "\n";
  std::cout << "kernel        n     k     m    seconds      GFLOP/s  speedup\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"micro_matmul\", \"threads\": " << threads
       << ",\n  \"results\": [\n";
  bool first = true;
  Rng rng(opts.seed == 0 ? 42 : opts.seed);
  for (const Shape& s : shapes) {
    const Tensor a = Tensor::RandomNormal({s.n, s.k}, rng);
    const Tensor b = Tensor::RandomNormal({s.k, s.m}, rng);
    const double flops = 2.0 * static_cast<double>(s.n) *
                         static_cast<double>(s.k) * static_cast<double>(s.m);

    // Keep the comparison honest: all kernels must agree.
    const Tensor ref = SeedMatMul(a, b);
    STTR_CHECK(MatMul(a, b).AllClose(ref, 1e-3, 1e-4));
    STTR_CHECK(ParallelMatMul(a, b).AllClose(ref, 1e-3, 1e-4));

    // The volatile sink keeps the optimizer from discarding the products.
    volatile float sink = 0.0f;
    const double t_seed = BestOf(reps, [&] { sink = SeedMatMul(a, b)[0]; });
    const double t_blocked = BestOf(reps, [&] { sink = MatMul(a, b)[0]; });
    const double t_parallel =
        BestOf(reps, [&] { sink = ParallelMatMul(a, b)[0]; });
    (void)sink;

    const GemmResult rows[] = {
        {"seed_naive", s.n, s.k, s.m, 1, t_seed, flops / t_seed / 1e9, 1.0},
        {"blocked", s.n, s.k, s.m, 1, t_blocked, flops / t_blocked / 1e9,
         t_seed / t_blocked},
        {"parallel", s.n, s.k, s.m, threads, t_parallel,
         flops / t_parallel / 1e9, t_seed / t_parallel},
    };
    for (const GemmResult& r : rows) {
      std::printf("%-10s %5zu %5zu %5zu %10.6f %12.2f %8.2fx\n",
                  r.kernel.c_str(), r.n, r.k, r.m, r.seconds, r.gflops,
                  r.speedup_vs_seed);
      AppendJson(json, r, first);
      first = false;
    }
  }
  json << "\n  ]\n}\n";

  if (!opts.out_prefix.empty()) {
    const std::string path = opts.out_prefix + "micro_matmul.json";
    std::ofstream out(path);
    out << json.str();
    std::cout << "wrote " << path << "\n";
  } else {
    std::cout << json.str();
  }
  return 0;
}

}  // namespace
}  // namespace sttr::bench

int main(int argc, char** argv) { return sttr::bench::Main(argc, argv); }
