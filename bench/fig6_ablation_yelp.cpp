// Figure 6: ablation of ST-TransRec on the Yelp-like world (see Figure 5).

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("yelp", opts);
  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("yelp", deep);
  std::printf("[fig6] ablation on yelp-like world (%zu test users)\n",
              ws.split.test_users.size());
  const auto runs =
      bench::RunMethods(ws.world.dataset, ws.split,
                        baselines::AblationMethodNames(), deep, opts.Eval(),
                        opts.verbose);
  bench::PrintMetricTables(runs, opts.Eval().ks, opts.out_prefix);
  return 0;
}
