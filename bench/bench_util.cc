#include "bench/bench_util.h"

#include <cstdio>

#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/svg_chart.h"
#include "util/timer.h"

namespace sttr::bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  BenchOptions opts;
  opts.scale = synth::ParseScale(flags.GetString("scale", "small"));
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  opts.epochs = static_cast<size_t>(flags.GetInt("epochs", 0));
  opts.eval_negatives =
      static_cast<size_t>(flags.GetInt("negatives", 100));
  opts.out_prefix = flags.GetString("out", "");
  opts.verbose = flags.GetBool("verbose", false);
  return opts;
}

StTransRecConfig BenchOptions::DeepConfig() const {
  StTransRecConfig cfg;
  if (epochs > 0) cfg.num_epochs = epochs;
  cfg.verbose = verbose;
  return cfg;
}

EvalConfig BenchOptions::Eval() const {
  EvalConfig cfg;
  cfg.num_negatives = eval_negatives;
  return cfg;
}

WorldAndSplit MakeWorld(const std::string& dataset_name,
                        const BenchOptions& opts) {
  synth::SynthWorldConfig cfg;
  const std::string name = ToLower(dataset_name);
  if (name == "yelp") {
    cfg = synth::SynthWorldConfig::YelpLike(opts.scale);
  } else {
    STTR_CHECK(name == "foursquare") << "unknown dataset " << dataset_name;
    cfg = synth::SynthWorldConfig::FoursquareLike(opts.scale);
  }
  if (opts.seed != 0) cfg.seed = opts.seed;
  WorldAndSplit out{synth::GenerateWorld(cfg), {}};
  out.split = MakeCrossCitySplit(out.world.dataset, cfg.target_city);
  return out;
}

void ApplyPaperArchitecture(const std::string& dataset_name,
                            StTransRecConfig& config) {
  if (ToLower(dataset_name) == "yelp") {
    config.embedding_dim = 128;
    config.hidden_dims = {256, 128, 64, 32};
    config.dropout_rate = 0.2f;
    config.resample_alpha = 0.11;
    // Per-dataset hyper-parameter like the paper's: the two-city Yelp world
    // leans harder on the textual bridge (heavier city-specific vocabulary).
    config.text_loss_weight = 5.0f;
  } else {
    config.embedding_dim = 64;
    config.hidden_dims = {128, 64, 32, 16};
    config.dropout_rate = 0.1f;
    config.resample_alpha = 0.10;
  }
}

std::vector<MethodRun> RunMethods(const Dataset& dataset,
                                  const CrossCitySplit& split,
                                  const std::vector<std::string>& names,
                                  const StTransRecConfig& deep_config,
                                  const EvalConfig& eval_config,
                                  bool verbose) {
  std::vector<MethodRun> runs;
  for (const std::string& name : names) {
    auto rec = baselines::MakeRecommender(name, deep_config);
    STTR_CHECK(rec.ok()) << rec.status().ToString();
    Timer timer;
    STTR_CHECK_OK((*rec)->Fit(dataset, split));
    MethodRun run;
    run.name = name;
    run.fit_seconds = timer.ElapsedSeconds();
    run.result = EvaluateRanking(dataset, split, **rec, eval_config);
    if (verbose) {
      STTR_LOG(Info) << name << ": fit " << run.fit_seconds << "s, Recall@10="
                     << (run.result.at_k.count(10)
                             ? run.result.At(10).recall
                             : 0.0);
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

std::string FormatMetric(double v) { return StrFormat("%.4f", v); }

void PrintMetricTables(const std::vector<MethodRun>& runs,
                       const std::vector<size_t>& ks,
                       const std::string& out_prefix) {
  struct MetricDef {
    const char* label;
    double RankingMetrics::*field;
  };
  const MetricDef defs[] = {{"Recall", &RankingMetrics::recall},
                            {"Precision", &RankingMetrics::precision},
                            {"NDCG", &RankingMetrics::ndcg},
                            {"MAP", &RankingMetrics::map}};
  for (const auto& def : defs) {
    std::vector<std::string> header{std::string("Method")};
    for (size_t k : ks) header.push_back(def.label + std::string("@") +
                                         std::to_string(k));
    TextTable table(header);
    for (const MethodRun& run : runs) {
      std::vector<std::string> row{run.name};
      for (size_t k : ks) {
        row.push_back(FormatMetric(run.result.At(k).*(def.field)));
      }
      table.AddRow(std::move(row));
    }
    std::printf("\n== %s ==\n%s", def.label, table.ToString().c_str());
    if (!out_prefix.empty()) {
      const std::string path =
          out_prefix + "_" + ToLower(def.label) + ".csv";
      STTR_CHECK_OK(table.WriteCsv(path));
      // Render the paper-figure form: metric vs k, one line per method.
      SvgLineChart chart(std::string(def.label) + "@k", "k", def.label);
      for (const MethodRun& run : runs) {
        std::vector<double> xs, ys;
        for (size_t k : ks) {
          xs.push_back(static_cast<double>(k));
          ys.push_back(run.result.At(k).*(def.field));
        }
        chart.AddSeries(run.name, std::move(xs), std::move(ys));
      }
      STTR_CHECK_OK(chart.WriteTo(out_prefix + "_" + ToLower(def.label) +
                                  ".svg"));
    }
  }
  std::printf("\nfit time per method:\n");
  for (const MethodRun& run : runs) {
    std::printf("  %-16s %.1fs\n", run.name.c_str(), run.fit_seconds);
  }
}

}  // namespace sttr::bench
