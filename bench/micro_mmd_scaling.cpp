// Micro-benchmark backing the paper's §3.2 complexity analysis: the
// quadratic MMD estimator costs O(D^2) while the linear-time form (adopted
// from Long et al.) costs O(D). google-benchmark sweeps the sample size so
// the scaling exponents are visible in the reported times.

#include <benchmark/benchmark.h>

#include "tensor/tensor.h"
#include "transfer/mmd.h"
#include "util/rng.h"

namespace {

sttr::Tensor MakeSamples(size_t n, size_t d, double mean, uint64_t seed) {
  sttr::Rng rng(seed);
  return sttr::Tensor::RandomNormal({n, d}, rng, static_cast<float>(mean),
                                    1.0f);
}

void BM_MmdQuadratic(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const sttr::Tensor a = MakeSamples(n, 32, 0.0, 1);
  const sttr::Tensor b = MakeSamples(n, 32, 1.0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sttr::MmdBiased(a, b, 1.0));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MmdQuadratic)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_MmdLinear(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const sttr::Tensor a = MakeSamples(n, 32, 0.0, 1);
  const sttr::Tensor b = MakeSamples(n, 32, 1.0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sttr::MmdLinear(a, b, 1.0));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MmdLinear)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_MmdLossBackwardQuadratic(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    sttr::ag::Variable xs(MakeSamples(n, 32, 0.0, 1), true);
    sttr::ag::Variable xt(MakeSamples(n, 32, 1.0, 2), true);
    sttr::ag::Variable loss = sttr::ag_ops::MmdLoss(xs, xt, {1.0});
    sttr::ag::Backward(loss);
    benchmark::DoNotOptimize(xs.grad().data());
  }
}
BENCHMARK(BM_MmdLossBackwardQuadratic)->Arg(64)->Arg(128);

void BM_MmdLossBackwardLinear(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    sttr::ag::Variable xs(MakeSamples(n, 32, 0.0, 1), true);
    sttr::ag::Variable xt(MakeSamples(n, 32, 1.0, 2), true);
    sttr::ag::Variable loss = sttr::ag_ops::MmdLossLinear(xs, xt, {1.0});
    sttr::ag::Backward(loss);
    benchmark::DoNotOptimize(xs.grad().data());
  }
}
BENCHMARK(BM_MmdLossBackwardLinear)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
