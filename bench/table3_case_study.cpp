// Table 3: case study for one crossing-city test user. Shows the user's
// top source-city words (their preference fingerprint) and the top-5
// target-city recommendations of the full model vs ST-TransRec-2 (no text),
// each with the POI's textual description. Ground-truth POIs are marked
// with '*'. In the paper, the full model's list matches the user's scenic/
// arts interests while the text-less variant surfaces generic popular POIs
// (airport, Thai restaurant).

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_set>

#include "bench/bench_util.h"

using namespace sttr;

namespace {

std::string WordsOf(const Dataset& data, PoiId poi, size_t max_words) {
  std::string out;
  size_t n = 0;
  for (WordId w : data.poi(poi).words) {
    if (n++ == max_words) break;
    if (!out.empty()) out += ", ";
    out += data.vocabulary().WordOf(w);
  }
  return out;
}

void PrintModelList(const Dataset& data, const CrossCitySplit& split,
                    const Recommender& model, UserId user,
                    const std::unordered_set<PoiId>& truth) {
  std::unordered_set<PoiId> visited;
  for (size_t idx : data.CheckinsOfUser(user)) {
    if (data.checkins()[idx].city != split.target_city) {
      visited.insert(data.checkins()[idx].poi);
    }
  }
  std::printf("  rank list of %s:\n", model.name().c_str());
  for (const auto& [poi, score] :
       model.RecommendTopK(data, split.target_city, user, 5, &visited)) {
    std::printf("    %c poi %-5lld score %.3f  [%s]\n",
                truth.count(poi) ? '*' : ' ', static_cast<long long>(poi),
                score, WordsOf(data, poi, 6).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("foursquare", opts);
  const Dataset& data = ws.world.dataset;

  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("foursquare", deep);

  // Pick the test user with the largest ground truth (clearest signal).
  const CrossCitySplit::TestUser* best = nullptr;
  for (const auto& tu : ws.split.test_users) {
    if (best == nullptr || tu.ground_truth.size() > best->ground_truth.size()) {
      best = &tu;
    }
  }
  STTR_CHECK(best != nullptr) << "no test users";
  const UserId user = best->user;
  std::unordered_set<PoiId> truth(best->ground_truth.begin(),
                                  best->ground_truth.end());
  std::printf("[table3] case study for crossing user #%lld (%zu ground-truth "
              "POIs in the target city)\n",
              static_cast<long long>(user), truth.size());

  // Top-10 words of the user's source-city history.
  std::map<WordId, size_t> counts;
  for (size_t idx : data.CheckinsOfUser(user)) {
    const CheckinRecord& rec = data.checkins()[idx];
    if (rec.city == ws.split.target_city) continue;
    for (WordId w : data.poi(rec.poi).words) counts[w] += 1;
  }
  std::vector<std::pair<size_t, WordId>> ranked;
  for (const auto& [w, c] : counts) ranked.emplace_back(c, w);
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("  top-10 source-city words: ");
  for (size_t i = 0; i < ranked.size() && i < 10; ++i) {
    std::printf("%s%s", i ? ", " : "",
                data.vocabulary().WordOf(ranked[i].second).c_str());
  }
  std::printf("\n\n");

  for (const char* name : {"ST-TransRec", "ST-TransRec-2"}) {
    auto model = baselines::MakeRecommender(name, deep);
    STTR_CHECK(model.ok());
    STTR_CHECK_OK((*model)->Fit(data, ws.split));
    PrintModelList(data, ws.split, **model, user, truth);
    std::printf("\n");
  }
  std::printf("('*' marks ground-truth POIs the user actually visited)\n");
  return 0;
}
