#ifndef STTR_BENCH_SWEEP_UTIL_H_
#define STTR_BENCH_SWEEP_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace sttr::bench {

/// Runs a 1-D hyper-parameter sweep of the full ST-TransRec model: for each
/// value, `mutate` adjusts the config, the model trains, and metrics at the
/// given ks are collected. Prints a paper-style metric-vs-value table and
/// flags the argmax per metric.
void RunParameterSweep(
    const Dataset& dataset, const CrossCitySplit& split,
    const StTransRecConfig& base, const EvalConfig& eval_config,
    const std::string& param_label, const std::vector<double>& values,
    const std::function<void(double, StTransRecConfig&)>& mutate,
    const std::vector<size_t>& ks, const std::string& out_prefix,
    bool verbose);

}  // namespace sttr::bench

#endif  // STTR_BENCH_SWEEP_UTIL_H_
