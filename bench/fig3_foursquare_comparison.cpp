// Figure 3: top-k performance comparison of ST-TransRec against the eight
// baselines on the Foursquare-like world (target city: los_angeles).
// Prints Recall/Precision/NDCG/MAP @ k in {2,4,6,8,10} per method.
//
// Paper reference points (Foursquare): Recall@10(ST-TransRec) ~= 0.450 with
// improvements of 39.4/10.8/22.0/20.6/9.87/6.55/2.30/2.50 % over ItemPop/
// LCE/CRCF/PR-UIDT/ST-LDA/CTLM/SH-CDL/PACE. The reproduction target is the
// ordering (deep > topic > CF > popularity), not the absolute values.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("foursquare", opts);
  std::printf("[fig3] foursquare-like world: %zu users, %zu POIs, %zu "
              "check-ins; %zu test users\n",
              ws.world.dataset.num_users(), ws.world.dataset.num_pois(),
              ws.world.dataset.num_checkins(), ws.split.test_users.size());

  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("foursquare", deep);

  const auto runs =
      bench::RunMethods(ws.world.dataset, ws.split,
                        baselines::ComparisonMethodNames(), deep,
                        opts.Eval(), opts.verbose);
  bench::PrintMetricTables(runs, opts.Eval().ks, opts.out_prefix);
  return 0;
}
