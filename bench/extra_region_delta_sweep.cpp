// Extra ablation: the region-segmentation threshold delta of Eq. 5 (the
// paper grid-searches it to 0.10 on Foursquare and 0.25 on Yelp). Small
// delta merges everything into a few regions (resampling loses its target);
// delta near 1 leaves singleton grid cells (density estimates collapse to
// per-cell counts). Prints the region counts the model actually builds and
// the end-task metrics across the sweep.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/st_transrec.h"
#include "util/table.h"

using namespace sttr;

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("foursquare", opts);
  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("foursquare", deep);
  if (opts.epochs == 0) deep.num_epochs = 6;

  std::printf("[extra] region-threshold delta sweep (foursquare-like)\n");
  TextTable table({"delta", "regions(target)", "deficit(target)",
                   "Recall@10", "NDCG@10"});
  for (const double delta : {0.0, 0.05, 0.10, 0.25, 0.5}) {
    StTransRecConfig cfg = deep;
    cfg.region_delta = delta;
    StTransRec model(cfg);
    STTR_CHECK_OK(model.Fit(ws.world.dataset, ws.split));
    EvalConfig ec = opts.Eval();
    const EvalResult r = EvaluateRanking(ws.world.dataset, ws.split, model, ec);
    const auto& rs = model.resamplers()[static_cast<size_t>(
        ws.split.target_city)];
    table.AddRow({bench::FormatMetric(delta),
                  std::to_string(rs.stats().size()),
                  std::to_string(rs.TotalDeficit()),
                  bench::FormatMetric(r.At(10).recall),
                  bench::FormatMetric(r.At(10).ndcg)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\npaper's operating point: delta = 0.10 (Foursquare).\n");
  return 0;
}
