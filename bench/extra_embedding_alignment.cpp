// Extra experiment (Fig. 1a made quantitative): the MMD transfer layer is
// supposed to pull same-meaning POIs from different cities together by
// stripping city-dependent features. We train the full model and the
// no-MMD variant on the same world and measure
//
//   * the quadratic-MMD discrepancy between source- and target-city POI
//     embedding distributions (should shrink with the transfer loss), and
//   * the topic-alignment gap: mean cosine of cross-city same-topic POI
//     pairs minus cross-city different-topic pairs (should widen), using
//     the generator's hidden topic labels.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "transfer/mmd.h"

using namespace sttr;

namespace {

struct Alignment {
  double mmd = 0;
  double same_topic_cos = 0;
  double diff_topic_cos = 0;
};

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  return dot / (std::sqrt(na * nb) + 1e-12);
}

Alignment Measure(const StTransRec& model, const synth::SynthWorld& world,
                  CityId target) {
  const Dataset& data = world.dataset;
  Alignment out;

  // Embedding distributions per side.
  std::vector<std::vector<float>> target_rows, source_rows;
  std::vector<size_t> target_topics, source_topics;
  for (const Poi& p : data.pois()) {
    auto row = model.PoiEmbedding(p.id);
    if (p.city == target) {
      target_rows.push_back(std::move(row));
      target_topics.push_back(world.truth.poi_topic[static_cast<size_t>(p.id)]);
    } else {
      source_rows.push_back(std::move(row));
      source_topics.push_back(world.truth.poi_topic[static_cast<size_t>(p.id)]);
    }
  }
  const size_t d = target_rows.front().size();
  auto to_tensor = [&](const std::vector<std::vector<float>>& rows) {
    Tensor t({rows.size(), d});
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = 0; j < d; ++j) t.at(i, j) = rows[i][j];
    }
    return t;
  };
  const Tensor ts = to_tensor(source_rows);
  const Tensor tt = to_tensor(target_rows);
  Rng rng(5);
  const double sigma = MedianHeuristicSigma(ts, tt, 2000, rng);
  out.mmd = MmdBiased(ts, tt, sigma);

  // Cross-city cosine by topic agreement (strided subsample for speed).
  double same = 0, diff = 0;
  size_t n_same = 0, n_diff = 0;
  for (size_t i = 0; i < source_rows.size(); i += 3) {
    for (size_t j = 0; j < target_rows.size(); j += 3) {
      const double c = Cosine(source_rows[i], target_rows[j]);
      if (source_topics[i] == target_topics[j]) {
        same += c;
        ++n_same;
      } else {
        diff += c;
        ++n_diff;
      }
    }
  }
  out.same_topic_cos = same / static_cast<double>(n_same);
  out.diff_topic_cos = diff / static_cast<double>(n_diff);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("foursquare", opts);
  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("foursquare", deep);
  if (opts.epochs == 0) deep.num_epochs = 6;

  std::printf("[extra] embedding alignment with vs without the MMD "
              "transfer layer (foursquare-like world)\n");
  TextTable table({"model", "MMD(source,target)", "cos same-topic x-city",
                   "cos diff-topic x-city", "alignment gap"});
  for (const bool use_mmd : {false, true}) {
    StTransRecConfig cfg = deep;
    cfg.use_mmd = use_mmd;
    StTransRec model(cfg);
    STTR_CHECK_OK(model.Fit(ws.world.dataset, ws.split));
    const Alignment a = Measure(model, ws.world, ws.split.target_city);
    table.AddRow({use_mmd ? "ST-TransRec (full)" : "no MMD (variant 1)",
                  bench::FormatMetric(a.mmd),
                  bench::FormatMetric(a.same_topic_cos),
                  bench::FormatMetric(a.diff_topic_cos),
                  bench::FormatMetric(a.same_topic_cos - a.diff_topic_cos)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nexpected shape: the full model shows a smaller MMD and a "
              "same-topic/different-topic gap at least as large — the "
              "mechanism behind Fig. 1a.\n");
  return 0;
}
