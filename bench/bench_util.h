#ifndef STTR_BENCH_BENCH_UTIL_H_
#define STTR_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/st_transrec.h"
#include "data/split.h"
#include "data/synth/world_generator.h"
#include "eval/protocol.h"
#include "util/flags.h"
#include "util/table.h"

namespace sttr::bench {

/// Options shared by every experiment driver, parsed from argv:
/// --scale=tiny|small|paper, --seed=N, --epochs=N, --negatives=N,
/// --out=<csv path prefix>, --verbose.
struct BenchOptions {
  synth::Scale scale = synth::Scale::kSmall;
  uint64_t seed = 0;  // 0 = keep the dataset preset's seed
  size_t epochs = 0;  // 0 = keep the model default
  size_t eval_negatives = 100;
  std::string out_prefix;
  bool verbose = false;

  static BenchOptions Parse(int argc, char** argv);

  /// Deep-model config with the shared defaults applied (paper's Foursquare
  /// architecture; epochs overridden when --epochs is given).
  StTransRecConfig DeepConfig() const;

  /// Eval protocol config.
  EvalConfig Eval() const;
};

/// Builds the Foursquare-like or Yelp-like world plus its split.
struct WorldAndSplit {
  synth::SynthWorld world;
  CrossCitySplit split;
};
WorldAndSplit MakeWorld(const std::string& dataset_name,
                        const BenchOptions& opts);

/// The paper's per-dataset deep settings: embedding size and tower widths
/// (Foursquare: 64, 128->64->32->16; Yelp: 128, 256->128->64->32).
void ApplyPaperArchitecture(const std::string& dataset_name,
                            StTransRecConfig& config);

/// One trained-and-evaluated method.
struct MethodRun {
  std::string name;
  EvalResult result;
  double fit_seconds = 0.0;
};

/// Fits and evaluates each named method (see baselines::MakeRecommender).
std::vector<MethodRun> RunMethods(const Dataset& dataset,
                                  const CrossCitySplit& split,
                                  const std::vector<std::string>& names,
                                  const StTransRecConfig& deep_config,
                                  const EvalConfig& eval_config, bool verbose);

/// Renders the Figure 3-6 style output: one table per metric with a row per
/// method and a column per k. Writes CSV files when out_prefix is non-empty.
void PrintMetricTables(const std::vector<MethodRun>& runs,
                       const std::vector<size_t>& ks,
                       const std::string& out_prefix);

/// Formats a metric value like the paper (4 decimals, no leading zero).
std::string FormatMetric(double v);

}  // namespace sttr::bench

#endif  // STTR_BENCH_BENCH_UTIL_H_
