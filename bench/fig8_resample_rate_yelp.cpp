// Figure 8: performance vs resampling rate alpha on the Yelp-like world,
// k in {2, 6, 10}. Paper optimum: alpha ~= 0.11.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("yelp", opts);
  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("yelp", deep);
  if (opts.epochs == 0) deep.num_epochs = 6;
  std::printf("[fig8] resample-rate sweep, yelp-like world\n");
  bench::RunParameterSweep(
      ws.world.dataset, ws.split, deep, opts.Eval(), "alpha",
      {0.0, 0.06, 0.11, 0.15, 0.5, 1.0},
      [](double v, StTransRecConfig& cfg) { cfg.resample_alpha = v; },
      {2, 6, 10}, opts.out_prefix, opts.verbose);
  return 0;
}
