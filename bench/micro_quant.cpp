// Quantized-inference microbenchmark: the fp32 ScorePairs hot path vs the
// int8 QuantizedModel on identical (user, poi) batches, the embedding-table
// byte shrink, and the ranking fidelity of the quantized scorer (HR/NDCG
// delta + top-k overlap via eval/fidelity.h). With --out=<prefix>, emits
// <prefix>micro_quant.json for tools/summarize_bench.py — the source of the
// quantization row in EXPERIMENTS.md.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_util.h"
#include "core/quantized_model.h"
#include "core/st_transrec.h"
#include "eval/fidelity.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sttr::bench {
namespace {

template <typename Fn>
double BestOf(size_t reps, const Fn& fn) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const BenchOptions opts = BenchOptions::Parse(argc, argv);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));

  WorldAndSplit ws = MakeWorld("foursquare", opts);
  StTransRecConfig cfg = opts.DeepConfig();
  ApplyPaperArchitecture("foursquare", cfg);
  StTransRec model(cfg);
  STTR_CHECK_OK(model.Fit(ws.world.dataset, ws.split));

  auto quant = QuantizedModel::Quantize(model);
  STTR_CHECK_OK(quant.status());

  const size_t num_users = ws.world.dataset.num_users();
  const size_t num_pois = ws.world.dataset.num_pois();
  const size_t fp32_bytes =
      (num_users + num_pois) * cfg.embedding_dim * sizeof(float);
  const size_t int8_bytes = quant->EmbeddingBytes();
  const double shrink =
      static_cast<double>(fp32_bytes) / static_cast<double>(int8_bytes);

  std::ostringstream json;
  json << "{\n  \"bench\": \"micro_quant\", \"threads\": 1,\n  \"results\": [\n";
  bool first = true;

  std::cout << "[micro_quant] users=" << num_users << " pois=" << num_pois
            << " dim=" << cfg.embedding_dim << " reps=" << reps << "\n";
  std::printf("embeddings: %zu bytes int8 vs %zu fp32 (%.2fx smaller)\n",
              int8_bytes, fp32_bytes, shrink);

  // ---- ScorePairs throughput, fp32 vs int8, identical batches. -----------
  std::cout << "\nkernel                pairs    seconds    Mpairs/s  speedup\n";
  Rng rng(opts.seed == 0 ? 42 : opts.seed);
  volatile double sink = 0;
  for (const size_t n : {size_t{512}, size_t{4096}, size_t{32768}}) {
    std::vector<UserId> users(n);
    std::vector<PoiId> pois(n);
    for (size_t i = 0; i < n; ++i) {
      users[i] = static_cast<UserId>(rng.UniformInt(num_users));
      pois[i] = static_cast<PoiId>(rng.UniformInt(num_pois));
    }
    const double t_fp32 =
        BestOf(reps, [&] { sink = model.ScorePairs(users, pois)[0]; });
    const double t_int8 =
        BestOf(reps, [&] { sink = quant->ScorePairs(users, pois)[0]; });
    struct Row {
      const char* name;
      double seconds;
    };
    for (const Row& r : {Row{"score_pairs_fp32", t_fp32},
                         Row{"score_pairs_int8", t_int8}}) {
      std::printf("%-18s %8zu %10.6f %11.3f %8.2fx\n", r.name, n, r.seconds,
                  static_cast<double>(n) / r.seconds / 1e6,
                  t_fp32 / r.seconds);
      if (!first) json << ",\n";
      json << "    {\"kernel\": \"" << r.name << "\", \"pairs\": " << n
           << ", \"seconds\": " << r.seconds
           << ", \"speedup_vs_fp32\": " << t_fp32 / r.seconds << "}";
      first = false;
    }
  }
  json << "\n  ],\n";

  // ---- Fidelity: full-city ranking under both scorers. -------------------
  FidelityConfig fid_cfg;
  fid_cfg.protocol = opts.Eval();
  const FidelityReport report =
      CompareScorers(ws.world.dataset, ws.split, model, *quant, fid_cfg);
  std::cout << "\n" << report.ToString();

  json << "  \"bytes\": {\"fp32_embeddings\": " << fp32_bytes
       << ", \"int8_embeddings\": " << int8_bytes
       << ", \"shrink\": " << shrink << "},\n";
  json << "  \"fidelity\": {";
  bool first_k = true;
  for (const auto& [k, at] : report.at_k) {
    if (!first_k) json << ", ";
    json << "\"hr" << k << "_ref\": " << at.hr_ref << ", \"hr" << k
         << "_cand\": " << at.hr_cand << ", \"ndcg" << k
         << "_ref\": " << at.ndcg_ref << ", \"ndcg" << k
         << "_cand\": " << at.ndcg_cand << ", \"overlap" << k
         << "\": " << at.overlap;
    first_k = false;
  }
  json << ", \"max_abs_score_delta\": " << report.max_abs_score_delta
       << ", \"mean_abs_score_delta\": " << report.mean_abs_score_delta
       << "}\n}\n";

  if (!opts.out_prefix.empty()) {
    const std::string path = opts.out_prefix + "micro_quant.json";
    std::ofstream out(path);
    out << json.str();
    std::cout << "wrote " << path << "\n";
  } else {
    std::cout << json.str();
  }
  (void)sink;
  return 0;
}

}  // namespace
}  // namespace sttr::bench

int main(int argc, char** argv) { return sttr::bench::Main(argc, argv); }
