// Figure 7: performance vs resampling rate alpha on the Foursquare-like
// world, k in {2, 6, 10}. Paper: an interior optimum at alpha ~= 0.10 —
// too little resampling leaves sparse regions under-matched, too much lets
// marginal POIs dominate the transfer.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sweep_util.h"

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("foursquare", opts);
  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("foursquare", deep);
  if (opts.epochs == 0) deep.num_epochs = 6;
  std::printf("[fig7] resample-rate sweep, foursquare-like world\n");
  bench::RunParameterSweep(
      ws.world.dataset, ws.split, deep, opts.Eval(), "alpha",
      {0.0, 0.06, 0.10, 0.15, 0.5, 1.0},
      [](double v, StTransRecConfig& cfg) { cfg.resample_alpha = v; },
      {2, 6, 10}, opts.out_prefix, opts.verbose);
  return 0;
}
