// Dense vs sparse gradient all-reduce + weight broadcast at the embedding
// table shapes the trainer actually synchronises (Foursquare: ~31.8k POIs x
// 64 dims, ~batch*(1+negatives) touched rows per step). Measures one full
// sync round per kernel: fold W replica gradients into the master, clear the
// master gradient for the next step, broadcast updated weights back. The
// dense kernel walks every table row (the seed's scheme); the sparse kernel
// walks only the union of touched rows, exactly like ParallelTrainer's
// kSparse mode (which additionally shards these loops over its pool).
//
// Prints a table and, with --out=<prefix>, emits <prefix>micro_allreduce.json
// for tools/summarize_bench.py. Flags: --reps=N timing repetitions (best-of).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_util.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sttr::bench {
namespace {

struct Setting {
  size_t rows, dim, touched, workers;
};

struct Replica {
  Tensor grad;
  Tensor value;
  std::vector<int64_t> rows;  // sorted, unique
};

template <typename Fn>
double BestOf(size_t reps, const Fn& fn) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

/// One dense sync round: reduce every row of every replica, dense-clear the
/// master gradient, broadcast the whole table to every replica.
void DenseRound(Tensor& mg, Tensor& mv, std::vector<Replica>& reps) {
  const size_t n = mg.rows(), d = mg.cols();
  const float inv = 1.0f / static_cast<float>(reps.size());
  for (const Replica& r : reps) {
    for (size_t i = 0; i < n; ++i) {
      simd::Axpy(mg.row(i), r.grad.row(i), inv, d);
    }
  }
  mg.Fill(0.0f);
  for (Replica& r : reps) {
    std::memcpy(r.value.data(), mv.data(), n * d * sizeof(float));
  }
}

/// One sparse sync round: merge the replicas' touched-row lists, reduce and
/// broadcast only those rows, row-clear the master gradient.
void SparseRound(Tensor& mg, Tensor& mv, std::vector<Replica>& reps,
                 std::vector<int64_t>& merged) {
  const size_t d = mg.cols();
  const float inv = 1.0f / static_cast<float>(reps.size());
  merged.clear();
  for (const Replica& r : reps) {
    merged.insert(merged.end(), r.rows.begin(), r.rows.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  for (const Replica& r : reps) {
    for (int64_t row : r.rows) {
      const size_t i = static_cast<size_t>(row);
      simd::Axpy(mg.row(i), r.grad.row(i), inv, d);
    }
  }
  for (int64_t row : merged) {
    float* g = mg.row(static_cast<size_t>(row));
    std::fill(g, g + d, 0.0f);
  }
  for (Replica& r : reps) {
    for (int64_t row : merged) {
      const size_t i = static_cast<size_t>(row);
      std::memcpy(r.value.row(i), mv.row(i), d * sizeof(float));
    }
  }
}

int Main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const BenchOptions opts = BenchOptions::Parse(argc, argv);
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 20));
  Rng rng(opts.seed == 0 ? 42 : opts.seed);

  // Foursquare-paper scale (31.8k POIs), Yelp-paper scale (19k POIs) and a
  // synthetic-world scale; touched ~= batch * (1 + negatives).
  const std::vector<Setting> settings = {
      {31800, 64, 640, 2},
      {31800, 64, 640, 4},
      {18995, 64, 640, 2},
      {4000, 32, 320, 2},
  };

  std::cout << "[micro_allreduce] reps=" << reps << " (best-of)\n";
  std::cout << "kernel   rows   dim  touched workers    seconds  speedup\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"micro_allreduce\", \"threads\": 1,\n"
       << "  \"results\": [\n";
  bool first = true;
  for (const Setting& s : settings) {
    Tensor mg({s.rows, s.dim});
    Tensor mv = Tensor::RandomNormal({s.rows, s.dim}, rng);
    std::vector<Replica> replicas;
    const size_t per_worker = s.touched / s.workers;
    for (size_t w = 0; w < s.workers; ++w) {
      Replica r{Tensor({s.rows, s.dim}),
                Tensor({s.rows, s.dim}), {}};
      for (size_t t = 0; t < per_worker; ++t) {
        r.rows.push_back(static_cast<int64_t>(rng.UniformInt(s.rows)));
      }
      std::sort(r.rows.begin(), r.rows.end());
      r.rows.erase(std::unique(r.rows.begin(), r.rows.end()), r.rows.end());
      for (int64_t row : r.rows) {
        float* g = r.grad.row(static_cast<size_t>(row));
        for (size_t j = 0; j < s.dim; ++j) {
          g[j] = static_cast<float>(rng.Normal(0.0, 1.0));
        }
      }
      replicas.push_back(std::move(r));
    }

    // Both kernels must produce the same reduced gradient (untouched replica
    // rows are zero, so the dense walk adds nothing the sparse walk skips).
    std::vector<int64_t> merged;
    {
      Tensor check_dense({s.rows, s.dim});
      Tensor check_sparse({s.rows, s.dim});
      const float inv = 1.0f / static_cast<float>(s.workers);
      for (const Replica& r : replicas) {
        for (size_t i = 0; i < s.rows; ++i) {
          simd::Axpy(check_dense.row(i), r.grad.row(i), inv, s.dim);
        }
        for (int64_t row : r.rows) {
          const size_t i = static_cast<size_t>(row);
          simd::Axpy(check_sparse.row(i), r.grad.row(i), inv, s.dim);
        }
      }
      STTR_CHECK_EQ(0, std::memcmp(check_dense.data(), check_sparse.data(),
                                   s.rows * s.dim * sizeof(float)))
          << "sparse reduce diverged from dense";
    }

    const double t_dense =
        BestOf(reps, [&] { DenseRound(mg, mv, replicas); });
    const double t_sparse =
        BestOf(reps, [&] { SparseRound(mg, mv, replicas, merged); });
    const double speedup = t_dense / t_sparse;

    struct Row {
      const char* kernel;
      double seconds, speedup;
    };
    const Row rows[] = {{"dense", t_dense, 1.0},
                        {"sparse", t_sparse, speedup}};
    for (const Row& r : rows) {
      std::printf("%-7s %6zu %5zu %7zu %7zu %10.6f %7.2fx\n", r.kernel,
                  s.rows, s.dim, s.touched, s.workers, r.seconds, r.speedup);
      if (!first) json << ",\n";
      json << "    {\"kernel\": \"" << r.kernel << "\", \"rows\": " << s.rows
           << ", \"dim\": " << s.dim << ", \"touched\": " << s.touched
           << ", \"workers\": " << s.workers
           << ", \"seconds\": " << r.seconds
           << ", \"speedup_vs_dense\": " << r.speedup << "}";
      first = false;
    }
  }
  json << "\n  ]\n}\n";

  if (!opts.out_prefix.empty()) {
    const std::string path = opts.out_prefix + "micro_allreduce.json";
    std::ofstream out(path);
    out << json.str();
    std::cout << "wrote " << path << "\n";
  } else {
    std::cout << json.str();
  }
  return 0;
}

}  // namespace
}  // namespace sttr::bench

int main(int argc, char** argv) { return sttr::bench::Main(argc, argv); }
