// Table 1: statistics of the datasets. Prints the generated synthetic
// worlds' statistics next to the paper's values for the real Foursquare and
// Yelp dumps (which are not redistributable; see DESIGN.md).

#include <cstdio>

#include "bench/bench_util.h"

namespace {

struct PaperStats {
  size_t users, pois, words, checkins, cross_users, cross_checkins;
};

void PrintOne(const char* name, const sttr::DatasetStats& s,
              const PaperStats& paper) {
  sttr::TextTable table({"", "generated", "paper"});
  auto row = [&](const char* label, size_t got, size_t want) {
    table.AddRow({label, std::to_string(got), std::to_string(want)});
  };
  row("#Users", s.num_users, paper.users);
  row("#POIs", s.num_pois, paper.pois);
  row("#Words", s.num_words, paper.words);
  row("#Check-ins", s.num_checkins, paper.checkins);
  row("#Crossing users", s.num_crossing_users, paper.cross_users);
  row("#Crossing check-ins", s.num_crossing_checkins, paper.cross_checkins);
  std::printf("\n-- %s --\n%s", name, table.ToString().c_str());
  const double frac = 100.0 * static_cast<double>(s.num_crossing_checkins) /
                      static_cast<double>(s.num_checkins);
  std::printf("crossing check-ins are %.2f%% of the total (paper cites "
              "0.47-0.75%% for the real data)\n",
              frac);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  std::printf("[table1] dataset statistics at scale=%s\n",
              opts.scale == synth::Scale::kPaper
                  ? "paper"
                  : (opts.scale == synth::Scale::kTiny ? "tiny" : "small"));

  const auto fsq = bench::MakeWorld("foursquare", opts);
  PrintOne("Foursquare-like", fsq.world.dataset.ComputeStats(0),
           {3600, 31784, 3619, 191515, 732, 3520});

  const auto yelp = bench::MakeWorld("yelp", opts);
  PrintOne("Yelp-like", yelp.world.dataset.ComputeStats(0),
           {9805, 6910, 1648, 433305, 983, 6137});
  return 0;
}
