// Extra ablation: Algorithm 1's user-overlap region merging vs the naive
// baseline that treats every grid cell as its own region. The paper argues
// merging matters because density must be estimated over *uniformly
// accessible* areas, not arbitrary cells: per-cell counts are too sparse to
// define meaningful densities, so the resampler's Eq. 8 weights become
// noise. This bench measures that end-to-end.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/st_transrec.h"
#include "util/table.h"

using namespace sttr;

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("foursquare", opts);
  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("foursquare", deep);
  if (opts.epochs == 0) deep.num_epochs = 6;

  std::printf("[extra] Algorithm-1 region merging vs naive per-cell regions "
              "(foursquare-like)\n");
  TextTable table({"segmentation", "regions(target)", "deficit(target)",
                   "Recall@10", "NDCG@10"});
  for (const bool merge : {true, false}) {
    StTransRecConfig cfg = deep;
    cfg.use_region_merging = merge;
    StTransRec model(cfg);
    STTR_CHECK_OK(model.Fit(ws.world.dataset, ws.split));
    EvalConfig ec = opts.Eval();
    const EvalResult r =
        EvaluateRanking(ws.world.dataset, ws.split, model, ec);
    const auto& rs =
        model.resamplers()[static_cast<size_t>(ws.split.target_city)];
    table.AddRow({merge ? "Algorithm 1 (merged)" : "naive per-cell",
                  std::to_string(rs.stats().size()),
                  std::to_string(rs.TotalDeficit()),
                  bench::FormatMetric(r.At(10).recall),
                  bench::FormatMetric(r.At(10).ndcg)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nexpected shape: merging yields fewer, denser regions and a "
              "smaller, better-targeted resampling deficit.\n");
  return 0;
}
