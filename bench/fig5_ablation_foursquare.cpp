// Figure 5: ablation of ST-TransRec on the Foursquare-like world.
// Variants: -1 drops the MMD transfer loss, -2 drops textual context
// prediction, -3 drops density-based resampling. Paper: the full model wins
// on most metrics; NDCG@10 = 0.4792 with improvements of 3.35/1.78/1.82 %
// over variants 1/2/3 — MMD matters most.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sttr;
  const auto opts = bench::BenchOptions::Parse(argc, argv);
  const auto ws = bench::MakeWorld("foursquare", opts);
  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture("foursquare", deep);
  std::printf("[fig5] ablation on foursquare-like world (%zu test users)\n",
              ws.split.test_users.size());
  const auto runs =
      bench::RunMethods(ws.world.dataset, ws.split,
                        baselines::AblationMethodNames(), deep, opts.Eval(),
                        opts.verbose);
  bench::PrintMetricTables(runs, opts.Eval().ks, opts.out_prefix);
  return 0;
}
