// Table 2: per-iteration training time with data parallelism, 1 worker vs
// 2 workers. The paper compares one vs two GPUs (94.29s vs 50.74s per
// training epoch on Foursquare, 275.44s vs 153.73s on Yelp); we compare CPU
// workers running the same synchronous all-reduce scheme. NOTE: on a
// single-core container the two-worker run cannot show wall-clock speedup;
// the table reports wall time and per-worker gradient throughput so the
// mechanism is still observable.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "core/parallel_trainer.h"

int main(int argc, char** argv) {
  using namespace sttr;
  auto opts = bench::BenchOptions::Parse(argc, argv);
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const size_t iterations =
      static_cast<size_t>(flags.GetInt("iterations", 30));

  std::printf("[table2] data-parallel training, %zu iterations per setting "
              "(hardware threads available: %u)\n",
              iterations, std::thread::hardware_concurrency());

  TextTable table({"Dataset", "Workers", "total s", "s/iter",
                   "shard-grads/s"});
  for (const char* dataset : {"foursquare", "yelp"}) {
    const auto ws = bench::MakeWorld(dataset, opts);
    StTransRecConfig cfg = opts.DeepConfig();
    bench::ApplyPaperArchitecture(dataset, cfg);
    for (size_t workers : {size_t{1}, size_t{2}}) {
      ParallelTrainer trainer(cfg, workers);
      STTR_CHECK_OK(trainer.Init(ws.world.dataset, ws.split));
      trainer.RunIterations(3);  // warm-up
      const double secs = trainer.RunIterations(iterations);
      table.AddRow({dataset, std::to_string(workers),
                    bench::FormatMetric(secs),
                    bench::FormatMetric(secs / static_cast<double>(iterations)),
                    bench::FormatMetric(
                        static_cast<double>(iterations * workers) / secs)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\npaper (per epoch): Foursquare 94.29s -> 50.74s; "
              "Yelp 275.44s -> 153.73s with 2 GPUs\n");
  if (!opts.out_prefix.empty()) {
    STTR_CHECK_OK(table.WriteCsv(opts.out_prefix + "_table2.csv"));
  }
  return 0;
}
