// Table 2: per-iteration training time with data parallelism at 1/2/4
// workers. The paper compares one vs two GPUs (94.29s vs 50.74s per training
// epoch on Foursquare, 275.44s vs 153.73s on Yelp); we compare CPU workers
// running the same synchronous scheme with the sparse all-reduce (touched
// embedding rows only). NOTE: on a single-core container the multi-worker
// runs cannot show wall-clock speedup; the table reports wall time and
// per-worker gradient throughput so the mechanism is still observable.
//
// Flags: --iterations=N per setting, --dense to force the whole-table
// reference all-reduce (for comparing sync overhead against the sparse
// default), --out=<prefix> for CSV + <prefix>table2.json.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench/bench_util.h"
#include "core/parallel_trainer.h"

int main(int argc, char** argv) {
  using namespace sttr;
  auto opts = bench::BenchOptions::Parse(argc, argv);
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const size_t iterations =
      static_cast<size_t>(flags.GetInt("iterations", 30));
  const bool dense = flags.GetBool("dense", false);

  std::printf("[table2] data-parallel training, %zu iterations per setting, "
              "%s all-reduce (hardware threads available: %u)\n",
              iterations, dense ? "dense" : "sparse",
              std::thread::hardware_concurrency());

  TextTable table({"Dataset", "Workers", "total s", "s/iter",
                   "shard-grads/s"});
  std::ostringstream json;
  json << "{\n  \"bench\": \"table2_parallel_training\", \"iterations\": "
       << iterations << ", \"mode\": \"" << (dense ? "dense" : "sparse")
       << "\",\n  \"results\": [\n";
  bool first = true;
  for (const char* dataset : {"foursquare", "yelp"}) {
    const auto ws = bench::MakeWorld(dataset, opts);
    StTransRecConfig cfg = opts.DeepConfig();
    bench::ApplyPaperArchitecture(dataset, cfg);
    for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
      ParallelTrainer trainer(cfg, workers);
      if (dense) {
        trainer.set_reduce_mode(ParallelTrainer::ReduceMode::kDense);
      }
      STTR_CHECK_OK(trainer.Init(ws.world.dataset, ws.split));
      trainer.RunIterations(3);  // warm-up
      const double secs = trainer.RunIterations(iterations);
      const double per_iter = secs / static_cast<double>(iterations);
      const double shard_grads =
          static_cast<double>(iterations * workers) / secs;
      table.AddRow({dataset, std::to_string(workers),
                    bench::FormatMetric(secs), bench::FormatMetric(per_iter),
                    bench::FormatMetric(shard_grads)});
      if (!first) json << ",\n";
      json << "    {\"kernel\": \"" << dataset
           << "\", \"workers\": " << workers << ", \"seconds\": " << secs
           << ", \"s_per_iter\": " << per_iter
           << ", \"shard_grads_per_s\": " << shard_grads << "}";
      first = false;
    }
  }
  json << "\n  ]\n}\n";
  std::printf("%s", table.ToString().c_str());
  std::printf("\npaper (per epoch): Foursquare 94.29s -> 50.74s; "
              "Yelp 275.44s -> 153.73s with 2 GPUs\n");
  if (!opts.out_prefix.empty()) {
    STTR_CHECK_OK(table.WriteCsv(opts.out_prefix + "_table2.csv"));
    const std::string path = opts.out_prefix + "table2.json";
    std::ofstream out(path);
    out << json.str();
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
