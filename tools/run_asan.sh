#!/usr/bin/env bash
# Memory- and UB-checks the tier-1 suite under ASan+UBSan: configures a
# separate build tree with -DSTTR_SANITIZE=address,undefined and runs the
# full tier-1 label, which includes the checkpoint corruption-matrix and
# fault-injection tests — every injected IO fault and truncated/bit-flipped
# checkpoint must surface as a Status, never as a crash or UB.
# Usage: tools/run_asan.sh [build-dir] (default: build-asan).
# The TSan sibling for race checks is tools/run_tsan.sh.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

# Gate on the sanitizer runtime rather than hard-failing mid-build: libasan
# ships as a separate package on most distros, and a container without it
# still runs the rest of the analysis stack. Same skip-with-notice contract
# as run_tidy.sh / run_fuzz_smoke.sh; CI installs the runtime and gates.
if ! echo 'int main(){}' | c++ -fsanitize=address,undefined -x c++ - \
    -o /dev/null 2> /dev/null; then
  echo "run_asan.sh: SKIPPED — the ASan/UBSan runtime does not link" >&2
  echo "(install libasan/libubsan for your compiler to run this locally)." >&2
  exit 0
fi

cmake -B "${build_dir}" -S "${repo_root}" -DSTTR_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j

# Any ASan/UBSan report fails the run; abort_on_error keeps reports readable
# and makes UBSan findings fatal instead of log-only.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
ctest --test-dir "${build_dir}" --output-on-failure -L tier1 -j "$(nproc)"
echo "ASan+UBSan run clean."
