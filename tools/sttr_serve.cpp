// Online recommendation server: serves a checkpoint directory over a
// synthetic world through the src/serve stack — checkpoint hot-reload
// (ModelBundle), grid/region candidate generation (CandidateIndex),
// dynamic micro-batching (ScoreBatcher), a sharded LRU result cache and
// the HTTP endpoints /recommend, /healthz and /statz.
//
// The world + model config must match what produced the checkpoints
// (checkpoints carry a config fingerprint and anything else is refused).
// With --train, a model is trained first when the directory holds no valid
// checkpoint — the one-command demo:
//
//   sttr_serve --ckpt_dir=/tmp/sttr_ckpt --train --port=8080
//   curl 'localhost:8080/recommend?user=3&lat=34.05&lon=-118.25&k=10'
//
// While the server runs, any newer checkpoint written into --ckpt_dir (e.g.
// by a concurrently running trainer) is hot-swapped in within --poll_ms,
// invalidating the result cache and never dropping in-flight requests.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "serve/batcher.h"
#include "serve/candidate_index.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/shard_server.h"
#include "serve/sharded_store.h"
#include "serve/stats.h"
#include "stream/cold_start.h"
#include "stream/incremental_trainer.h"
#include "stream/ingest_service.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sttr {
namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleSignal(int) { g_shutdown_requested = 1; }

void DefineFlags(FlagParser& flags) {
  flags.Define("ckpt_dir", "checkpoint directory to serve (required)");
  flags.Define("dataset", "world preset: foursquare | yelp", "foursquare");
  flags.Define("scale", "world size: tiny | small | paper", "small");
  flags.Define("seed", "world seed override (0 = preset default)", "0");
  flags.Define("epochs", "training epochs for --train (0 = model default)",
               "0");
  flags.Define("train",
               "train + checkpoint first when ckpt_dir has no valid "
               "checkpoint");
  flags.Define("port", "TCP port to listen on (0 = ephemeral)", "0");
  flags.Define("mode", "serving core: epoll | blocking", "epoll");
  flags.Define("workers", "scoring worker threads", "8");
  flags.Define("io_threads", "epoll event-loop threads (--mode=epoll)", "1");
  flags.Define("grid_rows", "candidate index grid rows", "16");
  flags.Define("grid_cols", "candidate index grid cols", "16");
  flags.Define("min_candidates", "candidate list size target per query",
               "200");
  flags.Define("no_regions",
               "disable region merging in the candidate index (pure grid "
               "rings)");
  flags.Define("batch_pairs", "micro-batch flush threshold in (user, poi) "
               "pairs (0 = no batcher, score inline per request)", "512");
  flags.Define("batch_min_pairs", "pairs to wait for before flushing "
               "(1 = continuous batching)", "1");
  flags.Define("batch_wait_us", "micro-batch max wait for the oldest "
               "request when below batch_min_pairs", "300");
  flags.Define("cache_capacity", "result cache entries (0 = cache off)",
               "4096");
  flags.Define("cache_ttl_ms", "result cache TTL (0 = no expiry)", "5000");
  flags.Define("poll_ms", "checkpoint hot-reload poll period", "200");
  flags.Define("precision",
               "serving precision: fp32 | int8 | auto (auto serves the "
               "newest epoch across fp32 and quantized artifacts)",
               "fp32");
  flags.Define("quant_dir",
               "quantized-artifact directory for --precision=int8|auto "
               "(default: <ckpt_dir>/quant)");
  flags.Define("shards",
               "serve embeddings from N hash shards spawned in-process "
               "(0 = direct in-process tables; fp32 only)", "0");
  flags.Define("shard_ports",
               "comma-separated loopback ports of external sttr_shard_server "
               "processes (alternative to --shards; fp32 only)");
  flags.Define("store_deadline_ms",
               "per-request embedding gather budget before the request "
               "degrades to the popularity fallback", "50");
  flags.Define("stream",
               "enable streaming ingestion: POST /checkin feeds an "
               "incremental trainer that publishes delta checkpoints the "
               "bundle hot-patches (fp32 only)");
  flags.Define("delta_dir",
               "delta checkpoint directory for --stream "
               "(default: <ckpt_dir>/deltas)");
  flags.Define("stream_window", "check-ins per incremental training window",
               "32");
  flags.Define("stream_queue", "ingest event-log capacity (full = 503)",
               "4096");
  flags.Define("publish_windows", "publish a delta every N trained windows",
               "1");
  flags.Define("delta_keep", "delta files kept by rotation", "4");
  flags.Define("cold_start",
               "serve target-city-cold users through the word bridge "
               "(adds \"cold_start\" to /recommend responses)");
  flags.Define("time_buckets", "cold-start time-of-day buckets", "4");
  flags.Define("time_weight",
               "cold-start weight of the time-of-day popularity prior",
               "0.25");
}

int Main(int argc, char** argv) {
  FlagParser flags;
  DefineFlags(flags);
  STTR_CHECK_OK(flags.Parse(argc, argv));
  if (flags.Has("help")) {
    std::fputs(flags.HelpText("sttr_serve", "--ckpt_dir=DIR [flags]",
                              "Serves POI recommendations for a checkpoint "
                              "directory over HTTP,\nhot-reloading newer "
                              "checkpoints as the trainer writes them.")
                   .c_str(),
               stdout);
    return 0;
  }
  const std::string ckpt_dir = flags.GetString("ckpt_dir", "");
  if (ckpt_dir.empty()) {
    std::fprintf(stderr, "--ckpt_dir is required (try --help)\n");
    return 2;
  }

  const bench::BenchOptions opts = bench::BenchOptions::Parse(argc, argv);
  const std::string dataset_name = flags.GetString("dataset", "foursquare");
  bench::WorldAndSplit ws = bench::MakeWorld(dataset_name, opts);
  STTR_LOG(Info) << "world: " << ws.world.dataset.num_users() << " users, "
                 << ws.world.dataset.num_pois() << " POIs, "
                 << ws.world.dataset.num_checkins() << " check-ins";

  StTransRecConfig model_cfg = opts.DeepConfig();
  bench::ApplyPaperArchitecture(dataset_name, model_cfg);

  if (flags.GetBool("train", false) &&
      !FindLatestValidCheckpoint(*Env::Default(), ckpt_dir).ok()) {
    STTR_LOG(Info) << "no valid checkpoint in " << ckpt_dir
                   << "; training " << model_cfg.num_epochs << " epochs";
    StTransRecConfig train_cfg = model_cfg;
    train_cfg.checkpoint_dir = ckpt_dir;
    StTransRec trainer(train_cfg);
    STTR_CHECK_OK(trainer.Fit(ws.world.dataset, ws.split));
  }

  serve::ServeStats stats;

  serve::ModelBundleConfig bundle_cfg;
  bundle_cfg.checkpoint_dir = ckpt_dir;
  bundle_cfg.model = model_cfg;
  bundle_cfg.poll_interval =
      std::chrono::milliseconds(flags.GetInt("poll_ms", 200));
  const std::string precision = flags.GetString("precision", "fp32");
  if (precision == "int8") {
    bundle_cfg.precision = serve::PrecisionMode::kInt8;
  } else if (precision == "auto") {
    bundle_cfg.precision = serve::PrecisionMode::kAuto;
  } else if (precision != "fp32") {
    std::fprintf(stderr, "unknown --precision=%s (fp32 | int8 | auto)\n",
                 precision.c_str());
    return 2;
  }
  bundle_cfg.quant_checkpoint_dir = flags.GetString("quant_dir", "");
  bundle_cfg.stats = &stats;
  const bool streaming = flags.GetBool("stream", false);
  const std::string delta_dir =
      flags.GetString("delta_dir", ckpt_dir + "/deltas");
  if (streaming) {
    if (bundle_cfg.precision != serve::PrecisionMode::kFp32) {
      std::fprintf(stderr,
                   "--stream requires --precision=fp32 (deltas patch fp32 "
                   "parameters in place)\n");
      return 2;
    }
    bundle_cfg.delta_dir = delta_dir;
  }
  serve::ModelBundle bundle(ws.world.dataset, ws.split, bundle_cfg);

  const Status loaded = bundle.LoadInitial();
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load a checkpoint from %s: %s\n"
                 "(generate one with --train)\n",
                 ckpt_dir.c_str(), loaded.ToString().c_str());
    return 1;
  }

  // Optional sharded embedding store: either N shard servers spawned
  // in-process (--shards, the one-command demo) or external
  // sttr_shard_server processes (--shard_ports). Either way /recommend
  // gathers rows over the gather protocol with deadline/retry/degradation
  // semantics — the production topology, runnable on one machine.
  std::vector<std::unique_ptr<serve::ShardServer>> shard_servers;
  std::unique_ptr<serve::ShardedEmbeddingStore> store;
  {
    const size_t n_shards =
        static_cast<size_t>(flags.GetInt("shards", 0));
    const std::string shard_ports_flag = flags.GetString("shard_ports", "");
    std::vector<int> shard_ports;
    if (n_shards > 0 && !shard_ports_flag.empty()) {
      std::fprintf(stderr,
                   "--shards and --shard_ports are mutually exclusive\n");
      return 2;
    }
    if (n_shards > 0 || !shard_ports_flag.empty()) {
      const std::shared_ptr<const serve::ModelSnapshot> snapshot =
          bundle.snapshot();
      if (snapshot->model == nullptr) {
        std::fprintf(stderr,
                     "sharded embedding store requires an fp32 snapshot "
                     "(--precision=fp32)\n");
        return 2;
      }
      if (n_shards > 0) {
        for (size_t i = 0; i < n_shards; ++i) {
          auto server = std::make_unique<serve::ShardServer>(
              serve::ShardServerConfig{},
              serve::BuildShardSlice(*snapshot->model, i, n_shards));
          STTR_CHECK_OK(server->Start());
          shard_ports.push_back(server->port());
          shard_servers.push_back(std::move(server));
        }
      } else {
        for (const std::string& part : Split(shard_ports_flag, ',')) {
          shard_ports.push_back(std::atoi(part.c_str()));
        }
      }
      serve::ShardedStoreOptions store_opts;
      store_opts.shard_ports = shard_ports;
      store_opts.default_deadline =
          std::chrono::milliseconds(flags.GetInt("store_deadline_ms", 50));
      store_opts.stats = &stats;
      const Tensor& users = snapshot->model->UserEmbeddingTable();
      const Tensor& pois = snapshot->model->PoiEmbeddingTable();
      store = std::make_unique<serve::ShardedEmbeddingStore>(
          store_opts, users.cols(), users.rows(), pois.rows());
      STTR_LOG(Info) << "embedding store: " << shard_ports.size()
                     << " hash shards"
                     << (shard_servers.empty() ? " (external)"
                                               : " (in-process)");
    }
  }

  serve::CandidateIndexConfig index_cfg;
  index_cfg.grid_rows = static_cast<size_t>(flags.GetInt("grid_rows", 16));
  index_cfg.grid_cols = static_cast<size_t>(flags.GetInt("grid_cols", 16));
  index_cfg.use_regions = !flags.GetBool("no_regions", false);
  index_cfg.min_candidates =
      static_cast<size_t>(flags.GetInt("min_candidates", 200));
  serve::CandidateIndex index(ws.world.dataset, &ws.split, index_cfg);

  // --batch_pairs=0 turns micro-batching off: handlers score inline.
  std::unique_ptr<serve::ScoreBatcher> batcher;
  const size_t max_batch_pairs =
      static_cast<size_t>(flags.GetInt("batch_pairs", 512));
  if (max_batch_pairs > 0) {
    serve::BatcherConfig batcher_cfg;
    batcher_cfg.max_batch_pairs = max_batch_pairs;
    batcher_cfg.min_batch_pairs =
        static_cast<size_t>(flags.GetInt("batch_min_pairs", 1));
    batcher_cfg.max_wait =
        std::chrono::microseconds(flags.GetInt("batch_wait_us", 300));
    batcher = std::make_unique<serve::ScoreBatcher>(batcher_cfg, &stats);
    batcher->Start();
  }

  const size_t cache_capacity =
      static_cast<size_t>(flags.GetInt("cache_capacity", 4096));
  std::unique_ptr<serve::ResultCache> cache;
  if (cache_capacity > 0) {
    serve::ResultCacheConfig cache_cfg;
    cache_cfg.capacity = cache_capacity;
    cache_cfg.ttl =
        std::chrono::milliseconds(flags.GetInt("cache_ttl_ms", 5000));
    cache = std::make_unique<serve::ResultCache>(cache_cfg);
    bundle.AddReloadListener([&](const serve::ModelSnapshot&) {
      cache->InvalidateAll();
      stats.model_reloads.fetch_add(1, std::memory_order_relaxed);
    });
  } else {
    bundle.AddReloadListener([&](const serve::ModelSnapshot&) {
      stats.model_reloads.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Streaming ingestion: an incremental trainer anchored on the serving
  // base checkpoint, fed by /checkin through an IngestService; published
  // deltas are hot-patched by the bundle's watcher, with row-level cache
  // invalidation instead of the wholesale reload flush.
  std::unique_ptr<StTransRec> stream_model;
  std::unique_ptr<stream::IncrementalTrainer> inc_trainer;
  std::unique_ptr<stream::IngestService> ingest;
  if (streaming) {
    const std::shared_ptr<const serve::ModelSnapshot> snapshot =
        bundle.snapshot();
    STTR_CHECK(snapshot->model != nullptr);
    StTransRecConfig stream_cfg = model_cfg;
    stream_cfg.checkpoint_dir.clear();
    stream_cfg.verbose = false;
    stream_model = std::make_unique<StTransRec>(stream_cfg);
    STTR_CHECK_OK(stream_model->Prepare(ws.world.dataset, ws.split));
    stream::IncrementalTrainerConfig trainer_cfg;
    trainer_cfg.delta_dir = delta_dir;
    trainer_cfg.delta_keep_last =
        static_cast<size_t>(flags.GetInt("delta_keep", 4));
    inc_trainer = std::make_unique<stream::IncrementalTrainer>(trainer_cfg);
    STTR_CHECK_OK(inc_trainer->Init(stream_model.get(), ws.world.dataset,
                                    snapshot->checkpoint_path));
    stream::IngestServiceConfig ingest_cfg;
    ingest_cfg.queue_capacity =
        static_cast<size_t>(flags.GetInt("stream_queue", 4096));
    ingest_cfg.window =
        static_cast<size_t>(flags.GetInt("stream_window", 32));
    ingest_cfg.publish_every_windows =
        static_cast<size_t>(flags.GetInt("publish_windows", 1));
    ingest = std::make_unique<stream::IngestService>(
        ws.world.dataset, inc_trainer.get(), &stats.ingest, ingest_cfg);
    ingest->Start();
    if (cache != nullptr) {
      bundle.AddDeltaListener(
          [&](const serve::ModelSnapshot&, const DeltaCheckpoint& delta) {
            serve::InvalidateForDelta(ws.world.dataset, delta, *cache);
          });
    }
    STTR_LOG(Info) << "streaming ingestion: window "
                   << ingest_cfg.window << ", deltas -> " << delta_dir;
  }

  std::unique_ptr<stream::ColdStartScorer> cold_scorer;
  if (flags.GetBool("cold_start", false)) {
    stream::ColdStartConfig cold_cfg;
    cold_cfg.time_buckets =
        static_cast<size_t>(flags.GetInt("time_buckets", 4));
    cold_cfg.time_weight = flags.GetDouble("time_weight", 0.25);
    cold_scorer = std::make_unique<stream::ColdStartScorer>(ws.world.dataset,
                                                            cold_cfg);
    STTR_LOG(Info) << "cold-start word-bridge scoring enabled ("
                   << cold_cfg.time_buckets << " time buckets)";
  }

  serve::ServerConfig server_cfg;
  server_cfg.port = static_cast<int>(flags.GetInt("port", 0));
  const std::string mode = flags.GetString("mode", "epoll");
  if (mode == "blocking") {
    server_cfg.mode = serve::ServeMode::kBlocking;
  } else if (mode != "epoll") {
    std::fprintf(stderr, "unknown --mode=%s (epoll | blocking)\n",
                 mode.c_str());
    return 2;
  }
  server_cfg.num_workers = static_cast<size_t>(flags.GetInt("workers", 8));
  server_cfg.num_io_threads =
      static_cast<size_t>(flags.GetInt("io_threads", 1));
  server_cfg.default_city = ws.split.target_city;
  server_cfg.enable_cache = cache != nullptr;
  server_cfg.store_deadline =
      std::chrono::milliseconds(flags.GetInt("store_deadline_ms", 50));
  serve::RecommendServer server(server_cfg, ws.world.dataset, &bundle,
                                &index, batcher.get(), cache.get(), &stats,
                                store.get(), ingest.get(),
                                cold_scorer.get());
  STTR_CHECK_OK(server.Start());
  bundle.StartWatcher();

  std::printf("serving %s on http://127.0.0.1:%d  (ctrl-c to stop)\n",
              ckpt_dir.c_str(), server.port());
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  STTR_LOG(Info) << "shutting down";
  bundle.StopWatcher();
  server.Shutdown();
  // After the HTTP layer: Stop() trains the remaining partial window and
  // publishes a final delta, so nothing ingested is lost.
  if (ingest != nullptr) ingest->Stop();
  for (const auto& shard : shard_servers) shard->Shutdown();
  if (batcher != nullptr) batcher->Stop();
  return 0;
}

}  // namespace
}  // namespace sttr

int main(int argc, char** argv) { return sttr::Main(argc, argv); }
