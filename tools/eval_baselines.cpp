// Internal: evaluate selected methods quickly on the small foursquare world.
#include <cstdio>
#include "bench/bench_util.h"
#include "util/string_util.h"

using namespace sttr;

int main(int argc, char** argv) {
  auto opts = bench::BenchOptions::Parse(argc, argv);
  FlagParser flags; (void)flags.Parse(argc, argv);
  const std::string dataset = flags.GetString("dataset", "foursquare");
  auto ws = bench::MakeWorld(dataset, opts);
  StTransRecConfig deep = opts.DeepConfig();
  bench::ApplyPaperArchitecture(dataset, deep);
  auto names = Split(flags.GetString("methods", "CTLM,SH-CDL"), ',');
  auto runs = bench::RunMethods(ws.world.dataset, ws.split, names, deep,
                                opts.Eval(), true);
  for (auto& r : runs) {
    std::printf("%-12s R@10=%.4f N@10=%.4f fit=%.1fs\n", r.name.c_str(),
                r.result.At(10).recall, r.result.At(10).ndcg, r.fit_seconds);
  }
  return 0;
}
