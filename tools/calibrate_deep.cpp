// Internal calibration tool (not a paper experiment): sweeps deep-model
// hyper-parameters on the small Foursquare-like world and prints Recall@10.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/timer.h"

using namespace sttr;

int main(int argc, char** argv) {
  auto opts = bench::BenchOptions::Parse(argc, argv);
  FlagParser flags0;
  (void)flags0.Parse(argc, argv);
  auto ws = bench::MakeWorld(flags0.GetString("dataset", "foursquare"), opts);
  struct Setting { const char* tag; float lr; size_t epochs; float init; float text_w; double lambda; };
  FlagParser flags; (void)flags.Parse(argc, argv);
  std::vector<Setting> settings = {
      {"tw3 e8", 1e-2f, 8, 0.01f, 3.0f, 1.0},
      {"tw5 e12", 1e-2f, 12, 0.01f, 5.0f, 1.0},
      {"tw3 e8 d64", 1e-2f, 8, 0.01f, 3.0f, -4.0},
      {"tw5 e12 d64", 1e-2f, 12, 0.01f, 5.0f, -4.0},
  };
  for (const auto& s : settings) {
    StTransRecConfig cfg;
    bench::ApplyPaperArchitecture(flags0.GetString("dataset", "foursquare"), cfg);
    cfg.learning_rate = s.lr;
    cfg.num_epochs = s.epochs;
    cfg.embedding_init_stddev = s.init;
    cfg.text_loss_weight = s.text_w;
    if (s.lambda == -1.0) {
      cfg.use_mmd = false;
    } else if (s.lambda == -2.0) {
      cfg.resample_alpha = 0.0;
    } else if (s.lambda == -3.0) {
      cfg.use_text = false;
    } else if (s.lambda == -4.0) {
      cfg.embedding_dim = 64;
      cfg.hidden_dims = {128, 64, 32, 16};
    } else {
      cfg.lambda_mmd = s.lambda;
    }
    StTransRec model(cfg);
    Timer t;
    STTR_CHECK_OK(model.Fit(ws.world.dataset, ws.split));
    EvalConfig ec;
    auto res = EvaluateRanking(ws.world.dataset, ws.split, model, ec);
    std::printf("%-12s fit=%5.1fs loss=%.4f R@10=%.4f N@10=%.4f\n", s.tag,
                t.ElapsedSeconds(), model.loss_history().back(),
                res.At(10).recall, res.At(10).ndcg);
    std::fflush(stdout);
  }
  return 0;
}
