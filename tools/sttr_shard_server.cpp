// One embedding shard of a hash-sharded serving deployment: loads the
// newest fp32 checkpoint, extracts the rows this shard owns (modulo
// placement: global id g belongs to shard g % num_shards and lives at local
// row g / num_shards), and answers length-prefixed gather requests from
// sttr_serve's ShardedEmbeddingStore router.
//
// A 4-shard deployment on one machine, against the same checkpoint dir:
//
//   for i in 0 1 2 3; do
//     sttr_shard_server --ckpt_dir=/tmp/sttr_ckpt --shard=$i --num_shards=4
//       --port=$((9100+i)) &       # (one command; wrapped here for width)
//   done
//   sttr_serve --ckpt_dir=/tmp/sttr_ckpt --shard_ports=9100,9101,9102,9103
//
// The world + model flags must match sttr_serve's (both sides load the same
// checkpoint; sharded gathers are bit-identical to in-process lookups only
// when they slice the same tables). Kill any shard to watch the router
// retry, trip its breaker, and serve explicitly degraded responses; restart
// it and the half-open probe folds it back in.

#include <csignal>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "serve/model_bundle.h"
#include "serve/shard_server.h"
#include "util/check.h"
#include "util/logging.h"

namespace sttr {
namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleSignal(int) { g_shutdown_requested = 1; }

void DefineFlags(FlagParser& flags) {
  flags.Define("ckpt_dir", "checkpoint directory to slice (required)");
  flags.Define("dataset", "world preset: foursquare | yelp", "foursquare");
  flags.Define("scale", "world size: tiny | small | paper", "small");
  flags.Define("seed", "world seed override (0 = preset default)", "0");
  flags.Define("shard", "this shard's index in [0, num_shards)", "0");
  flags.Define("num_shards", "total hash shards in the deployment", "1");
  flags.Define("port", "TCP port to listen on (0 = ephemeral)", "0");
  flags.Define("workers", "connection handler threads", "2");
}

int Main(int argc, char** argv) {
  FlagParser flags;
  DefineFlags(flags);
  STTR_CHECK_OK(flags.Parse(argc, argv));
  if (flags.Has("help")) {
    std::fputs(flags.HelpText("sttr_shard_server",
                              "--ckpt_dir=DIR --shard=I --num_shards=N "
                              "[flags]",
                              "Serves one hash shard of a checkpoint's "
                              "embedding tables over the\ngather protocol "
                              "for sttr_serve --shard_ports.")
                   .c_str(),
               stdout);
    return 0;
  }
  const std::string ckpt_dir = flags.GetString("ckpt_dir", "");
  if (ckpt_dir.empty()) {
    std::fprintf(stderr, "--ckpt_dir is required (try --help)\n");
    return 2;
  }
  const size_t shard = static_cast<size_t>(flags.GetInt("shard", 0));
  const size_t num_shards =
      static_cast<size_t>(flags.GetInt("num_shards", 1));
  if (num_shards == 0 || shard >= num_shards) {
    std::fprintf(stderr, "--shard must be in [0, --num_shards)\n");
    return 2;
  }

  const bench::BenchOptions opts = bench::BenchOptions::Parse(argc, argv);
  const std::string dataset_name = flags.GetString("dataset", "foursquare");
  bench::WorldAndSplit ws = bench::MakeWorld(dataset_name, opts);

  StTransRecConfig model_cfg = opts.DeepConfig();
  bench::ApplyPaperArchitecture(dataset_name, model_cfg);

  serve::ModelBundleConfig bundle_cfg;
  bundle_cfg.checkpoint_dir = ckpt_dir;
  bundle_cfg.model = model_cfg;
  serve::ModelBundle bundle(ws.world.dataset, ws.split, bundle_cfg);
  const Status loaded = bundle.LoadInitial();
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load a checkpoint from %s: %s\n",
                 ckpt_dir.c_str(), loaded.ToString().c_str());
    return 1;
  }
  const std::shared_ptr<const serve::ModelSnapshot> snapshot =
      bundle.snapshot();
  STTR_CHECK(snapshot->model != nullptr)
      << "shard server slices fp32 checkpoints only";

  serve::ShardServerConfig server_cfg;
  server_cfg.port = static_cast<int>(flags.GetInt("port", 0));
  server_cfg.num_workers = static_cast<size_t>(flags.GetInt("workers", 2));
  serve::ShardServer server(
      server_cfg, serve::BuildShardSlice(*snapshot->model, shard, num_shards));
  STTR_CHECK_OK(server.Start());

  std::printf("shard %zu/%zu of %s on 127.0.0.1:%d  (ctrl-c to stop)\n",
              shard, num_shards, ckpt_dir.c_str(), server.port());
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  STTR_LOG(Info) << "shard " << shard << " shutting down after "
                 << server.gathers_served() << " gathers";
  server.Shutdown();
  return 0;
}

}  // namespace
}  // namespace sttr

int main(int argc, char** argv) { return sttr::Main(argc, argv); }
