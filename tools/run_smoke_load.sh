#!/usr/bin/env bash
# CI smoke-load: builds the serving stack, trains a tiny model, and runs
# bench/serve_loadgen --smoke against the epoll core for a few seconds.
# serve_loadgen exits nonzero unless every scenario served traffic (nonzero
# qps) AND the warmed cache-hit window performed exactly zero heap
# allocations on both the scoring workers and the event-loop threads — the
# regression gate for the zero-allocation hot path.
# Usage: tools/run_smoke_load.sh [build-dir] (default: build).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j --target serve_loadgen

ckpt_dir="$(mktemp -d)"
trap 'rm -rf "${ckpt_dir}"' EXIT

"${build_dir}/bench/serve_loadgen" \
  --scale=tiny --smoke --mode=epoll \
  --clients=4 --connections=128 --open_qps=200 \
  --ckpt_dir="${ckpt_dir}"
echo "Smoke load clean."
