#!/usr/bin/env bash
# Race-checks the multi-threaded training/eval/serving paths under
# ThreadSanitizer: configures a separate build tree with -DSTTR_SANITIZE=thread
# and runs the concurrency-heavy tier-1 tests (thread pool, parallel trainer,
# sparse all-reduce, and the serving subsystem: score batcher, result cache,
# checkpoint hot-reload under concurrent scoring, HTTP server, epoll event
# loop, the blocking/epoll equivalence suite, and the sharded embedding
# store: router fan-out with retries and circuit breakers, shard servers
# being killed and restarted under concurrent load, reloads racing
# injected checkpoint-read faults, and the streaming ingestion subsystem:
# the bounded event log under concurrent producers, row-level result-cache
# invalidation racing lookups, and the /checkin ingest path on the live
# server). zero_alloc_test is deliberately absent:
# TSan's interceptors allocate on the hot path, so its zero-allocation
# assertions only hold in uninstrumented builds.
# Usage: tools/run_tsan.sh [build-dir] (default: build-tsan).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

# Gate on the sanitizer runtime rather than hard-failing mid-build: libtsan
# ships as a separate package on most distros, and a container without it
# still runs the rest of the analysis stack. Same skip-with-notice contract
# as run_tidy.sh / run_fuzz_smoke.sh; CI installs the runtime and gates.
if ! echo 'int main(){}' | c++ -fsanitize=thread -x c++ - \
    -o /dev/null 2> /dev/null; then
  echo "run_tsan.sh: SKIPPED — the TSan runtime does not link" >&2
  echo "(install libtsan for your compiler to run this locally)." >&2
  exit 0
fi

cmake -B "${build_dir}" -S "${repo_root}" -DSTTR_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j \
  --target thread_pool_test parallel_trainer_test sparse_allreduce_test \
           checkpoint_race_test batcher_test result_cache_test \
           model_bundle_test server_test shutdown_race_test \
           event_loop_test server_equivalence_test precision_reload_test \
           sharded_store_test store_server_test reload_fault_test \
           event_log_test ingest_service_test ingest_server_test \
           stream_e2e_test

# TSan findings abort the run; halt_on_error keeps the first report readable.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
ctest --test-dir "${build_dir}" --output-on-failure \
  -R '(ThreadPool|ParallelTrainer|SparseAllReduce|CheckpointRace|Batcher|ResultCache|ModelBundle|ServerTest|ShutdownRace|EventLoop|Equivalence|PrecisionReload|ShardedStore|ShardChaos|StoreServer|ReloadFault|EventLog|IngestService|IngestServer|StreamE2E)'
echo "TSan run clean."
